// Deterministic, stream-splittable pseudo-random number generation.
//
// Simulation studies in this repository must be exactly reproducible from a
// single 64-bit seed, and must support many statistically independent
// streams (one per fork node / per replication) without coordination.  We
// therefore implement xoshiro256++ (Blackman & Vigna) seeded via splitmix64,
// rather than relying on the unspecified std::default_random_engine.
//
// All variate generators used by the simulators live here so that every
// module draws randomness the same way.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace forktail::util {

/// splitmix64: used to expand a single 64-bit seed into engine state and to
/// derive independent child seeds.  Passes BigCrush when used as a generator.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ engine.  Satisfies UniformRandomBitGenerator so it can also
/// be plugged into <random> distributions where convenient.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256pp(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Jump ahead 2^128 steps: yields a stream independent of the original for
  /// any realistic simulation length.
  void jump() noexcept {
    static constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
        0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
    for (std::uint64_t word : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (word & (1ULL << b)) {
          for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
        }
        (*this)();
      }
    }
    state_ = acc;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

/// Rng: xoshiro engine plus the variate generators the simulators need.
/// Not thread-safe; create one per thread / per stream via `split`.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xc0ffee1234abcdefULL) noexcept
      : engine_(seed), seed_(seed) {}

  std::uint64_t seed() const noexcept { return seed_; }

  /// Derive a deterministic child stream; children with distinct indices are
  /// independent of the parent and of each other.
  ///
  /// The child seed is a two-step SplitMix64 hash of the (seed, index) pair:
  /// the first step avalanches the stream index, the second absorbs the
  /// parent seed.  Each step is a bijection, so all children of one parent
  /// are distinct, and — unlike the previous `seed ^ const*(index+1)`
  /// derivation — no linear relation lets two different (seed, index) pairs
  /// collide or a child coincide with its parent's raw seed.
  Rng split(std::uint64_t stream_index) const noexcept {
    return Rng(split_seed(seed_, stream_index));
  }

  /// Seed of the child stream `split(stream_index)` would return.  Exposed so
  /// batch engines can reconstruct the exact same per-node streams (e.g. one
  /// SIMD lane per node) without materializing intermediate Rng objects.
  static constexpr std::uint64_t split_seed(std::uint64_t parent_seed,
                                            std::uint64_t stream_index) noexcept {
    SplitMix64 index_mix(stream_index);
    SplitMix64 pair_mix(parent_seed ^ index_mix.next());
    return pair_mix.next();
  }

  std::uint64_t next_u64() noexcept { return engine_(); }

  /// Uniform in [0, 1).  53-bit mantissa resolution.
  double uniform() noexcept {
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [0, 1): never returns exactly 0 (safe for log()).
  double uniform_pos() noexcept {
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return u;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  Lemire's nearly-divisionless method.
  std::uint64_t uniform_int(std::uint64_t n) noexcept {
    __extension__ using u128 = unsigned __int128;
    if (n == 0) return 0;
    u128 m = static_cast<u128>(engine_()) * static_cast<u128>(n);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0ULL - n) % n;
      while (lo < threshold) {
        m = static_cast<u128>(engine_()) * static_cast<u128>(n);
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform_int(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Exponential with the given mean (NOT rate).
  double exponential(double mean) noexcept {
    return -mean * std::log(uniform_pos());
  }

  /// Standard normal via Box-Muller with caching.
  double normal() noexcept {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = uniform_pos();
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

 private:
  Xoshiro256pp engine_;
  std::uint64_t seed_;
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace forktail::util
