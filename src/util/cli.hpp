// Tiny command-line flag parser shared by bench binaries and examples.
//
// Supports `--name value` and `--name=value`.  Unknown flags are an error so
// typos in experiment sweeps fail loudly instead of silently running the
// default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace forktail::util {

class CliFlags {
 public:
  /// Declare a flag with a default value (as text) and a help string.
  void declare(const std::string& name, const std::string& default_value,
               const std::string& help);

  /// Parse argv; throws std::invalid_argument on unknown flags or missing
  /// values.  `--help` prints usage and returns false.
  bool parse(int argc, const char* const* argv);

  std::string get_string(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  std::string usage(const std::string& program) const;

 private:
  struct Flag {
    std::string default_value;
    std::string help;
    std::optional<std::string> value;
  };
  const Flag& find(const std::string& name) const;

  std::map<std::string, Flag> flags_;
};

/// The standard scale knob shared by all figure-reproduction binaries.
enum class BenchScale { kSmoke, kDefault, kFull };

BenchScale parse_scale(const std::string& text);

/// Multiplier applied to sample counts: smoke=0.1, default=1, full=5.
double scale_factor(BenchScale scale);

}  // namespace forktail::util
