// Lane-parallel pseudo-random number generation for the vector replay
// engine.
//
// Two generation styles, both plain C++ written so GCC/Clang auto-vectorize
// them (no intrinsics; the fjsim vector engine compiles this header in
// per-ISA translation units):
//
//  * XoshiroBlock: 8 lanes of xoshiro256++ advanced in lockstep,
//    structure-of-arrays state.  Lane `l` seeded with seed `s` produces
//    EXACTLY the u64 stream of `util::Xoshiro256pp(s)` — so a lane seeded
//    with `Rng::split_seed(master, idx)` replays the same raw stream as the
//    scalar per-node `Rng` the legacy engines use.  (The *transforms* applied
//    to the stream by the vector engine differ in the last ulp from libm;
//    see docs/performance.md for the golden-change policy.)
//
//  * counter_hash: a stateless splitmix64-style finalizer over a (seed,
//    counter) pair.  Random-access — any element of the stream can be
//    produced independently — which is what the subset engine's
//    distinct-pick fixup loop needs.
//
// `bits_to_unit` maps a u64 to the same double `Rng::uniform()` produces
// from that u64.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#include "util/rng.hpp"

// See vec_math.hpp: helpers used inside per-ISA target-attributed functions
// must be force-inlined so their hot loops compile at the caller's ISA.
#ifndef FORKTAIL_VEC_INLINE
#if defined(__GNUC__) || defined(__clang__)
#define FORKTAIL_VEC_INLINE inline __attribute__((always_inline))
#endif
#ifndef FORKTAIL_VEC_INLINE
#define FORKTAIL_VEC_INLINE inline
#endif
#endif

namespace forktail::util {

/// Uniform in [0, 1) from a raw u64 draw; bit-identical to
/// `Rng::uniform()` consuming the same u64: (x >> 11) * 2^-53.
FORKTAIL_VEC_INLINE double bits_to_unit(std::uint64_t x) noexcept {
  // Plain integer convert, matching Rng::uniform() exactly.  (x >> 11) fits
  // in 53 bits, so the conversion is exact on every ISA level.  NOT the
  // 0x433-magic exponent splice: (x >> 11) occupies bit 52, which collides
  // with an exponent bit the magic already has set, so OR-ing silently drops
  // the top bit and folds the uniform into [0, 1/2).
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Stateless counter-based stream: splitmix64's output function applied to
/// seed + (counter+1) * golden-gamma.  Element `c` of stream `seed` is
/// reproducible in isolation; distinct counters give distinct inputs to the
/// bijective finalizer.
FORKTAIL_VEC_INLINE std::uint64_t counter_hash(std::uint64_t seed,
                                  std::uint64_t counter) noexcept {
  std::uint64_t z = seed + (counter + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Fill out[0..n) with counter_hash(seed, base+i).  Auto-vectorizes.
FORKTAIL_VEC_INLINE void counter_hash_block(std::uint64_t seed, std::uint64_t base,
                               std::uint64_t* __restrict out,
                               std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = counter_hash(seed, base + static_cast<std::uint64_t>(i));
  }
}

/// 32-bit stateless counter hash over a (seed, stream, counter) triple:
/// murmur3's fmix32 finalizer on a linear combination of the inputs.
/// Random-access like counter_hash, but every op is 32-bit -- on AVX-512 a
/// block of these is 16 lanes per vector with cheap vpmulld multiplies,
/// roughly twice the throughput of the 64-bit path (vpmullq is 3 uops).
/// Quality is ample for simulation-grade sampling; it is NOT a bijection
/// over the combined input (collisions across (stream, counter) pairs are
/// possible but statistically negligible).
FORKTAIL_VEC_INLINE std::uint32_t pick_hash32(std::uint32_t seed,
                                              std::uint32_t stream,
                                              std::uint32_t counter) noexcept {
  std::uint32_t h = seed + stream * 0x9E3779B1u + counter * 0x85EBCA77u;
  h ^= h >> 16;
  h *= 0x85EBCA6Bu;
  h ^= h >> 13;
  h *= 0xC2B2AE35u;
  h ^= h >> 16;
  return h;
}

/// Map a 32-bit hash to [0, n) by the Lemire multiply-shift reduction:
/// (h * n) >> 32.  No float round trip, no clamp; bias is O(n / 2^32).
FORKTAIL_VEC_INLINE std::uint32_t hash_to_range(std::uint32_t h,
                                                std::uint32_t n) noexcept {
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(h) * static_cast<std::uint64_t>(n)) >> 32);
}

/// kVecLanes lanes of xoshiro256++ advanced in lockstep.  State is
/// structure-of-arrays so the per-step update is 8 independent identical
/// u64 dataflows — exactly the shape auto-vectorizers want.
inline constexpr std::size_t kVecLanes = 8;

class XoshiroBlock {
 public:
  XoshiroBlock() noexcept {
    for (std::size_t l = 0; l < kVecLanes; ++l) seed_lane(l, 0);
  }

  /// Seed lane `l` exactly as `Xoshiro256pp(seed)` seeds itself
  /// (splitmix64 expansion), so the lane's u64 stream equals the scalar
  /// engine's stream.
  void seed_lane(std::size_t l, std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    s0_[l] = sm.next();
    s1_[l] = sm.next();
    s2_[l] = sm.next();
    s3_[l] = sm.next();
  }

  /// Produce `rows` steps from every lane into a row-major [rows][kVecLanes]
  /// block: out[i*8 + l] is lane l's i-th draw.  The state round-trips
  /// through local arrays so the compiler keeps it in vector registers for
  /// the whole block.
  FORKTAIL_VEC_INLINE void fill(std::uint64_t* __restrict out,
                                std::size_t rows) noexcept {
    std::uint64_t a0[kVecLanes], a1[kVecLanes], a2[kVecLanes], a3[kVecLanes];
    for (std::size_t l = 0; l < kVecLanes; ++l) {
      a0[l] = s0_[l];
      a1[l] = s1_[l];
      a2[l] = s2_[l];
      a3[l] = s3_[l];
    }
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t l = 0; l < kVecLanes; ++l) {
        const std::uint64_t r = std::rotl(a0[l] + a3[l], 23) + a0[l];
        const std::uint64_t t = a1[l] << 17;
        a2[l] ^= a0[l];
        a3[l] ^= a1[l];
        a1[l] ^= a2[l];
        a0[l] ^= a3[l];
        a2[l] ^= t;
        a3[l] = std::rotl(a3[l], 45);
        out[i * kVecLanes + l] = r;
      }
    }
    for (std::size_t l = 0; l < kVecLanes; ++l) {
      s0_[l] = a0[l];
      s1_[l] = a1[l];
      s2_[l] = a2[l];
      s3_[l] = a3[l];
    }
  }

 private:
  std::uint64_t s0_[kVecLanes], s1_[kVecLanes], s2_[kVecLanes],
      s3_[kVecLanes];
};

/// raw u64 block -> uniforms in [0, 1); bit-identical per element to
/// `Rng::uniform()` on the same u64s.
FORKTAIL_VEC_INLINE void unit_block(const std::uint64_t* __restrict in,
                       double* __restrict out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = bits_to_unit(in[i]);
}

/// raw u64 block -> uniforms clamped into [2^-53, 1).  This is the vector
/// engine's branch-free stand-in for `Rng::uniform_pos()` (which rejects
/// u == 0 and redraws): the zero draw has probability 2^-53 per element and
/// is mapped to the smallest representable draw instead of consuming an
/// extra stream element.  Documented golden-affecting deviation.
FORKTAIL_VEC_INLINE void unit_pos_block(const std::uint64_t* __restrict in,
                           double* __restrict out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const double u = bits_to_unit(in[i]);
    out[i] = u < 0x1.0p-53 ? 0x1.0p-53 : u;
  }
}

}  // namespace forktail::util
