// Compensated (Kahan-Babuska-Neumaier) summation.
//
// Long simulation runs accumulate hundreds of millions of floating point
// terms; naive summation loses enough precision to visibly bias measured
// means at the 1e-9 level.  All statistics accumulators use this.
#pragma once

namespace forktail::util {

class KahanSum {
 public:
  constexpr KahanSum() noexcept = default;
  explicit constexpr KahanSum(double initial) noexcept : sum_(initial) {}

  constexpr void add(double x) noexcept {
    const double t = sum_ + x;
    // Neumaier variant: handles |x| > |sum_| correctly.
    if ((sum_ >= 0 ? sum_ : -sum_) >= (x >= 0 ? x : -x)) {
      comp_ += (sum_ - t) + x;
    } else {
      comp_ += (x - t) + sum_;
    }
    sum_ = t;
  }

  constexpr KahanSum& operator+=(double x) noexcept {
    add(x);
    return *this;
  }

  constexpr double value() const noexcept { return sum_ + comp_; }

  constexpr void reset() noexcept {
    sum_ = 0.0;
    comp_ = 0.0;
  }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

}  // namespace forktail::util
