#include "util/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace forktail::util {

void CliFlags::declare(const std::string& name, const std::string& default_value,
                       const std::string& help) {
  flags_[name] = Flag{default_value, help, std::nullopt};
}

bool CliFlags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(2, eq - 2);
      value = arg.substr(eq + 1);
    } else {
      name = arg.substr(2);
      auto it = flags_.find(name);
      if (it == flags_.end()) throw std::invalid_argument("unknown flag: --" + name);
      if (i + 1 >= argc) throw std::invalid_argument("missing value for --" + name);
      value = argv[++i];
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) throw std::invalid_argument("unknown flag: --" + name);
    it->second.value = value;
  }
  return true;
}

const CliFlags::Flag& CliFlags::find(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::invalid_argument("flag not declared: --" + name);
  }
  return it->second;
}

std::string CliFlags::get_string(const std::string& name) const {
  const Flag& f = find(name);
  return f.value.value_or(f.default_value);
}

double CliFlags::get_double(const std::string& name) const {
  return std::stod(get_string(name));
}

std::int64_t CliFlags::get_int(const std::string& name) const {
  return std::stoll(get_string(name));
}

bool CliFlags::get_bool(const std::string& name) const {
  const std::string v = get_string(name);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got: " + v);
}

std::string CliFlags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_value << ")\n      "
       << flag.help << "\n";
  }
  return os.str();
}

BenchScale parse_scale(const std::string& text) {
  if (text == "smoke") return BenchScale::kSmoke;
  if (text == "default") return BenchScale::kDefault;
  if (text == "full") return BenchScale::kFull;
  throw std::invalid_argument("scale must be smoke|default|full, got: " + text);
}

double scale_factor(BenchScale scale) {
  switch (scale) {
    case BenchScale::kSmoke:
      return 0.1;
    case BenchScale::kDefault:
      return 1.0;
    case BenchScale::kFull:
      return 5.0;
  }
  return 1.0;
}

}  // namespace forktail::util
