#include "scenario/spec.hpp"

#include <algorithm>
#include <cmath>

#include "dist/basic.hpp"
#include "dist/factory.hpp"
#include "dist/transforms.hpp"
#include "trace/facebook.hpp"
#include "util/rng.hpp"

namespace forktail::scenario {

using fjsim::ConfigError;

// ---------------------------------------------------------------- enums

std::string topology_name(Topology topology) {
  switch (topology) {
    case Topology::kHomogeneous: return "homogeneous";
    case Topology::kHeterogeneous: return "heterogeneous";
    case Topology::kSubset: return "subset";
    case Topology::kConsolidated: return "consolidated";
    case Topology::kPipeline: return "pipeline";
  }
  throw ConfigError("topology", "unhandled topology enum value");
}

Topology topology_from_name(const std::string& name) {
  if (name == "homogeneous") return Topology::kHomogeneous;
  if (name == "heterogeneous") return Topology::kHeterogeneous;
  if (name == "subset") return Topology::kSubset;
  if (name == "consolidated") return Topology::kConsolidated;
  if (name == "pipeline") return Topology::kPipeline;
  throw ConfigError("topology", "unknown topology: " + name +
                                    " (want homogeneous | heterogeneous | "
                                    "subset | consolidated | pipeline)");
}

std::string sampler_name(Sampler sampler) {
  switch (sampler) {
    case Sampler::kReplay: return "replay";
    case Sampler::kPerfect: return "perfect";
  }
  throw ConfigError("sampler", "unhandled sampler enum value");
}

Sampler sampler_from_name(const std::string& name) {
  if (name == "replay") return Sampler::kReplay;
  if (name == "perfect") return Sampler::kPerfect;
  throw ConfigError("sampler",
                    "unknown sampler: " + name + " (want replay | perfect)");
}

namespace {

std::string policy_name(fjsim::Policy policy) {
  switch (policy) {
    case fjsim::Policy::kSingle: return "single";
    case fjsim::Policy::kRoundRobin: return "round-robin";
    case fjsim::Policy::kRedundant: return "redundant";
  }
  throw ConfigError("group.policy", "unhandled policy enum value");
}

fjsim::Policy policy_from_name(const std::string& name) {
  if (name == "single") return fjsim::Policy::kSingle;
  if (name == "round-robin") return fjsim::Policy::kRoundRobin;
  if (name == "redundant") return fjsim::Policy::kRedundant;
  throw ConfigError("group.policy",
                    "unknown policy: " + name +
                        " (want single | round-robin | redundant)");
}

std::string k_mode_name(KSpec::Mode mode) {
  switch (mode) {
    case KSpec::Mode::kAll: return "all";
    case KSpec::Mode::kFixed: return "fixed";
    case KSpec::Mode::kUniform: return "uniform";
    case KSpec::Mode::kRedundant: return "redundancy-d";
  }
  throw ConfigError("k.mode", "unhandled k mode enum value");
}

KSpec::Mode k_mode_from_name(const std::string& name) {
  if (name == "all") return KSpec::Mode::kAll;
  if (name == "fixed") return KSpec::Mode::kFixed;
  if (name == "uniform") return KSpec::Mode::kUniform;
  if (name == "redundancy-d") return KSpec::Mode::kRedundant;
  throw ConfigError("k.mode", "unknown k mode: " + name +
                                  " (want all | fixed | uniform | "
                                  "redundancy-d)");
}

// ------------------------------------------------------- parse utilities

/// Reject unknown keys so a typo fails loudly instead of silently running
/// the default configuration (the CliFlags philosophy, applied to JSON).
void check_keys(const util::Json& obj, const std::string& where,
                std::initializer_list<const char*> allowed) {
  for (const auto& key : obj.keys()) {
    if (std::find_if(allowed.begin(), allowed.end(), [&](const char* a) {
          return key == a;
        }) == allowed.end()) {
      throw ConfigError(where.empty() ? key : where + "." + key,
                        "unknown key in scenario document");
    }
  }
}

double get_number(const util::Json& obj, const char* key, double fallback) {
  return obj.contains(key) ? obj.at(key).as_number() : fallback;
}

std::uint64_t get_u64(const util::Json& obj, const char* key,
                      std::uint64_t fallback, const std::string& where) {
  if (!obj.contains(key)) return fallback;
  const double v = obj.at(key).as_number();
  if (!(v >= 0.0) || v != std::floor(v)) {
    throw ConfigError(where + "." + key, "must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(v);
}

int get_int(const util::Json& obj, const char* key, int fallback,
            const std::string& where) {
  if (!obj.contains(key)) return fallback;
  const double v = obj.at(key).as_number();
  if (v != std::floor(v)) {
    throw ConfigError(where + "." + key, "must be an integer");
  }
  return static_cast<int>(v);
}

std::string get_string(const util::Json& obj, const char* key,
                       const std::string& fallback) {
  return obj.contains(key) ? obj.at(key).as_string() : fallback;
}

ServiceSpec parse_service(const util::Json& obj, const std::string& where) {
  check_keys(obj, where, {"dist", "mean", "tail"});
  ServiceSpec service;
  service.dist = get_string(obj, "dist", service.dist);
  service.mean = get_number(obj, "mean", service.mean);
  service.tail = get_number(obj, "tail", service.tail);
  return service;
}

util::Json service_to_json(const ServiceSpec& service) {
  util::Json obj = util::Json::object();
  obj.set("dist", service.dist);
  obj.set("mean", service.mean);
  obj.set("tail", service.tail);
  return obj;
}

}  // namespace

// ------------------------------------------------------------- serialize

util::Json to_json(const ScenarioSpec& spec) {
  util::Json doc = util::Json::object();
  doc.set("schema", kScenarioSchema);
  doc.set("name", spec.name);
  doc.set("topology", topology_name(spec.topology));
  doc.set("nodes", spec.nodes);

  util::Json group = util::Json::object();
  group.set("replicas", spec.group.replicas);
  group.set("policy", policy_name(spec.group.policy));
  group.set("redundant_delay", spec.group.redundant_delay);
  doc.set("group", std::move(group));

  doc.set("service", service_to_json(spec.service));

  util::Json services = util::Json::array();
  for (const ServiceSpec& s : spec.services) services.push_back(service_to_json(s));
  doc.set("services", std::move(services));

  util::Json het = util::Json::object();
  het.set("spread", spec.heterogeneity.spread);
  het.set("seed", spec.heterogeneity.seed);
  doc.set("heterogeneity", std::move(het));

  util::Json k = util::Json::object();
  k.set("mode", k_mode_name(spec.k.mode));
  k.set("fixed", spec.k.fixed);
  k.set("lo", spec.k.lo);
  k.set("hi", spec.k.hi);
  doc.set("k", std::move(k));

  doc.set("load", spec.load);

  util::Json workload = util::Json::object();
  workload.set("min_mean_ms", spec.workload.min_mean_ms);
  workload.set("max_mean_ms", spec.workload.max_mean_ms);
  workload.set("target_fraction", spec.workload.target_fraction);
  workload.set("target_tasks", static_cast<std::uint64_t>(spec.workload.target_tasks));
  workload.set("target_mean_ms", spec.workload.target_mean_ms);
  workload.set("service_floor", spec.workload.service_floor);
  doc.set("workload", std::move(workload));

  util::Json stages = util::Json::array();
  for (const StageSpec& stage : spec.stages) {
    util::Json s = util::Json::object();
    s.set("nodes", stage.nodes);
    s.set("service", service_to_json(stage.service));
    stages.push_back(std::move(s));
  }
  doc.set("stages", std::move(stages));

  util::Json samples = util::Json::object();
  samples.set("requests", spec.requests);
  samples.set("warmup_fraction", spec.warmup_fraction);
  doc.set("samples", std::move(samples));

  doc.set("sampler", sampler_name(spec.sampler));
  doc.set("seed", spec.seed);

  util::Json execution = util::Json::object();
  execution.set("max_parallelism", spec.max_parallelism);
  execution.set("batch", spec.batch);
  doc.set("execution", std::move(execution));

  doc.set("group_by_k", spec.group_by_k);
  doc.set("faults", fault::to_json(spec.faults));

  util::Json serve = util::Json::object();
  serve.set("udp_port", static_cast<std::uint64_t>(spec.serve.udp_port));
  serve.set("tcp_port", static_cast<std::uint64_t>(spec.serve.tcp_port));
  serve.set("service", static_cast<std::uint64_t>(spec.serve.service));
  serve.set("shards", spec.serve.shards);
  serve.set("window_seconds", spec.serve.window_seconds);
  serve.set("min_samples", spec.serve.min_samples);
  serve.set("skew_tolerance", spec.serve.skew_tolerance);
  serve.set("ring_capacity", spec.serve.ring_capacity);
  serve.set("liveness_timeout", spec.serve.liveness_timeout);
  serve.set("sweep_interval", spec.serve.sweep_interval);
  serve.set("stall_threshold", spec.serve.stall_threshold);
  doc.set("serve", std::move(serve));
  return doc;
}

// ----------------------------------------------------------------- parse

ScenarioSpec parse_scenario(const util::Json& doc) {
  if (!doc.is_object()) {
    throw ConfigError("scenario", "document must be a JSON object");
  }
  check_keys(doc, "",
             {"schema", "name", "topology", "nodes", "group", "service",
              "services", "heterogeneity", "k", "load", "workload", "stages",
              "samples", "sampler", "seed", "execution", "group_by_k",
              "faults", "serve"});
  if (doc.contains("schema") &&
      doc.at("schema").as_string() != kScenarioSchema) {
    throw ConfigError("schema", "unsupported schema: " +
                                    doc.at("schema").as_string() + " (want " +
                                    kScenarioSchema + ")");
  }

  ScenarioSpec spec;
  spec.name = get_string(doc, "name", spec.name);
  if (!doc.contains("topology")) {
    throw ConfigError("topology", "required key missing");
  }
  spec.topology = topology_from_name(doc.at("topology").as_string());
  spec.nodes = static_cast<std::size_t>(get_u64(doc, "nodes", spec.nodes, ""));

  if (doc.contains("group")) {
    const util::Json& group = doc.at("group");
    check_keys(group, "group", {"replicas", "policy", "redundant_delay"});
    spec.group.replicas = get_int(group, "replicas", spec.group.replicas, "group");
    spec.group.policy =
        policy_from_name(get_string(group, "policy", policy_name(spec.group.policy)));
    spec.group.redundant_delay =
        get_number(group, "redundant_delay", spec.group.redundant_delay);
  }

  if (doc.contains("service")) {
    spec.service = parse_service(doc.at("service"), "service");
  }
  if (doc.contains("services")) {
    const util::Json& services = doc.at("services");
    if (!services.is_array()) {
      throw ConfigError("services", "must be an array of service objects");
    }
    for (std::size_t i = 0; i < services.items().size(); ++i) {
      spec.services.push_back(parse_service(
          services.items()[i], "services[" + std::to_string(i) + "]"));
    }
  }
  if (doc.contains("heterogeneity")) {
    const util::Json& het = doc.at("heterogeneity");
    check_keys(het, "heterogeneity", {"spread", "seed"});
    spec.heterogeneity.spread =
        get_number(het, "spread", spec.heterogeneity.spread);
    spec.heterogeneity.seed =
        get_u64(het, "seed", spec.heterogeneity.seed, "heterogeneity");
  }
  if (doc.contains("k")) {
    const util::Json& k = doc.at("k");
    check_keys(k, "k", {"mode", "fixed", "lo", "hi", "d"});
    spec.k.mode = k_mode_from_name(get_string(k, "mode", k_mode_name(spec.k.mode)));
    spec.k.fixed = get_int(k, "fixed", spec.k.fixed, "k");
    spec.k.lo = get_int(k, "lo", spec.k.lo, "k");
    spec.k.hi = get_int(k, "hi", spec.k.hi, "k");
    if (k.contains("d")) {
      // "d" is redundancy-mode sugar for "fixed" (the replica count).
      const int d = get_int(k, "d", 0, "k");
      if (spec.k.fixed != 0 && spec.k.fixed != d) {
        throw ConfigError("k.d", "conflicts with k.fixed (" + std::to_string(d) +
                                     " vs " + std::to_string(spec.k.fixed) +
                                     "); give one of the two");
      }
      spec.k.fixed = d;
    }
  }
  spec.load = get_number(doc, "load", spec.load);
  if (doc.contains("workload")) {
    const util::Json& w = doc.at("workload");
    check_keys(w, "workload",
               {"min_mean_ms", "max_mean_ms", "target_fraction", "target_tasks",
                "target_mean_ms", "service_floor"});
    spec.workload.min_mean_ms = get_number(w, "min_mean_ms", spec.workload.min_mean_ms);
    spec.workload.max_mean_ms = get_number(w, "max_mean_ms", spec.workload.max_mean_ms);
    spec.workload.target_fraction =
        get_number(w, "target_fraction", spec.workload.target_fraction);
    spec.workload.target_tasks = static_cast<std::uint32_t>(
        get_u64(w, "target_tasks", spec.workload.target_tasks, "workload"));
    spec.workload.target_mean_ms =
        get_number(w, "target_mean_ms", spec.workload.target_mean_ms);
    spec.workload.service_floor =
        get_number(w, "service_floor", spec.workload.service_floor);
  }
  if (doc.contains("stages")) {
    const util::Json& stages = doc.at("stages");
    if (!stages.is_array()) {
      throw ConfigError("stages", "must be an array of stage objects");
    }
    for (std::size_t i = 0; i < stages.items().size(); ++i) {
      const util::Json& s = stages.items()[i];
      const std::string where = "stages[" + std::to_string(i) + "]";
      check_keys(s, where, {"nodes", "service"});
      StageSpec stage;
      stage.nodes = static_cast<std::size_t>(get_u64(s, "nodes", stage.nodes, where));
      if (s.contains("service")) {
        stage.service = parse_service(s.at("service"), where + ".service");
      }
      spec.stages.push_back(std::move(stage));
    }
  }
  if (doc.contains("samples")) {
    const util::Json& samples = doc.at("samples");
    check_keys(samples, "samples", {"requests", "warmup_fraction"});
    spec.requests = get_u64(samples, "requests", spec.requests, "samples");
    spec.warmup_fraction =
        get_number(samples, "warmup_fraction", spec.warmup_fraction);
  }
  spec.sampler =
      sampler_from_name(get_string(doc, "sampler", sampler_name(spec.sampler)));
  spec.seed = get_u64(doc, "seed", spec.seed, "");
  if (doc.contains("execution")) {
    const util::Json& execution = doc.at("execution");
    check_keys(execution, "execution", {"max_parallelism", "batch"});
    spec.max_parallelism = static_cast<std::size_t>(
        get_u64(execution, "max_parallelism", spec.max_parallelism, "execution"));
    spec.batch = static_cast<std::size_t>(
        get_u64(execution, "batch", spec.batch, "execution"));
  }
  if (doc.contains("group_by_k")) {
    spec.group_by_k = doc.at("group_by_k").as_bool();
  }
  if (doc.contains("faults")) {
    spec.faults = fault::parse_fault_plan(doc.at("faults"), "faults");
  }
  if (doc.contains("serve")) {
    const util::Json& serve = doc.at("serve");
    check_keys(serve, "serve",
               {"udp_port", "tcp_port", "service", "shards", "window_seconds",
                "min_samples", "skew_tolerance", "ring_capacity",
                "liveness_timeout", "sweep_interval", "stall_threshold"});
    spec.serve.udp_port = static_cast<std::uint32_t>(
        get_u64(serve, "udp_port", spec.serve.udp_port, "serve"));
    spec.serve.tcp_port = static_cast<std::uint32_t>(
        get_u64(serve, "tcp_port", spec.serve.tcp_port, "serve"));
    spec.serve.service = static_cast<std::uint32_t>(
        get_u64(serve, "service", spec.serve.service, "serve"));
    spec.serve.shards = static_cast<std::size_t>(
        get_u64(serve, "shards", spec.serve.shards, "serve"));
    spec.serve.window_seconds =
        get_number(serve, "window_seconds", spec.serve.window_seconds);
    spec.serve.min_samples = static_cast<std::size_t>(
        get_u64(serve, "min_samples", spec.serve.min_samples, "serve"));
    spec.serve.skew_tolerance =
        get_number(serve, "skew_tolerance", spec.serve.skew_tolerance);
    spec.serve.ring_capacity = static_cast<std::size_t>(
        get_u64(serve, "ring_capacity", spec.serve.ring_capacity, "serve"));
    spec.serve.liveness_timeout =
        get_number(serve, "liveness_timeout", spec.serve.liveness_timeout);
    spec.serve.sweep_interval =
        get_number(serve, "sweep_interval", spec.serve.sweep_interval);
    spec.serve.stall_threshold =
        get_number(serve, "stall_threshold", spec.serve.stall_threshold);
  }
  return spec;
}

ScenarioSpec parse_scenario_text(const std::string& text) {
  return parse_scenario(util::Json::parse(text));
}

ScenarioSpec load_scenario_file(const std::string& path) {
  try {
    return parse_scenario_text(util::read_text_file(path));
  } catch (const ConfigError&) {
    throw;
  } catch (const std::exception& e) {
    // An unreadable file or malformed JSON is a configuration problem (the
    // CLI maps ConfigError to its config exit code), not a runtime one.
    throw ConfigError("scenario", path + ": " + e.what());
  }
}

// -------------------------------------------------------------- validate

namespace {

void validate_service(const ServiceSpec& service, const std::string& where) {
  const auto roster = dist::named_distributions();
  if (std::find(roster.begin(), roster.end(), service.dist) == roster.end()) {
    std::string names;
    for (const auto& n : roster) names += (names.empty() ? "" : " | ") + n;
    throw ConfigError(where + ".dist",
                      "unknown distribution: " + service.dist + " (want " +
                          names + ")");
  }
  if (service.mean < 0.0) {
    throw ConfigError(where + ".mean", "must be >= 0 (0 = the paper's mean)");
  }
  if (service.dist == "Empirical" && service.mean > 0.0) {
    throw ConfigError(where + ".mean",
                      "Empirical has a fixed mean; omit the override");
  }
  if (service.tail < 0.0) {
    throw ConfigError(where + ".tail",
                      "must be >= 0 (0 = the default tail index)");
  }
  if (service.tail > 0.0 && !dist::takes_tail_index(service.dist)) {
    throw ConfigError(where + ".tail",
                      "tail index only parameterises the regularly-varying "
                      "families (Pareto | HeavyMixture), not " + service.dist);
  }
  if (service.tail > 0.0 && service.tail <= 1.0) {
    throw ConfigError(where + ".tail",
                      "tail index must be > 1 (the mean diverges otherwise)");
  }
}

void validate_common(const ScenarioSpec& spec) {
  if (spec.nodes == 0) throw ConfigError("nodes", "must be >= 1");
  if (!(spec.load > 0.0 && spec.load < 1.0)) {
    throw ConfigError("load", "utilization rho must be in (0, 1)");
  }
  if (spec.requests == 0) throw ConfigError("samples.requests", "must be >= 1");
  if (!(spec.warmup_fraction >= 0.0 && spec.warmup_fraction < 1.0)) {
    throw ConfigError("samples.warmup_fraction", "must be in [0, 1)");
  }
  fjsim::validate_node_group(spec.group, "group");

  if (spec.serve.udp_port > 65535) {
    throw ConfigError("serve.udp_port", "must be in [0, 65535]");
  }
  if (spec.serve.tcp_port > 65535) {
    throw ConfigError("serve.tcp_port", "must be in [0, 65535]");
  }
  if (spec.serve.service > 65535) {
    throw ConfigError("serve.service", "must be in [0, 65535]");
  }
  if (spec.serve.udp_port != 0 && spec.serve.udp_port == spec.serve.tcp_port) {
    throw ConfigError("serve.tcp_port", "must differ from serve.udp_port");
  }
  if (spec.serve.shards == 0) {
    throw ConfigError("serve.shards", "must be >= 1");
  }
  if (!(spec.serve.window_seconds > 0.0)) {
    throw ConfigError("serve.window_seconds", "must be > 0");
  }
  if (spec.serve.min_samples == 0) {
    throw ConfigError("serve.min_samples", "must be >= 1");
  }
  if (spec.serve.skew_tolerance < 0.0) {
    throw ConfigError("serve.skew_tolerance", "must be >= 0");
  }
  if (spec.serve.ring_capacity == 0) {
    throw ConfigError("serve.ring_capacity", "must be >= 1");
  }
  if (!(spec.serve.liveness_timeout > 0.0)) {
    throw ConfigError("serve.liveness_timeout", "must be > 0");
  }
  if (!(spec.serve.sweep_interval > 0.0)) {
    throw ConfigError("serve.sweep_interval", "must be > 0");
  }
  if (!(spec.serve.stall_threshold > 0.0)) {
    throw ConfigError("serve.stall_threshold", "must be > 0");
  }
}

}  // namespace

void validate(const ScenarioSpec& spec) {
  validate_common(spec);
  fault::validate(spec.faults, "faults");
  if (spec.sampler == Sampler::kPerfect) {
    if (spec.topology != Topology::kHomogeneous &&
        spec.topology != Topology::kSubset) {
      throw ConfigError("sampler",
                        "perfect sampling supports only the homogeneous and "
                        "subset topologies");
    }
    if (spec.group.policy != fjsim::Policy::kSingle ||
        spec.group.replicas != 1) {
      throw ConfigError("sampler",
                        "perfect sampling requires plain single-server nodes "
                        "(group.policy \"single\", replicas = 1)");
    }
    if (!spec.faults.inert()) {
      throw ConfigError("sampler",
                        "perfect sampling requires an inert fault plan (the "
                        "coupling certificate covers the unmodified engines)");
    }
    if (spec.group_by_k) {
      throw ConfigError("sampler",
                        "perfect sampling does not bucket responses by k; "
                        "drop group_by_k or use sampler \"replay\"");
    }
    // The coupling certificate is a Lundberg bound: it only exists for
    // services that declare an MGF.  Query the capability and surface the
    // refusal at validation time, not mid-run.
    const dist::DistPtr service = make_service(spec.service);
    if (const dist::Capabilities caps = service->capabilities();
        !caps.has_mgf) {
      throw ConfigError("sampler",
                        "perfect sampling needs a service with a finite MGF; " +
                            spec.service.dist + " declares a " +
                            dist::tail_class_name(caps.tail) +
                            " tail with no MGF capability (use sampler "
                            "\"replay\")");
    }
  }
  if (!spec.faults.inert()) {
    switch (spec.topology) {
      case Topology::kHomogeneous:
        if (spec.group.policy != fjsim::Policy::kSingle ||
            spec.group.replicas != 1) {
          throw ConfigError("faults",
                            "fault injection requires single-server nodes "
                            "(group.policy \"single\", replicas = 1)");
        }
        if (spec.faults.mitigation.early_k >
            static_cast<int>(spec.nodes)) {
          throw ConfigError("faults.mitigation.early_k",
                            "must be <= nodes");
        }
        break;
      case Topology::kSubset:
        if (!spec.faults.inject.inert() ||
            spec.faults.mitigation.timeout != 0.0 ||
            spec.faults.mitigation.hedge_quantile != 0.0) {
          throw ConfigError("faults",
                            "the subset topology supports only "
                            "mitigation.early_k (early return at k); "
                            "injection / timeouts / hedging need the "
                            "homogeneous topology");
        }
        break;  // early_k bounds checked via the fjsim probe below
      default:
        throw ConfigError("faults",
                          "fault plans are supported on the homogeneous and "
                          "subset topologies");
    }
  }
  switch (spec.topology) {
    case Topology::kHomogeneous:
      validate_service(spec.service, "service");
      if (spec.k.mode != KSpec::Mode::kAll) {
        throw ConfigError("k.mode",
                          "homogeneous topology forks to every node (k = N); "
                          "use the subset topology for k <= N");
      }
      break;
    case Topology::kHeterogeneous:
      if (!spec.services.empty()) {
        if (spec.services.size() != spec.nodes) {
          throw ConfigError("services",
                            "explicit per-node list must have exactly `nodes` "
                            "entries (" +
                                std::to_string(spec.services.size()) + " vs " +
                                std::to_string(spec.nodes) + ")");
        }
        for (std::size_t i = 0; i < spec.services.size(); ++i) {
          validate_service(spec.services[i], "services[" + std::to_string(i) + "]");
        }
      } else if (!(spec.heterogeneity.spread >= 1.0)) {
        throw ConfigError("heterogeneity.spread",
                          "must be >= 1 (node means span [1, spread] ms) when "
                          "no explicit services list is given");
      }
      if (spec.group.policy != fjsim::Policy::kSingle || spec.group.replicas != 1) {
        throw ConfigError("group",
                          "heterogeneous topology models single-server nodes");
      }
      break;
    case Topology::kSubset: {
      validate_service(spec.service, "service");
      // Materialise and reuse the fjsim validator so the k-bound rules
      // (k_fixed <= N, 1 <= k_lo <= k_hi <= N) live in exactly one place.
      fjsim::SubsetConfig probe;
      static_cast<fjsim::NodeGroupConfig&>(probe) = spec.group;
      probe.num_nodes = spec.nodes;
      probe.service = dist::make_named("Exponential");  // placeholder; k-bounds only
      probe.load = spec.load;
      probe.num_requests = spec.requests;
      probe.warmup_fraction = spec.warmup_fraction;
      probe.k_mode = spec.k.mode == KSpec::Mode::kUniform ? fjsim::KMode::kUniformInt
                                                          : fjsim::KMode::kFixed;
      if (spec.k.mode == KSpec::Mode::kAll) {
        throw ConfigError("k.mode",
                          "subset topology needs k.mode = fixed | uniform | "
                          "redundancy-d");
      }
      if (spec.k.mode == KSpec::Mode::kRedundant &&
          spec.faults.mitigation.early_k != 0) {
        throw ConfigError("faults.mitigation.early_k",
                          "redundancy-d already returns at the first "
                          "finisher; drop the early_k mitigation");
      }
      probe.k_fixed = spec.k.fixed;
      probe.k_lo = spec.k.lo;
      probe.k_hi = spec.k.hi;
      probe.early_k = spec.k.mode == KSpec::Mode::kRedundant
                          ? 1
                          : spec.faults.mitigation.early_k;
      fjsim::validate(probe);
      break;
    }
    case Topology::kConsolidated:
      if (!(spec.workload.target_fraction > 0.0 &&
            spec.workload.target_fraction <= 1.0)) {
        throw ConfigError("workload.target_fraction", "must be in (0, 1]");
      }
      if (spec.workload.target_tasks < 1 ||
          static_cast<std::size_t>(spec.workload.target_tasks) > spec.nodes) {
        throw ConfigError("workload.target_tasks",
                          "must be in [1, nodes] (cannot fork more tasks than "
                          "nodes)");
      }
      if (!(spec.workload.min_mean_ms > 0.0) ||
          !(spec.workload.max_mean_ms >= spec.workload.min_mean_ms)) {
        throw ConfigError("workload.max_mean_ms",
                          "need 0 < min_mean_ms <= max_mean_ms");
      }
      if (!(spec.workload.target_mean_ms > 0.0)) {
        throw ConfigError("workload.target_mean_ms", "must be > 0");
      }
      if (!(spec.workload.service_floor >= 0.0)) {
        throw ConfigError("workload.service_floor", "must be >= 0");
      }
      if (spec.group.policy == fjsim::Policy::kRedundant) {
        throw ConfigError("group.policy",
                          "redundant-issue is not supported by the "
                          "trace-driven simulator");
      }
      break;
    case Topology::kPipeline:
      if (spec.stages.empty()) {
        throw ConfigError("stages", "pipeline needs at least one stage");
      }
      for (std::size_t i = 0; i < spec.stages.size(); ++i) {
        const std::string where = "stages[" + std::to_string(i) + "]";
        if (spec.stages[i].nodes == 0) {
          throw ConfigError(where + ".nodes", "must be >= 1");
        }
        validate_service(spec.stages[i].service, where + ".service");
      }
      break;
  }
}

// ------------------------------------------------------- materialisation

dist::DistPtr make_service(const ServiceSpec& service) {
  return dist::make_named(service.dist, service.mean, service.tail);
}

std::vector<dist::DistPtr> make_services(const ScenarioSpec& spec) {
  std::vector<dist::DistPtr> services;
  services.reserve(spec.nodes);
  if (!spec.services.empty()) {
    for (const ServiceSpec& s : spec.services) services.push_back(make_service(s));
    return services;
  }
  // Generative spread: node means log-uniform in [1, spread] ms -- the
  // inhomogeneous_scale construction, reproduced value-for-value so specs
  // can describe the same clusters the bench sweeps.
  util::Rng rng(spec.heterogeneity.seed);
  for (std::size_t i = 0; i < spec.nodes; ++i) {
    const double mean =
        std::exp(rng.uniform(0.0, std::log(spec.heterogeneity.spread)));
    services.push_back(std::make_shared<dist::Exponential>(mean));
  }
  return services;
}

namespace {

void require_topology(const ScenarioSpec& spec, Topology expected,
                      const char* converter) {
  if (spec.topology != expected) {
    throw ConfigError("topology", std::string(converter) + ": spec has topology " +
                                      topology_name(spec.topology) +
                                      ", expected " + topology_name(expected));
  }
}

}  // namespace

fjsim::HomogeneousConfig to_homogeneous_config(const ScenarioSpec& spec) {
  require_topology(spec, Topology::kHomogeneous, "to_homogeneous_config");
  fjsim::HomogeneousConfig config;
  static_cast<fjsim::NodeGroupConfig&>(config) = spec.group;
  config.num_nodes = spec.nodes;
  config.service = make_service(spec.service);
  config.load = spec.load;
  config.num_requests = spec.requests;
  config.warmup_fraction = spec.warmup_fraction;
  config.seed = spec.seed;
  config.max_parallelism = spec.max_parallelism;
  config.batch = spec.batch;
  return config;
}

fjsim::SubsetConfig to_subset_config(const ScenarioSpec& spec) {
  require_topology(spec, Topology::kSubset, "to_subset_config");
  fjsim::SubsetConfig config;
  static_cast<fjsim::NodeGroupConfig&>(config) = spec.group;
  config.num_nodes = spec.nodes;
  config.service = make_service(spec.service);
  config.load = spec.load;
  config.k_mode = spec.k.mode == KSpec::Mode::kUniform ? fjsim::KMode::kUniformInt
                                                       : fjsim::KMode::kFixed;
  config.k_fixed = spec.k.fixed;
  config.k_lo = spec.k.lo;
  config.k_hi = spec.k.hi;
  config.num_requests = spec.requests;
  config.warmup_fraction = spec.warmup_fraction;
  config.seed = spec.seed;
  config.group_by_k = spec.group_by_k;
  config.batch = spec.batch;
  // Redundancy-d issues d replicas and takes the first finisher: the
  // subset engine expresses min-of-d as fan-out d with early return at 1.
  config.early_k = spec.k.mode == KSpec::Mode::kRedundant
                       ? 1
                       : spec.faults.mitigation.early_k;
  return config;
}

fjsim::PerfectSamplerConfig to_perfect_config(const ScenarioSpec& spec) {
  if (spec.topology != Topology::kHomogeneous &&
      spec.topology != Topology::kSubset) {
    throw ConfigError("topology",
                      "to_perfect_config: spec has topology " +
                          topology_name(spec.topology) +
                          ", expected homogeneous or subset");
  }
  fjsim::PerfectSamplerConfig config;
  config.num_nodes = spec.nodes;
  config.service = make_service(spec.service);
  config.load = spec.load;
  config.subset = spec.topology == Topology::kSubset;
  config.k_mode = spec.k.mode == KSpec::Mode::kUniform ? fjsim::KMode::kUniformInt
                                                       : fjsim::KMode::kFixed;
  config.k_fixed = spec.k.fixed;
  config.k_lo = spec.k.lo;
  config.k_hi = spec.k.hi;
  config.early_k = spec.k.mode == KSpec::Mode::kRedundant ? 1 : 0;
  config.draws = spec.requests;
  config.seed = spec.seed;
  return config;
}

fjsim::HeterogeneousConfig to_heterogeneous_config(const ScenarioSpec& spec) {
  require_topology(spec, Topology::kHeterogeneous, "to_heterogeneous_config");
  fjsim::HeterogeneousConfig config;
  config.services = make_services(spec);
  config.lambda = fjsim::lambda_for_max_load(config.services, spec.load);
  config.num_requests = spec.requests;
  config.warmup_fraction = spec.warmup_fraction;
  config.seed = spec.seed;
  config.max_parallelism = spec.max_parallelism;
  config.batch = spec.batch;
  return config;
}

fjsim::ConsolidatedConfig to_consolidated_config(const ScenarioSpec& spec) {
  require_topology(spec, Topology::kConsolidated, "to_consolidated_config");
  trace::FacebookWorkload::Params params;
  params.min_mean_ms = spec.workload.min_mean_ms;
  params.max_mean_ms = spec.workload.max_mean_ms;
  params.target_fraction = spec.workload.target_fraction;
  params.target_tasks = spec.workload.target_tasks;
  params.target_mean_ms = spec.workload.target_mean_ms;
  params.max_tasks = static_cast<std::uint32_t>(spec.nodes);
  const trace::FacebookWorkload workload(params);

  fjsim::ConsolidatedConfig config;
  static_cast<fjsim::NodeGroupConfig&>(config) = spec.group;
  config.num_nodes = spec.nodes;
  config.load = spec.load;
  config.generator = workload.generator();
  config.mean_work_per_job = workload.estimate_mean_work(spec.workload.service_floor);
  config.num_jobs = spec.requests;
  config.warmup_fraction = spec.warmup_fraction;
  config.seed = spec.seed;
  config.service_floor = spec.workload.service_floor;
  return config;
}

fjsim::PipelineConfig to_pipeline_config(const ScenarioSpec& spec) {
  require_topology(spec, Topology::kPipeline, "to_pipeline_config");
  fjsim::PipelineConfig config;
  for (const StageSpec& stage : spec.stages) {
    fjsim::PipelineStageConfig s;
    s.num_nodes = stage.nodes;
    s.service = make_service(stage.service);
    config.stages.push_back(std::move(s));
  }
  config.load = spec.load;
  config.num_requests = spec.requests;
  config.warmup_fraction = spec.warmup_fraction;
  config.seed = spec.seed;
  config.batch = spec.batch;
  return config;
}

}  // namespace forktail::scenario
