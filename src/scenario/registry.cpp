#include "scenario/registry.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "baselines/baseline.hpp"
#include "baselines/linear_bounds.hpp"
#include "core/evt.hpp"
#include "fjsim/consolidated.hpp"
#include "fjsim/heterogeneous.hpp"
#include "fjsim/homogeneous.hpp"
#include "fjsim/perfect_sampler.hpp"
#include "fjsim/pipeline.hpp"
#include "fjsim/subset.hpp"

namespace forktail::scenario {

namespace {

core::TaskStats to_task_stats(const stats::Welford& w) {
  return core::TaskStats{w.mean(), w.variance()};
}

/// Shared by the homogeneous and subset simulators: exact-stationary
/// responses from the certified CFTP sampler instead of warm-up + replay.
Outcome run_perfect_sampler(const ScenarioSpec& spec) {
  const fjsim::PerfectSamplerConfig config = to_perfect_config(spec);
  auto result = fjsim::run_perfect(config);
  Outcome outcome;
  outcome.spec = spec;
  outcome.service = config.service;
  outcome.responses = std::move(result.responses);
  outcome.task_stats = to_task_stats(result.task_stats);
  outcome.lambda = result.lambda;
  outcome.mean_k = result.mean_k;
  outcome.total_tasks = result.total_tasks;
  return outcome;
}

// ------------------------------------------------------------- simulators

class HomogeneousSimulator final : public Simulator {
 public:
  std::string name() const override { return "fjsim.homogeneous"; }

  Outcome run(const ScenarioSpec& spec) const override {
    if (spec.sampler == Sampler::kPerfect) return run_perfect_sampler(spec);
    const fjsim::HomogeneousConfig config = to_homogeneous_config(spec);
    Outcome outcome;
    outcome.spec = spec;
    outcome.service = config.service;
    outcome.mean_k = static_cast<double>(spec.nodes);
    if (!spec.faults.inert()) {
      // Active fault plan: the mitigated engine.  Inert plans stay on the
      // unmodified replay below, so fault-free runs are bit-identical to
      // the pre-fault-layer engine.
      auto result = fault::run_mitigated_homogeneous(config, spec.faults);
      outcome.responses = std::move(result.responses);
      outcome.task_stats = to_task_stats(result.task_stats);
      outcome.lambda = result.lambda;
      outcome.total_tasks = result.total_tasks;
      outcome.faulty = true;
      outcome.attempt_stats = to_task_stats(result.attempt_stats);
      outcome.attempt_count = result.attempt_stats.count();
      outcome.hedge_stats = to_task_stats(result.hedge_stats);
      outcome.hedge_count = result.hedge_stats.count();
      outcome.hedge_delay = result.hedge_delay;
      outcome.fault_counters = result.counters;
      return outcome;
    }
    auto result = fjsim::run_homogeneous(config);
    outcome.responses = std::move(result.responses);
    outcome.task_stats = to_task_stats(result.task_stats);
    outcome.lambda = result.lambda;
    outcome.total_tasks = result.total_tasks;
    return outcome;
  }
};

class HeterogeneousSimulator final : public Simulator {
 public:
  std::string name() const override { return "fjsim.heterogeneous"; }

  Outcome run(const ScenarioSpec& spec) const override {
    const fjsim::HeterogeneousConfig config = to_heterogeneous_config(spec);
    auto result = fjsim::run_heterogeneous(config);
    Outcome outcome;
    outcome.spec = spec;
    outcome.responses = std::move(result.responses);
    outcome.node_stats.reserve(result.node_stats.size());
    for (const stats::Welford& node : result.node_stats) {
      outcome.node_stats.push_back(to_task_stats(node));
    }
    outcome.lambda = result.lambda;
    outcome.mean_k = static_cast<double>(spec.nodes);
    outcome.total_tasks =
        spec.requests * static_cast<std::uint64_t>(spec.nodes);
    return outcome;
  }
};

class SubsetSimulator final : public Simulator {
 public:
  std::string name() const override { return "fjsim.subset"; }

  Outcome run(const ScenarioSpec& spec) const override {
    if (spec.sampler == Sampler::kPerfect) return run_perfect_sampler(spec);
    const fjsim::SubsetConfig config = to_subset_config(spec);
    auto result = fjsim::run_subset(config);
    Outcome outcome;
    outcome.spec = spec;
    outcome.responses = std::move(result.responses);
    outcome.task_stats = to_task_stats(result.task_stats);
    outcome.responses_by_k = std::move(result.responses_by_k);
    outcome.service = config.service;
    outcome.lambda = result.lambda;
    outcome.mean_k = result.mean_k;
    outcome.total_tasks = result.total_tasks;
    if (spec.faults.mitigation.early_k > 0) {
      // Early return is aggregation-only: tasks run unchanged, so the
      // pooled task moments double as the attempt telemetry.  Redundancy-d
      // also sets the engine's early_k (min-of-d), but it is a topology
      // choice, not a mitigation -- its outcomes stay clean.
      outcome.faulty = true;
      outcome.attempt_stats = outcome.task_stats;
      outcome.attempt_count = result.task_stats.count();
    }
    return outcome;
  }
};

class ConsolidatedSimulator final : public Simulator {
 public:
  std::string name() const override { return "fjsim.consolidated"; }

  Outcome run(const ScenarioSpec& spec) const override {
    const fjsim::ConsolidatedConfig config = to_consolidated_config(spec);
    auto result = fjsim::run_consolidated(config);
    Outcome outcome;
    outcome.spec = spec;
    outcome.responses = std::move(result.target_responses);
    outcome.task_stats = to_task_stats(result.target_task_stats);
    outcome.lambda = result.lambda;
    outcome.mean_k = static_cast<double>(spec.workload.target_tasks);
    outcome.total_tasks = result.total_tasks;
    return outcome;
  }
};

class PipelineSimulator final : public Simulator {
 public:
  std::string name() const override { return "fjsim.pipeline"; }

  Outcome run(const ScenarioSpec& spec) const override {
    const fjsim::PipelineConfig config = to_pipeline_config(spec);
    auto result = fjsim::run_pipeline(config);
    Outcome outcome;
    outcome.spec = spec;
    outcome.responses = std::move(result.responses);
    outcome.stage_stats.reserve(result.stage_task_stats.size());
    double mean_k = 0.0;
    for (std::size_t i = 0; i < result.stage_task_stats.size(); ++i) {
      core::StageSpec stage;
      stage.name = "stage-" + std::to_string(i);
      stage.tasks = to_task_stats(result.stage_task_stats[i]);
      stage.fanout = static_cast<double>(spec.stages[i].nodes);
      mean_k += stage.fanout;
      outcome.stage_stats.push_back(std::move(stage));
    }
    outcome.lambda = result.lambda;
    outcome.mean_k = mean_k;
    outcome.total_tasks =
        spec.requests * static_cast<std::uint64_t>(mean_k);
    return outcome;
  }
};

// ------------------------------------------------------------- predictors

/// True for the topologies whose outcome carries pooled task moments and a
/// single fan-out (the inputs of the homogeneous family of models).
bool pooled_stats_available(const Outcome& outcome) {
  switch (outcome.spec.topology) {
    case Topology::kHomogeneous:
    case Topology::kSubset:
    case Topology::kConsolidated:
      return true;
    case Topology::kHeterogeneous:
    case Topology::kPipeline:
      return false;
  }
  return false;
}

core::TaskCountMixture mixture_for(const Outcome& outcome) {
  return core::TaskCountMixture::uniform_int(outcome.spec.k.lo,
                                             outcome.spec.k.hi);
}

/// "forktail": the paper's model for the outcome's topology.
class ForkTailAutoPredictor final : public Predictor {
 public:
  std::string name() const override { return "forktail"; }
  bool applicable(const Outcome&) const override { return true; }

  double predict(const Outcome& outcome, double p) const override {
    switch (outcome.spec.topology) {
      case Topology::kHomogeneous:
        return core::homogeneous_quantile(outcome.task_stats, outcome.mean_k, p);
      case Topology::kHeterogeneous:
        return core::inhomogeneous_quantile(outcome.node_stats, p);
      case Topology::kSubset:
        if (outcome.spec.k.mode == KSpec::Mode::kUniform) {
          return core::mixture_quantile(outcome.task_stats, mixture_for(outcome), p);
        }
        if (outcome.spec.k.mode == KSpec::Mode::kRedundant) {
          return core::redundancy_quantile(
              outcome.task_stats, static_cast<double>(outcome.spec.k.fixed), p);
        }
        return core::homogeneous_quantile(
            outcome.task_stats, static_cast<double>(outcome.spec.k.fixed), p);
      case Topology::kConsolidated:
        return core::homogeneous_quantile(
            outcome.task_stats,
            static_cast<double>(outcome.spec.workload.target_tasks), p);
      case Topology::kPipeline:
        return core::PipelinePredictor(outcome.stage_stats).quantile(p);
    }
    throw std::logic_error("forktail predictor: unhandled topology");
  }
};

class HomogeneousPredictor final : public Predictor {
 public:
  std::string name() const override { return "homogeneous"; }
  bool applicable(const Outcome& outcome) const override {
    return pooled_stats_available(outcome);
  }
  double predict(const Outcome& outcome, double p) const override {
    return core::homogeneous_quantile(outcome.task_stats, outcome.mean_k, p);
  }
};

class InhomogeneousPredictor final : public Predictor {
 public:
  std::string name() const override { return "inhomogeneous"; }
  bool applicable(const Outcome& outcome) const override {
    return !outcome.node_stats.empty();
  }
  double predict(const Outcome& outcome, double p) const override {
    return core::inhomogeneous_quantile(outcome.node_stats, p);
  }
};

class MixturePredictor final : public Predictor {
 public:
  std::string name() const override { return "mixture"; }
  bool applicable(const Outcome& outcome) const override {
    return outcome.spec.topology == Topology::kSubset &&
           outcome.spec.k.mode == KSpec::Mode::kUniform;
  }
  double predict(const Outcome& outcome, double p) const override {
    return core::mixture_quantile(outcome.task_stats, mixture_for(outcome), p);
  }
};

class PipelineStagePredictor final : public Predictor {
 public:
  std::string name() const override { return "pipeline"; }
  bool applicable(const Outcome& outcome) const override {
    return !outcome.stage_stats.empty();
  }
  double predict(const Outcome& outcome, double p) const override {
    return core::PipelinePredictor(outcome.stage_stats).quantile(p);
  }
};

/// White-box M/G/1 (Eqs. 10-11): needs the service distribution and the
/// single-server M/G/1 structure (one server per node, no replication).
class WhiteboxMg1Predictor final : public Predictor {
 public:
  std::string name() const override { return "whitebox-mg1"; }
  bool applicable(const Outcome& outcome) const override {
    // E[S^2] must be finite for the sojourn mean to exist at all; services
    // declaring fewer finite moments (tail index <= 2) are out of scope.
    // Degradation PAST that point (infinite E[S^3]) is handled inside the
    // model, which substitutes an exponential surrogate for the variance.
    return outcome.spec.topology == Topology::kHomogeneous &&
           outcome.service != nullptr && outcome.spec.group.replicas == 1 &&
           outcome.spec.group.policy == fjsim::Policy::kSingle &&
           outcome.service->capabilities().moment_finite(2);
  }
  double predict(const Outcome& outcome, double p) const override {
    return core::whitebox_mg1_quantile(outcome.lambda, *outcome.service,
                                       outcome.mean_k, p);
  }
};

/// "evt": extreme-value correction for heavy-tailed services.  Selects the
/// Gumbel or Frechet branch from the service tail capability, so on light
/// tails it coincides with the plain ForkTail max quantile.
class EvtPredictor final : public Predictor {
 public:
  std::string name() const override { return "evt"; }
  bool applicable(const Outcome& outcome) const override {
    // Needs pooled task moments, the white-box service (for its declared
    // tail capability), and a per-node M/G/1 structure.  Redundancy-d is a
    // min, not a max -- out of scope.
    return pooled_stats_available(outcome) && outcome.service != nullptr &&
           outcome.lambda > 0.0 && outcome.spec.group.replicas == 1 &&
           outcome.spec.group.policy == fjsim::Policy::kSingle &&
           outcome.spec.k.mode != KSpec::Mode::kRedundant;
  }
  double predict(const Outcome& outcome, double p) const override {
    const double node_lambda = outcome.lambda * outcome.mean_k /
                               static_cast<double>(outcome.spec.nodes);
    return core::evt_max_quantile(outcome.task_stats, outcome.mean_k, p,
                                  node_lambda, *outcome.service)
        .value;
  }
};

/// Adapter exposing one baselines::Baseline through the predictor
/// interface.  The registry used to re-implement each baseline's
/// applicability gate and construction here (hand-built EatPredictor,
/// inline expfit); dispatch now goes through BaselineRegistry so the
/// benches, the report layer, and the CLI all see the same roster.
class BaselinePredictor final : public Predictor {
 public:
  explicit BaselinePredictor(const baselines::Baseline* baseline)
      : baseline_(baseline) {}
  std::string name() const override { return baseline_->name(); }
  bool applicable(const Outcome& outcome) const override {
    return baseline_->applicable(baseline_input(outcome));
  }
  double predict(const Outcome& outcome, double p) const override {
    return baseline_->predict(baseline_input(outcome), p);
  }

 private:
  const baselines::Baseline* baseline_;
};

/// Degraded-mode model: GE order statistics composed with the retry /
/// hedge / k-of-n transforms (fault/predict.hpp), fed by the outcome's
/// counterfactual attempt and hedge telemetry.  Only meaningful for
/// outcomes produced under an active fault plan.
class DegradedPredictor final : public Predictor {
 public:
  std::string name() const override { return "forktail-degraded"; }
  bool applicable(const Outcome& outcome) const override {
    return outcome.faulty;
  }
  double predict(const Outcome& outcome, double p) const override {
    return predict_degraded(outcome, p).value;
  }
};

}  // namespace

baselines::BaselineInput baseline_input(const Outcome& outcome) {
  const ScenarioSpec& spec = outcome.spec;
  baselines::BaselineInput in;
  in.task_stats = outcome.task_stats;
  in.service = outcome.service;
  in.responses = std::span<const double>(outcome.responses);
  in.lambda = outcome.lambda;
  in.load = spec.load;
  in.cluster_nodes = spec.nodes;
  in.mean_fanout = outcome.mean_k;
  in.single_server_fifo = spec.group.replicas == 1 &&
                          spec.group.policy == fjsim::Policy::kSingle;
  in.homogeneous_topology = spec.topology == Topology::kHomogeneous;
  switch (spec.topology) {
    case Topology::kHomogeneous:
      in.fanout = static_cast<int>(spec.nodes);
      in.join = in.fanout;
      // Active fault plans reshape the engine (retries, hedges, early
      // return); no certified (n, k) claim is made for them.
      in.nk_clean = in.single_server_fifo && spec.faults.inert();
      break;
    case Topology::kSubset: {
      // Early return at k maps exactly onto the (n, k) join index; the
      // subset validator admits no other fault knob, so the system stays a
      // clean fork-join queue.
      const int early = spec.faults.mitigation.early_k;
      if (spec.k.mode == KSpec::Mode::kUniform) {
        in.k_lo = spec.k.lo;
        in.k_hi = spec.k.hi;
        in.fanout = static_cast<int>(std::llround(outcome.mean_k));
        in.join = early > 0 ? early : in.fanout;
      } else if (spec.k.mode == KSpec::Mode::kRedundant) {
        // Min-of-d replication: issue d, join at the first finisher.
        in.fanout = spec.k.fixed;
        in.join = 1;
      } else {
        in.fanout = spec.k.fixed;
        in.join = early > 0 ? early : spec.k.fixed;
      }
      in.nk_clean = in.single_server_fifo;
      break;
    }
    case Topology::kConsolidated:
      in.fanout = static_cast<int>(spec.workload.target_tasks);
      in.join = in.fanout;
      in.nk_clean = false;  // shared cluster, non-Poisson per-node arrivals
      break;
    case Topology::kHeterogeneous:
    case Topology::kPipeline:
      in.nk_clean = false;
      break;
  }
  return in;
}

baselines::Bracket certified_bracket(const Outcome& outcome,
                                     double percentile) {
  static const baselines::LinearBoundsBaseline bounds;
  const baselines::BaselineInput in = baseline_input(outcome);
  if (!bounds.applicable(in)) {
    return baselines::Bracket{0.0,
                              std::numeric_limits<double>::infinity(), false};
  }
  return bounds.bracket(in, percentile);
}

fault::DegradedPrediction predict_degraded(const Outcome& outcome,
                                           double percentile) {
  if (!outcome.faulty) {
    throw std::logic_error(
        "predict_degraded: outcome was not produced under a fault plan");
  }
  fault::MitigatedStats stats;
  stats.attempt_mean = outcome.attempt_stats.mean;
  stats.attempt_variance = outcome.attempt_stats.variance;
  stats.attempt_count = outcome.attempt_count;
  stats.hedge_mean = outcome.hedge_stats.mean;
  stats.hedge_variance = outcome.hedge_stats.variance;
  stats.hedge_count = outcome.hedge_count;
  stats.hedge_delay = outcome.hedge_delay;
  const int fanout = static_cast<int>(std::llround(outcome.mean_k));
  return fault::predict_mitigated(stats, outcome.spec.faults.mitigation,
                                  fanout, percentile / 100.0);
}

// -------------------------------------------------------------- registries

SimulatorRegistry& SimulatorRegistry::global() {
  static SimulatorRegistry* registry = [] {
    auto* r = new SimulatorRegistry;
    r->register_simulator(Topology::kHomogeneous,
                          std::make_unique<HomogeneousSimulator>());
    r->register_simulator(Topology::kHeterogeneous,
                          std::make_unique<HeterogeneousSimulator>());
    r->register_simulator(Topology::kSubset, std::make_unique<SubsetSimulator>());
    r->register_simulator(Topology::kConsolidated,
                          std::make_unique<ConsolidatedSimulator>());
    r->register_simulator(Topology::kPipeline,
                          std::make_unique<PipelineSimulator>());
    return r;
  }();
  return *registry;
}

void SimulatorRegistry::register_simulator(Topology topology,
                                           std::unique_ptr<Simulator> simulator) {
  simulators_[topology] = std::move(simulator);
}

const Simulator& SimulatorRegistry::for_topology(Topology topology) const {
  const auto it = simulators_.find(topology);
  if (it == simulators_.end()) {
    throw std::logic_error("no simulator registered for topology " +
                           topology_name(topology));
  }
  return *it->second;
}

Outcome SimulatorRegistry::run(const ScenarioSpec& spec) const {
  validate(spec);
  return for_topology(spec.topology).run(spec);
}

PredictorRegistry& PredictorRegistry::global() {
  static PredictorRegistry* registry = [] {
    auto* r = new PredictorRegistry;
    r->register_predictor(std::make_unique<ForkTailAutoPredictor>());
    r->register_predictor(std::make_unique<HomogeneousPredictor>());
    r->register_predictor(std::make_unique<InhomogeneousPredictor>());
    r->register_predictor(std::make_unique<MixturePredictor>());
    r->register_predictor(std::make_unique<PipelineStagePredictor>());
    r->register_predictor(std::make_unique<WhiteboxMg1Predictor>());
    r->register_predictor(std::make_unique<EvtPredictor>());
    for (const char* name : {"expfit", "eat", "linear-bounds"}) {
      const baselines::Baseline* baseline =
          baselines::BaselineRegistry::global().find(name);
      if (baseline == nullptr) {
        throw std::logic_error(std::string("baseline roster is missing ") +
                               name);
      }
      r->register_predictor(std::make_unique<BaselinePredictor>(baseline));
    }
    r->register_predictor(std::make_unique<DegradedPredictor>());
    return r;
  }();
  return *registry;
}

void PredictorRegistry::register_predictor(std::unique_ptr<Predictor> predictor) {
  predictors_.push_back(std::move(predictor));
}

const Predictor* PredictorRegistry::find(const std::string& name) const {
  for (const auto& p : predictors_) {
    if (p->name() == name) return p.get();
  }
  return nullptr;
}

std::vector<std::string> PredictorRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(predictors_.size());
  for (const auto& p : predictors_) out.push_back(p->name());
  return out;
}

std::vector<const Predictor*> PredictorRegistry::applicable(
    const Outcome& outcome) const {
  std::vector<const Predictor*> out;
  for (const auto& p : predictors_) {
    if (p->applicable(outcome)) out.push_back(p.get());
  }
  return out;
}

}  // namespace forktail::scenario
