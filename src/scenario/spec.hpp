// ScenarioSpec: one declarative description of a fork-join experiment.
//
// The paper's design space (Section 5) -- k = N, k <= N fixed / uniform,
// redundant or replicated nodes, consolidated clusters, pipelined stages --
// used to be spread across five hand-wired simulator front-ends and ~20
// bench binaries that each assembled their own config structs.  A
// ScenarioSpec is the single declarative entry point: a value type with
// JSON parse/serialize and validation that fully describes the topology,
// service distributions, load, and sampling knobs of one simulated system.
// The scenario registry (scenario/registry.hpp) dispatches a spec to the
// matching fjsim engine, and the predictor registry evaluates any model on
// the result, so a (spec, predictor, percentiles) triple fully describes
// one experiment cell.  New scenarios are data (a JSON file under
// examples/), not code.
//
// Every existing engine keeps its bit-identical replay contract: the spec
// layer moves construction and dispatch, not math.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dist/distribution.hpp"
#include "fault/plan.hpp"
#include "fjsim/config.hpp"
#include "fjsim/consolidated.hpp"
#include "fjsim/heterogeneous.hpp"
#include "fjsim/homogeneous.hpp"
#include "fjsim/perfect_sampler.hpp"
#include "fjsim/pipeline.hpp"
#include "fjsim/subset.hpp"
#include "util/json.hpp"

namespace forktail::scenario {

/// Schema identifier embedded in every serialized spec.
inline constexpr const char* kScenarioSchema = "forktail.scenario.v1";

/// Which simulator family handles the spec (Section 4 / 5 of the paper).
enum class Topology : std::uint8_t {
  kHomogeneous,    ///< k = N, shared service distribution
  kHeterogeneous,  ///< k = N, per-node service distributions (Eq. 4/5)
  kSubset,         ///< k <= N, fixed or uniform fan-out (Section 4.2)
  kConsolidated,   ///< trace-driven shared cluster (Section 4.3)
  kPipeline,       ///< multi-stage fork-join workflow (Section 3.1)
};

std::string topology_name(Topology topology);
Topology topology_from_name(const std::string& name);

/// How stationary responses are drawn ("sampler" key).
enum class Sampler : std::uint8_t {
  kReplay,   ///< warm-up + replay through the fjsim engines (default)
  kPerfect,  ///< exact-stationary coupling-from-the-past draws
             ///< (fjsim/perfect_sampler.hpp; homogeneous/subset only)
};

std::string sampler_name(Sampler sampler);
Sampler sampler_from_name(const std::string& name);

/// One service-time distribution: a name from the paper's roster
/// (dist::factory) with an optional mean override (0 = the paper's mean)
/// and, for the regularly-varying families ("Pareto" / "HeavyMixture"),
/// an optional tail index (0 = dist::kDefaultTailIndex).
struct ServiceSpec {
  std::string dist = "Exponential";
  double mean = 0.0;
  double tail = 0.0;

  bool operator==(const ServiceSpec&) const = default;
};

/// Generative per-node heterogeneity: node service means log-uniform in
/// [1, spread] ms, drawn from `seed` (the inhomogeneous_scale construction).
/// Only consulted when no explicit per-node `services` list is given.
struct HeterogeneitySpec {
  double spread = 1.0;
  std::uint64_t seed = 1;

  bool operator==(const HeterogeneitySpec&) const = default;
};

/// Per-request fan-out.
struct KSpec {
  /// kRedundant ("redundancy-d"): issue `fixed` replicas of the request and
  /// take the FIRST finisher (min-of-d) -- the replication counterpart of
  /// the fork-join max.  JSON accepts the sugar key "d" for `fixed`.
  enum class Mode : std::uint8_t { kAll, kFixed, kUniform, kRedundant };
  Mode mode = Mode::kAll;  ///< kAll: k = N (homogeneous/heterogeneous)
  int fixed = 0;           ///< kFixed / kRedundant: tasks per request
  int lo = 0;              ///< kUniform: K ~ U[lo, hi]
  int hi = 0;

  bool operator==(const KSpec&) const = default;
};

/// Consolidated background workload (trace::FacebookWorkload parameters).
struct WorkloadSpec {
  double min_mean_ms = 1.0;
  double max_mean_ms = 1000.0;
  double target_fraction = 0.1;
  std::uint32_t target_tasks = 100;
  double target_mean_ms = 50.0;
  double service_floor = 0.05;

  bool operator==(const WorkloadSpec&) const = default;
};

/// One pipeline stage: a k = N fork-join over `nodes` with its own service.
struct StageSpec {
  std::size_t nodes = 8;
  ServiceSpec service;

  bool operator==(const StageSpec&) const = default;
};

/// Configuration of the always-on prediction daemon ("serve" section; the
/// `forktail serve` verb).  The daemon's fleet width is the spec's `nodes`;
/// everything here shapes the ingest/query planes.  A spec without the
/// section serves with these defaults, so every scenario file is servable.
struct ServeSpec {
  std::uint32_t udp_port = 0;   ///< sample ingest; 0 = ephemeral
  std::uint32_t tcp_port = 0;   ///< query + scrape; 0 = ephemeral
  std::uint32_t service = 0;    ///< wire service id accepted by the daemon
  std::size_t shards = 2;       ///< ingest shards (worker threads)
  double window_seconds = 20.0; ///< per-node sliding window
  std::size_t min_samples = 30; ///< per-window fill threshold
  double skew_tolerance = 0.5;  ///< backwards-clock clamp bound, seconds
  std::size_t ring_capacity = 1024;  ///< batches per shard ring (shed bound)
  double liveness_timeout = 60.0;    ///< idle seconds before agent is stale
  double sweep_interval = 0.5;       ///< liveness sweep cadence, seconds
  double stall_threshold = 5.0;      ///< watchdog ingest-stall horizon

  bool operator==(const ServeSpec&) const = default;
};

struct ScenarioSpec {
  std::string name = "unnamed";
  Topology topology = Topology::kHomogeneous;

  std::size_t nodes = 10;          ///< fork nodes (cluster width)
  fjsim::NodeGroupConfig group;    ///< replicas / policy / redundant_delay
  ServiceSpec service;             ///< shared service distribution
  std::vector<ServiceSpec> services;  ///< heterogeneous: explicit per-node
  HeterogeneitySpec heterogeneity;    ///< heterogeneous: generative spread
  KSpec k;                         ///< fan-out (subset topologies)
  double load = 0.8;               ///< per-server rho in (0,1); for the
                                   ///< heterogeneous topology: bottleneck rho
  WorkloadSpec workload;           ///< consolidated only
  std::vector<StageSpec> stages;   ///< pipeline only

  std::uint64_t requests = 10000;  ///< measured requests (jobs) post warm-up
  double warmup_fraction = 0.25;
  /// Stationary sampling strategy.  kPerfect draws each response from the
  /// exact stationary law via certified coupling-from-the-past; it
  /// requires a homogeneous or subset topology with plain single-server
  /// nodes, an inert fault plan, and a light-tailed service (one with an
  /// MGF) -- validate() rejects everything else.
  Sampler sampler = Sampler::kReplay;
  std::uint64_t seed = 1;
  std::size_t max_parallelism = 0;  ///< node-replay worker cap (0 = pool)
  std::size_t batch = 0;            ///< service-demand block size (0 = default)
  bool group_by_k = false;          ///< subset: bucket responses by k

  /// Fault injection + tail mitigation ("faults" section; src/fault).
  /// Default-inert: a spec without the key runs the unmodified engines.
  fault::FaultPlan faults;

  /// Always-on daemon configuration ("serve" section; `forktail serve`).
  ServeSpec serve;

  bool operator==(const ScenarioSpec&) const = default;
};

// ------------------------------------------------------------- JSON layer

/// Serialize to the forktail.scenario.v1 JSON document.  Serialization is
/// total and deterministic: parse(to_json(spec)) == spec for every valid
/// spec (the round-trip identity the tests pin).
util::Json to_json(const ScenarioSpec& spec);

/// Parse a forktail.scenario.v1 document.  Unknown keys are rejected (a
/// typo must not silently run the default configuration); missing keys take
/// the documented defaults.  Throws fjsim::ConfigError on structural
/// problems and std::runtime_error on malformed JSON.
ScenarioSpec parse_scenario(const util::Json& doc);
ScenarioSpec parse_scenario_text(const std::string& text);
ScenarioSpec load_scenario_file(const std::string& path);

/// Semantic validation: throws fjsim::ConfigError naming the offending
/// field (unknown distribution, rho >= 1, k > N, empty pipeline, ...).
void validate(const ScenarioSpec& spec);

// -------------------------------------------------- config materialisation

/// Resolve one ServiceSpec through dist::factory.
dist::DistPtr make_service(const ServiceSpec& service);

/// Resolve the per-node service list of a heterogeneous spec (explicit
/// list, or the generative log-uniform spread).
std::vector<dist::DistPtr> make_services(const ScenarioSpec& spec);

/// Each converter checks that the spec's topology matches and returns the
/// engine config the hand-wired benches used to assemble by hand.  The
/// mapping is value-for-value: a spec-built config runs bit-identically to
/// the equivalent hand-wired one.
fjsim::HomogeneousConfig to_homogeneous_config(const ScenarioSpec& spec);
fjsim::SubsetConfig to_subset_config(const ScenarioSpec& spec);
/// Perfect-sampler materialisation (spec.sampler == kPerfect); valid for
/// the homogeneous and subset topologies.
fjsim::PerfectSamplerConfig to_perfect_config(const ScenarioSpec& spec);
fjsim::HeterogeneousConfig to_heterogeneous_config(const ScenarioSpec& spec);
fjsim::ConsolidatedConfig to_consolidated_config(const ScenarioSpec& spec);
fjsim::PipelineConfig to_pipeline_config(const ScenarioSpec& spec);

}  // namespace forktail::scenario
