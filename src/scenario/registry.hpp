// Simulator and predictor registries: the dispatch half of the scenario
// layer.
//
// A ScenarioSpec names a topology; the SimulatorRegistry maps it to the
// fjsim engine that simulates it and normalises the engine's result into a
// single Outcome shape (responses + black-box task moments).  The
// PredictorRegistry maps model names (the paper's predictors plus the
// baselines) onto Outcomes, so a (spec, predictor, percentiles) triple
// fully describes one experiment cell and `forktail run --predict all`
// can evaluate every applicable model in one pass.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline.hpp"
#include "core/pipeline.hpp"
#include "core/predictor.hpp"
#include "dist/distribution.hpp"
#include "fault/predict.hpp"
#include "fault/sim.hpp"
#include "scenario/spec.hpp"

namespace forktail::scenario {

/// Normalised result of simulating one spec: everything any predictor in
/// the roster consumes, regardless of which engine produced it.
struct Outcome {
  ScenarioSpec spec;  ///< the spec that produced this outcome

  std::vector<double> responses;  ///< measured request/job response times
  core::TaskStats task_stats;     ///< pooled black-box task moments
  /// Heterogeneous: one (mean, variance) per fork node (Eq. 4/5 inputs).
  std::vector<core::TaskStats> node_stats;
  /// Pipeline: per-stage black-box moments + fan-out (PipelinePredictor
  /// inputs).
  std::vector<core::StageSpec> stage_stats;
  /// Subset with group_by_k: measured responses bucketed by the request's k.
  std::map<int, std::vector<double>> responses_by_k;

  dist::DistPtr service;  ///< shared service distribution (when one exists)
  double lambda = 0.0;    ///< request/job arrival rate the engine derived
  double mean_k = 0.0;    ///< expected fan-out per request
  std::uint64_t total_tasks = 0;

  // Fault layer (spec.faults non-inert; src/fault).  `faulty` marks an
  // outcome produced under an active FaultPlan; the telemetry below feeds
  // the degraded-mode predictor and the RunReport counters.
  bool faulty = false;
  core::TaskStats attempt_stats;  ///< counterfactual primary-attempt moments
  std::uint64_t attempt_count = 0;
  core::TaskStats hedge_stats;    ///< counterfactual hedge-lane moments
  std::uint64_t hedge_count = 0;
  double hedge_delay = 0.0;       ///< hedge launch delay in force
  fault::FaultCounters fault_counters;
};

/// One simulator family: consumes a validated spec, produces an Outcome.
class Simulator {
 public:
  virtual ~Simulator() = default;
  virtual std::string name() const = 0;
  virtual Outcome run(const ScenarioSpec& spec) const = 0;
};

/// Topology -> engine dispatch.  The five fjsim engines are registered at
/// static-init time; tests can register additional ones.
class SimulatorRegistry {
 public:
  /// Process-wide registry pre-populated with the fjsim engines.
  static SimulatorRegistry& global();

  void register_simulator(Topology topology, std::unique_ptr<Simulator> simulator);
  const Simulator& for_topology(Topology topology) const;

  /// validate(spec) then dispatch to the registered engine.
  Outcome run(const ScenarioSpec& spec) const;

 private:
  std::map<Topology, std::unique_ptr<Simulator>> simulators_;
};

/// One tail-latency model evaluated on an Outcome.
class Predictor {
 public:
  virtual ~Predictor() = default;
  virtual std::string name() const = 0;
  /// Whether this model can run on the outcome (e.g. the white-box M/G/1
  /// needs a known service distribution; EAT additionally needs its LST).
  virtual bool applicable(const Outcome& outcome) const = 0;
  /// Predicted p-th percentile (ms) of the request response time.
  virtual double predict(const Outcome& outcome, double percentile) const = 0;
};

/// Evaluate the degraded-mode predictor (fault/predict.hpp) on a faulty
/// outcome: the full prediction including the `degraded` flag and the
/// fallback reasons the plain Predictor interface cannot surface.
/// `percentile` in (0, 100).  Requires outcome.faulty.
fault::DegradedPrediction predict_degraded(const Outcome& outcome,
                                           double percentile);

/// Normalise an Outcome into the shape the baselines consume: the (n, k)
/// fork-join structure (homogeneous: (N, N); subset: (k, early_k | k);
/// uniform-k mixtures carry their range), the measurements, and the
/// structural flags the applicability gates check.  The returned input
/// borrows `outcome.responses` -- keep the outcome alive while using it.
baselines::BaselineInput baseline_input(const Outcome& outcome);

/// The certified [lower, upper] bracket for the outcome's percentile from
/// the linear-bounds baseline, or a nullopt-style uncertified sentinel
/// (lower 0, upper +inf, certified false) when the baseline does not apply
/// (dirty topology, heavy-tailed service, ...).
baselines::Bracket certified_bracket(const Outcome& outcome,
                                     double percentile);

/// Name -> model dispatch: the ForkTail predictors (homogeneous /
/// inhomogeneous / mixture / white-box M/G/1 / pipeline), the baselines
/// (expfit, EAT), and "forktail", which picks the paper's model for the
/// outcome's topology.
class PredictorRegistry {
 public:
  static PredictorRegistry& global();

  void register_predictor(std::unique_ptr<Predictor> predictor);
  /// nullptr when unknown.
  const Predictor* find(const std::string& name) const;
  std::vector<std::string> names() const;
  std::vector<const Predictor*> applicable(const Outcome& outcome) const;

 private:
  std::vector<std::unique_ptr<Predictor>> predictors_;
};

}  // namespace forktail::scenario
