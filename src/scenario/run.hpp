// One-shot scenario execution: simulate a spec, measure its tail, evaluate
// the requested predictors -- the engine behind `forktail run`.
#pragma once

#include <string>
#include <vector>

#include "scenario/registry.hpp"
#include "scenario/spec.hpp"
#include "util/json.hpp"

namespace forktail::scenario {

/// One predictor's answers across the requested percentiles (parallel to
/// ScenarioReport::percentiles).
struct PredictionRow {
  std::string predictor;
  std::vector<double> predicted_ms;
  std::vector<double> error_pct;  ///< 100 * (pred - measured) / measured
  /// Whether each prediction lies inside the certified bracket for its
  /// percentile.  Always true when no bracket is certified (an uncertified
  /// bracket constrains nothing); a certified false flags a prediction
  /// that is provably wrong, not merely far from the sample estimate.
  std::vector<bool> in_bracket;
};

struct ScenarioReport {
  Outcome outcome;                 ///< outcome.spec is the executed spec
  std::vector<double> percentiles; ///< requested p values (in (0, 100))
  std::vector<double> measured_ms; ///< simulated percentiles, same order
  /// Certified [lower, upper] percentile brackets from the linear-bounds
  /// baseline, parallel to `percentiles`.  Sentinel (0, +inf, certified
  /// false) entries when the scenario is outside the certified regime.
  std::vector<baselines::Bracket> brackets;
  std::vector<PredictionRow> predictions;

  /// Degraded-mode confidence flag: true when the fault-aware predictor
  /// had to fall back on any approximation (thin/missing telemetry,
  /// defective completion mass); always false for fault-free scenarios.
  bool degraded = false;
  std::vector<std::string> degraded_reasons;
};

/// Simulate `spec` through the simulator registry, measure `percentiles`
/// of the response sample, and evaluate `predictors` (a list of registry
/// names; the single entry "all" selects every applicable model; an empty
/// list selects none).  Throws fjsim::ConfigError for invalid specs and
/// std::invalid_argument for unknown or inapplicable predictor names.
ScenarioReport run_scenario(const ScenarioSpec& spec,
                            const std::vector<std::string>& predictors,
                            const std::vector<double>& percentiles);

/// Serialize a report (forktail.scenario_report.v1): the spec, sample
/// counts, measured percentiles, and each predictor's values and errors.
util::Json to_json(const ScenarioReport& report);

}  // namespace forktail::scenario
