#include "scenario/run.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/percentile.hpp"
#include "stats/summary.hpp"

namespace forktail::scenario {

ScenarioReport run_scenario(const ScenarioSpec& spec,
                            const std::vector<std::string>& predictors,
                            const std::vector<double>& percentiles) {
  for (const double p : percentiles) {
    if (!(p > 0.0 && p < 100.0)) {
      throw std::invalid_argument("percentile must be in (0, 100), got " +
                                  std::to_string(p));
    }
  }

  ScenarioReport report;
  report.outcome = SimulatorRegistry::global().run(spec);
  report.percentiles = percentiles;
  report.measured_ms =
      stats::percentiles(report.outcome.responses, percentiles);
  for (const double p : percentiles) {
    report.brackets.push_back(certified_bracket(report.outcome, p));
  }

  const PredictorRegistry& registry = PredictorRegistry::global();
  std::vector<const Predictor*> selected;
  if (predictors.size() == 1 && predictors.front() == "all") {
    selected = registry.applicable(report.outcome);
  } else {
    for (const std::string& name : predictors) {
      const Predictor* predictor = registry.find(name);
      if (predictor == nullptr) {
        std::string known;
        for (const auto& n : registry.names()) {
          known += (known.empty() ? "" : " | ") + n;
        }
        throw std::invalid_argument("unknown predictor: " + name + " (want " +
                                    known + " | all)");
      }
      if (!predictor->applicable(report.outcome)) {
        throw std::invalid_argument(
            "predictor " + name + " is not applicable to a " +
            topology_name(spec.topology) + " scenario");
      }
      selected.push_back(predictor);
    }
  }

  for (const Predictor* predictor : selected) {
    PredictionRow row;
    row.predictor = predictor->name();
    for (std::size_t i = 0; i < percentiles.size(); ++i) {
      const double predicted = predictor->predict(report.outcome, percentiles[i]);
      row.predicted_ms.push_back(predicted);
      row.error_pct.push_back(
          stats::relative_error_pct(predicted, report.measured_ms[i]));
      const baselines::Bracket& bracket = report.brackets[i];
      row.in_bracket.push_back(!bracket.certified ||
                               bracket.contains(predicted));
    }
    report.predictions.push_back(std::move(row));
  }

  // Degraded-mode confidence: evaluated once at the most extreme requested
  // percentile (telemetry-quality fallbacks do not depend on p).  This is
  // report metadata, not a prediction row, so it is computed even when the
  // degraded predictor itself was not selected.
  if (report.outcome.faulty) {
    const double p = percentiles.empty()
                         ? 99.0
                         : *std::max_element(percentiles.begin(),
                                             percentiles.end());
    const fault::DegradedPrediction dp = predict_degraded(report.outcome, p);
    report.degraded = dp.degraded;
    report.degraded_reasons = dp.reasons;
  }
  return report;
}

util::Json to_json(const ScenarioReport& report) {
  util::Json doc = util::Json::object();
  doc.set("schema", "forktail.scenario_report.v1");
  doc.set("scenario", to_json(report.outcome.spec));

  util::Json sim = util::Json::object();
  sim.set("responses", report.outcome.responses.size());
  sim.set("lambda", report.outcome.lambda);
  sim.set("mean_k", report.outcome.mean_k);
  sim.set("total_tasks", report.outcome.total_tasks);
  sim.set("task_mean_ms", report.outcome.task_stats.mean);
  sim.set("task_variance", report.outcome.task_stats.variance);
  doc.set("simulation", std::move(sim));

  util::Json percentiles = util::Json::array();
  for (std::size_t i = 0; i < report.percentiles.size(); ++i) {
    util::Json row = util::Json::object();
    row.set("p", report.percentiles[i]);
    row.set("measured_ms", report.measured_ms[i]);
    if (i < report.brackets.size() && report.brackets[i].certified) {
      row.set("lower_ms", report.brackets[i].lower);
      row.set("upper_ms", report.brackets[i].upper);
      row.set("certified", true);
    }
    percentiles.push_back(std::move(row));
  }
  doc.set("measured", std::move(percentiles));

  util::Json predictions = util::Json::array();
  for (const PredictionRow& row : report.predictions) {
    util::Json p = util::Json::object();
    p.set("predictor", row.predictor);
    util::Json values = util::Json::array();
    for (std::size_t i = 0; i < report.percentiles.size(); ++i) {
      util::Json cell = util::Json::object();
      cell.set("p", report.percentiles[i]);
      cell.set("predicted_ms", row.predicted_ms[i]);
      cell.set("error_pct", row.error_pct[i]);
      if (i < report.brackets.size() && report.brackets[i].certified) {
        cell.set("in_bracket",
                 i < row.in_bracket.size() && row.in_bracket[i]);
      }
      values.push_back(std::move(cell));
    }
    p.set("values", std::move(values));
    predictions.push_back(std::move(p));
  }
  doc.set("predictions", std::move(predictions));

  // Fault telemetry only for faulty outcomes: fault-free report documents
  // are byte-identical to the pre-fault-layer shape.
  if (report.outcome.faulty) {
    const fault::FaultCounters& c = report.outcome.fault_counters;
    util::Json fault = util::Json::object();
    fault.set("degraded", report.degraded);
    util::Json reasons = util::Json::array();
    for (const std::string& r : report.degraded_reasons) reasons.push_back(r);
    fault.set("degraded_reasons", std::move(reasons));
    fault.set("injected_crashes", c.crashes);
    fault.set("injected_slowdowns", c.slowdowns);
    fault.set("injected_blips", c.blips);
    fault.set("hedges_launched", c.hedges_launched);
    fault.set("hedges_won", c.hedges_won);
    fault.set("retries", c.retries);
    fault.set("timeouts", c.timeouts);
    fault.set("dropped_requests", c.dropped_requests);
    fault.set("hedge_delay_ms", report.outcome.hedge_delay);
    fault.set("attempt_mean_ms", report.outcome.attempt_stats.mean);
    fault.set("attempt_count", report.outcome.attempt_count);
    fault.set("hedge_count", report.outcome.hedge_count);
    doc.set("fault", std::move(fault));
  }
  return doc;
}

}  // namespace forktail::scenario
