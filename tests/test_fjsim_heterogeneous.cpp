#include "fjsim/heterogeneous.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/predictor.hpp"
#include "dist/basic.hpp"
#include "dist/factory.hpp"
#include "fjsim/homogeneous.hpp"
#include "stats/percentile.hpp"
#include "stats/summary.hpp"

namespace forktail::fjsim {
namespace {

std::vector<dist::DistPtr> mixed_cluster(std::size_t n, double slow_factor) {
  std::vector<dist::DistPtr> services;
  services.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Node means spread linearly from 1.0 to slow_factor.
    const double mean =
        1.0 + (slow_factor - 1.0) * static_cast<double>(i) /
                  static_cast<double>(n - 1);
    services.push_back(std::make_shared<dist::Exponential>(mean));
  }
  return services;
}

TEST(Heterogeneous, LambdaForMaxLoadUsesBottleneck) {
  const auto services = mixed_cluster(8, 4.0);
  const double lambda = lambda_for_max_load(services, 0.8);
  EXPECT_NEAR(lambda * 4.0, 0.8, 1e-12);  // slowest mean = 4
  EXPECT_THROW(lambda_for_max_load({}, 0.8), std::invalid_argument);
  EXPECT_THROW(lambda_for_max_load(services, 1.0), std::invalid_argument);
}

TEST(Heterogeneous, IdenticalNodesMatchHomogeneousRunner) {
  // With all services equal, the heterogeneous runner must reproduce the
  // homogeneous one bit-for-bit at equal seeds (same stream layout).
  const dist::DistPtr service = dist::make_named("Exponential");
  HeterogeneousConfig het;
  het.services.assign(8, service);
  het.lambda = 0.8 / service->mean();
  het.num_requests = 20000;
  het.seed = 9;
  const auto rh = run_heterogeneous(het);

  HomogeneousConfig hom;
  hom.num_nodes = 8;
  hom.service = service;
  hom.load = 0.8;
  hom.num_requests = 20000;
  hom.seed = 9;
  const auto rm = run_homogeneous(hom);

  ASSERT_EQ(rh.responses.size(), rm.responses.size());
  for (std::size_t i = 0; i < 100; ++i) {
    ASSERT_DOUBLE_EQ(rh.responses[i], rm.responses[i]);
  }
}

TEST(Heterogeneous, SlowNodeDominatesPerNodeStats) {
  const auto services = mixed_cluster(8, 5.0);
  HeterogeneousConfig cfg;
  cfg.services = services;
  cfg.lambda = lambda_for_max_load(services, 0.7);
  cfg.num_requests = 40000;
  cfg.seed = 10;
  const auto r = run_heterogeneous(cfg);
  ASSERT_EQ(r.node_stats.size(), 8u);
  // Mean task response must increase along the slowness gradient.
  EXPECT_LT(r.node_stats.front().mean(), r.node_stats.back().mean());
  EXPECT_NEAR(r.max_utilization, 0.7, 1e-12);
}

TEST(Heterogeneous, InhomogeneousPredictorBeatsPooledAtHighLoad) {
  // The point of Eq. 4: with a strong speed gradient, the per-node model
  // tracks the simulated p99 better than pooling all nodes into one.
  const auto services = mixed_cluster(16, 6.0);
  HeterogeneousConfig cfg;
  cfg.services = services;
  cfg.lambda = lambda_for_max_load(services, 0.85);
  cfg.num_requests = 60000;
  cfg.warmup_fraction = 0.3;
  cfg.seed = 11;
  const auto r = run_heterogeneous(cfg);
  const double measured = stats::percentile(r.responses, 99.0);

  std::vector<core::TaskStats> nodes;
  stats::Welford pooled;
  for (const auto& w : r.node_stats) {
    nodes.push_back({w.mean(), w.variance()});
    pooled.merge(w);
  }
  const double inhom = core::inhomogeneous_quantile(nodes, 99.0);
  const double hom = core::homogeneous_quantile(
      {pooled.mean(), pooled.variance()}, 16.0, 99.0);
  const double err_inhom = std::fabs(stats::relative_error_pct(inhom, measured));
  const double err_hom = std::fabs(stats::relative_error_pct(hom, measured));
  EXPECT_LT(err_inhom, err_hom);
  EXPECT_LT(err_inhom, 15.0);
}

TEST(Heterogeneous, Validation) {
  HeterogeneousConfig cfg;
  EXPECT_THROW(run_heterogeneous(cfg), std::invalid_argument);
  cfg.services = mixed_cluster(4, 2.0);
  cfg.lambda = 0.0;
  EXPECT_THROW(run_heterogeneous(cfg), std::invalid_argument);
  cfg.lambda = 0.6;  // slowest mean 2.0 -> rho 1.2: unstable
  EXPECT_THROW(run_heterogeneous(cfg), std::invalid_argument);
  cfg.services[1] = nullptr;
  cfg.lambda = 0.1;
  EXPECT_THROW(run_heterogeneous(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace forktail::fjsim
