#include "core/provisioning.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "queueing/mg1.hpp"
#include "dist/basic.hpp"

namespace forktail::core {
namespace {

TEST(DeriveTaskBudget, MeetsSloWithEquality) {
  const TailSlo slo{99.0, 200.0};
  const TaskBudget b = derive_task_budget(slo, 100.0, 1.0);
  // Predicting with the budget stats must reproduce the SLO latency.
  const double x = homogeneous_quantile(b.as_stats(), 100.0, 99.0);
  EXPECT_NEAR(x, 200.0, 1e-6 * 200.0);
}

TEST(DeriveTaskBudget, ScvHintShapesTheBudget) {
  const TailSlo slo{99.0, 200.0};
  const TaskBudget light = derive_task_budget(slo, 100.0, 0.5);
  const TaskBudget heavy = derive_task_budget(slo, 100.0, 2.0);
  // A heavier assumed tail forces a smaller mean budget.
  EXPECT_GT(light.mean, heavy.mean);
  // Both still satisfy the SLO exactly under their own assumption.
  EXPECT_NEAR(homogeneous_quantile(light.as_stats(), 100.0, 99.0), 200.0, 1e-4);
  EXPECT_NEAR(homogeneous_quantile(heavy.as_stats(), 100.0, 99.0), 200.0, 1e-4);
}

TEST(DeriveTaskBudget, MixtureForm) {
  const TailSlo slo{95.0, 500.0};
  const auto mixture = TaskCountMixture::uniform_int(50, 150);
  const TaskBudget b = derive_task_budget(slo, mixture, 1.0);
  EXPECT_NEAR(mixture_quantile(b.as_stats(), mixture, 95.0), 500.0, 1e-4);
}

TEST(DeriveTaskBudget, TighterSloGivesSmallerBudget) {
  const TaskBudget loose = derive_task_budget({99.0, 400.0}, 64.0);
  const TaskBudget tight = derive_task_budget({99.0, 100.0}, 64.0);
  EXPECT_GT(loose.mean, tight.mean);
  EXPECT_GT(loose.variance, tight.variance);
}

TEST(DeriveTaskBudget, Validation) {
  EXPECT_THROW(derive_task_budget({99.0, 0.0}, 10.0), std::invalid_argument);
  EXPECT_THROW(derive_task_budget({99.0, 100.0}, 10.0, 0.0),
               std::invalid_argument);
}

// Probe backed by the analytic M/M/1 curve: stats grow with lambda, so the
// binary search must find the utilization where the budget binds.
TEST(MaxSustainableLambda, FindsBindingRate) {
  const dist::Exponential service(1.0);
  NodeProbe probe = [&](double lambda) {
    const auto r = queueing::mg1_response(lambda, service);
    return TaskStats{r.mean, r.variance};
  };
  // Budget: mean response <= 5 (i.e. rho <= 0.8 for M/M/1 with mu = 1).
  const TaskBudget budget{5.0, 1e12};
  const auto result = max_sustainable_lambda(probe, budget, 0.01, 0.999, 1e-5);
  ASSERT_TRUE(result.feasible);
  EXPECT_NEAR(result.max_lambda, 0.8, 1e-3);
  EXPECT_LE(result.stats_at_max.mean, 5.0);
}

TEST(MaxSustainableLambda, VarianceConstraintCanBind) {
  const dist::Exponential service(1.0);
  NodeProbe probe = [&](double lambda) {
    const auto r = queueing::mg1_response(lambda, service);
    return TaskStats{r.mean, r.variance};
  };
  // Variance <= 25 binds at mean = 5 for M/M/1 (variance = mean^2), so a
  // looser mean bound must still stop at rho = 0.8.
  const TaskBudget budget{100.0, 25.0};
  const auto result = max_sustainable_lambda(probe, budget, 0.01, 0.999, 1e-5);
  ASSERT_TRUE(result.feasible);
  EXPECT_NEAR(result.max_lambda, 0.8, 1e-3);
}

TEST(MaxSustainableLambda, InfeasibleReported) {
  NodeProbe probe = [](double) { return TaskStats{100.0, 100.0}; };
  const TaskBudget budget{1.0, 1.0};
  const auto result = max_sustainable_lambda(probe, budget, 0.1, 1.0);
  EXPECT_FALSE(result.feasible);
}

TEST(MaxSustainableLambda, WholeRangeFeasible) {
  NodeProbe probe = [](double) { return TaskStats{0.5, 0.5}; };
  const TaskBudget budget{1.0, 1.0};
  const auto result = max_sustainable_lambda(probe, budget, 0.1, 7.0);
  ASSERT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.max_lambda, 7.0);
}

TEST(MaxLambdaForSlo, StopsExactlyAtTheSlo) {
  // M/M/1 probe: predicted p99 for k tasks has a closed form, so the
  // search's stopping point can be verified analytically.
  const dist::Exponential service(1.0);
  NodeProbe probe = [&](double lambda) {
    const auto r = queueing::mg1_response(lambda, service);
    return TaskStats{r.mean, r.variance};
  };
  const double k = 64.0;
  const TailSlo slo{99.0, 100.0};
  const auto mixture = TaskCountMixture::fixed(k);
  const auto result = max_lambda_for_slo(probe, slo, mixture, 0.01, 0.999, 1e-5);
  ASSERT_TRUE(result.feasible);
  // At the found rate the prediction must sit at the SLO (within search
  // tolerance) and not above it.
  const double predicted =
      mixture_quantile(result.stats_at_max, mixture, slo.percentile);
  EXPECT_LE(predicted, slo.latency + 1e-6);
  EXPECT_GT(predicted, 0.97 * slo.latency);
  // Analytic check: x_p = -mean/(1-rho) * ln(1 - 0.99^{1/64}) = 100 at the
  // boundary => mean response = 100 / 6.647 => rho = 1 - 1/mean...
  const double level = -std::log(1.0 - std::pow(0.99, 1.0 / k));
  const double mean_at_slo = slo.latency / level;
  const double rho_expected = 1.0 - 1.0 / mean_at_slo;
  EXPECT_NEAR(result.max_lambda, rho_expected, 5e-3);
}

TEST(MaxLambdaForSlo, RobustToHeavyTailShape) {
  // A probe whose variance blows up faster than the mean: the budget-based
  // search (SCV hint 1) overshoots, the SLO-based search does not.
  NodeProbe probe = [](double lambda) {
    const double mean = 1.0 / (1.0 - lambda);
    return TaskStats{mean, 10.0 * mean * mean};  // CV^2 = 10
  };
  const TailSlo slo{99.0, 60.0};
  const auto mixture = TaskCountMixture::fixed(16.0);
  const TaskBudget budget = derive_task_budget(slo, 16.0, 1.0);
  const auto by_budget =
      max_sustainable_lambda(probe, budget, 0.01, 0.99, 1e-4);
  const auto by_slo = max_lambda_for_slo(probe, slo, mixture, 0.01, 0.99, 1e-4);
  ASSERT_TRUE(by_budget.feasible);
  ASSERT_TRUE(by_slo.feasible);
  // The budget-based operating point violates the SLO under this shape...
  EXPECT_GT(mixture_quantile(by_budget.stats_at_max, mixture, 99.0),
            slo.latency);
  // ... the SLO-based one does not, and is therefore more conservative.
  EXPECT_LE(mixture_quantile(by_slo.stats_at_max, mixture, 99.0),
            slo.latency + 1e-6);
  EXPECT_LT(by_slo.max_lambda, by_budget.max_lambda);
}

TEST(MaxLambdaForSlo, InfeasibleReported) {
  NodeProbe probe = [](double) { return TaskStats{1000.0, 1000.0}; };
  const auto result = max_lambda_for_slo(probe, {99.0, 1.0},
                                         TaskCountMixture::fixed(4.0), 0.1, 1.0);
  EXPECT_FALSE(result.feasible);
}

TEST(MaxLambdaForSlo, Validation) {
  NodeProbe probe = [](double) { return TaskStats{1.0, 1.0}; };
  const auto mixture = TaskCountMixture::fixed(4.0);
  EXPECT_THROW(max_lambda_for_slo(probe, {99.0, 1.0}, mixture, 1.0, 0.5),
               std::invalid_argument);
  EXPECT_THROW(max_lambda_for_slo(probe, {99.0, 0.0}, mixture, 0.1, 1.0),
               std::invalid_argument);
}

TEST(EquivalentLoad, InterpolatesMonotoneCurve) {
  const double loads[] = {80.0, 85.0, 90.0, 95.0};
  const double lat[] = {100.0, 150.0, 250.0, 500.0};
  EXPECT_DOUBLE_EQ(equivalent_load(loads, lat, 200.0), 87.5);
  EXPECT_DOUBLE_EQ(equivalent_load(loads, lat, 100.0), 80.0);
  // Clamped outside the range.
  EXPECT_DOUBLE_EQ(equivalent_load(loads, lat, 50.0), 80.0);
  EXPECT_DOUBLE_EQ(equivalent_load(loads, lat, 900.0), 95.0);
}

TEST(EquivalentLoad, Validation) {
  const double loads[] = {80.0};
  const double lat[] = {100.0};
  EXPECT_THROW(equivalent_load(loads, lat, 100.0), std::invalid_argument);
}

}  // namespace
}  // namespace forktail::core
