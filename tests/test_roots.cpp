#include "stats/roots.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace forktail::stats {
namespace {

TEST(Bisect, FindsLinearRoot) {
  const double r = bisect([](double x) { return x - 3.0; }, 0.0, 10.0);
  EXPECT_NEAR(r, 3.0, 1e-10);
}

TEST(Bisect, ThrowsWhenNotBracketed) {
  EXPECT_THROW(bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               std::invalid_argument);
}

TEST(Bisect, EndpointRoot) {
  EXPECT_DOUBLE_EQ(bisect([](double x) { return x; }, 0.0, 1.0), 0.0);
}

TEST(Brent, FindsTranscendentalRoot) {
  // x = cos(x) has root ~0.7390851332151607.
  const double r = brent([](double x) { return x - std::cos(x); }, 0.0, 1.0);
  EXPECT_NEAR(r, 0.7390851332151607, 1e-10);
}

TEST(Brent, HandlesSteepFunctions) {
  const double r =
      brent([](double x) { return std::exp(20.0 * x) - 5.0; }, -1.0, 1.0);
  EXPECT_NEAR(r, std::log(5.0) / 20.0, 1e-10);
}

TEST(Brent, HandlesFlatTails) {
  // CDF-like function: flat near 0 and 1.
  auto f = [](double x) { return std::tanh(5.0 * (x - 2.0)) + 0.5; };
  const double r = brent(f, 0.0, 4.0);
  EXPECT_NEAR(f(r), 0.0, 1e-9);
}

TEST(Brent, ThrowsWhenNotBracketed) {
  EXPECT_THROW(brent([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               std::invalid_argument);
}

TEST(Brent, ConvergesWithinIterationBudget) {
  RootOptions opts;
  opts.max_iterations = 60;
  const double r = brent([](double x) { return std::pow(x, 9) - 0.5; }, 0.0,
                         1.0, opts);
  EXPECT_NEAR(r, std::pow(0.5, 1.0 / 9.0), 1e-8);
}

TEST(BrentExpandUpper, FindsDistantRoot) {
  // Root at x = 1e6, initial bracket far below it.
  const double r = brent_expand_upper(
      [](double x) { return x - 1e6; }, 0.0, 1.0);
  EXPECT_NEAR(r, 1e6, 1e-3);
}

TEST(BrentExpandUpper, ThrowsWhenNoRootExists) {
  EXPECT_THROW(
      brent_expand_upper([](double) { return -1.0; }, 0.0, 1.0),
      std::runtime_error);
}

TEST(Brent, QuantileInversionShape) {
  // Invert F(x) = 1 - e^{-x} at q = 0.99 -> x = ln(100).
  const double q = 0.99;
  const double r = brent_expand_upper(
      [&](double x) { return (1.0 - std::exp(-x)) - q; }, 0.0, 1.0);
  EXPECT_NEAR(r, std::log(100.0), 1e-9);
}

}  // namespace
}  // namespace forktail::stats
