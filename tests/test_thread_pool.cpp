#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace forktail::util {
namespace {

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ThrowingTaskIsRethrownFromWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle did not rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "task failed");
  }
}

TEST(ThreadPool, FirstExceptionWinsAndOtherTasksStillRun) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.submit([] { throw std::logic_error("boom"); });
  for (int i = 0; i < 50; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_THROW(pool.wait_idle(), std::logic_error);
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, UsableAfterRethrow) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("once"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed: the pool keeps working and the next wait is clean.
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ParallelFor, PropagatesIterationException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 0, 1000,
                            [](std::size_t i) {
                              if (i == 500) throw std::runtime_error("bad i");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, PartialSumsMatchSequential) {
  ThreadPool pool(4);
  std::vector<double> data(10000);
  std::iota(data.begin(), data.end(), 0.0);
  std::vector<double> out(data.size());
  parallel_for(pool, 0, data.size(), [&](std::size_t i) { out[i] = data[i] * 2.0; });
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_DOUBLE_EQ(out[i], 2.0 * static_cast<double>(i));
  }
}

TEST(ParallelFor, ReusableAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    parallel_for(pool, 0, 50, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 250);
}

}  // namespace
}  // namespace forktail::util
