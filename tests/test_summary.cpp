#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include "stats/percentile.hpp"
#include "util/rng.hpp"

namespace forktail::stats {
namespace {

TEST(Summarize, MatchesComponentStatistics) {
  util::Rng rng(1);
  std::vector<double> v(50000);
  for (auto& x : v) x = rng.exponential(3.0);
  const SampleSummary s = summarize(v);
  EXPECT_EQ(s.count, v.size());
  EXPECT_NEAR(s.mean, 3.0, 0.05);
  EXPECT_NEAR(s.variance, 9.0, 0.4);
  EXPECT_DOUBLE_EQ(s.p99, percentile(v, 99.0));
  EXPECT_DOUBLE_EQ(s.p50, percentile(v, 50.0));
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.p999);
  EXPECT_LE(s.p999, s.max);
}

TEST(Summarize, RejectsEmpty) {
  std::vector<double> v;
  EXPECT_THROW(summarize(v), std::invalid_argument);
}

TEST(Summarize, ToStringMentionsKeyFields) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  const std::string text = summarize(v).to_string();
  EXPECT_NE(text.find("p99"), std::string::npos);
  EXPECT_NE(text.find("mean"), std::string::npos);
}

TEST(Bootstrap, CiCoversTrueQuantile) {
  util::Rng rng(2);
  std::vector<double> v(20000);
  for (auto& x : v) x = rng.exponential(1.0);
  util::Rng boot_rng(3);
  const BootstrapCi ci = bootstrap_percentile_ci(v, 99.0, 0.95, 200, boot_rng);
  const double truth = -std::log(0.01);  // 4.605
  EXPECT_LT(ci.lo, ci.point);
  EXPECT_GT(ci.hi, ci.point);
  EXPECT_LT(ci.lo, truth);
  EXPECT_GT(ci.hi, truth);
}

TEST(Bootstrap, TightensWithSampleSize) {
  util::Rng rng(4);
  auto width_for = [&](std::size_t n) {
    std::vector<double> v(n);
    for (auto& x : v) x = rng.exponential(1.0);
    util::Rng boot(5);
    const BootstrapCi ci = bootstrap_percentile_ci(v, 99.0, 0.95, 120, boot);
    return ci.hi - ci.lo;
  };
  EXPECT_LT(width_for(40000), width_for(2000));
}

TEST(Bootstrap, ValidatesInputs) {
  std::vector<double> v = {1.0, 2.0};
  util::Rng rng(6);
  EXPECT_THROW(bootstrap_percentile_ci({}, 99.0, 0.95, 10, rng),
               std::invalid_argument);
  EXPECT_THROW(bootstrap_percentile_ci(v, 99.0, 1.5, 10, rng),
               std::invalid_argument);
}

TEST(RelativeError, MatchesPaperDefinition) {
  // error = 100 (tp - tm)/tm.
  EXPECT_DOUBLE_EQ(relative_error_pct(120.0, 100.0), 20.0);
  EXPECT_DOUBLE_EQ(relative_error_pct(80.0, 100.0), -20.0);
  EXPECT_THROW(relative_error_pct(1.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace forktail::stats
