#include "fjsim/consolidated.hpp"

#include <gtest/gtest.h>

#include "stats/percentile.hpp"
#include "trace/facebook.hpp"

namespace forktail::fjsim {
namespace {

trace::FacebookWorkload small_workload(std::size_t nodes) {
  trace::FacebookWorkload::Params p;
  p.min_mean_ms = 1.0;
  p.max_mean_ms = 50.0;
  p.target_fraction = 0.1;
  p.target_tasks = static_cast<std::uint32_t>(nodes);
  p.target_mean_ms = 5.0;
  p.max_tasks = static_cast<std::uint32_t>(nodes);
  return trace::FacebookWorkload(p);
}

ConsolidatedConfig base(std::size_t nodes) {
  const auto workload = small_workload(nodes);
  ConsolidatedConfig c;
  c.num_nodes = nodes;
  c.replicas = 3;
  c.load = 0.7;
  c.generator = workload.generator();
  c.mean_work_per_job = workload.estimate_mean_work(c.service_floor);
  c.num_jobs = 30000;
  c.warmup_fraction = 0.2;
  c.seed = 51;
  return c;
}

TEST(Consolidated, TargetJobsAreTracked) {
  const auto r = run_consolidated(base(16));
  // ~10% of 30000 measured jobs are targets.
  EXPECT_NEAR(static_cast<double>(r.target_responses.size()), 3000.0, 300.0);
  EXPECT_EQ(r.target_responses.size(), r.target_ks.size());
  EXPECT_GT(r.target_task_stats.count(), 0u);
  EXPECT_GT(r.background_task_stats.count(), 0u);
}

TEST(Consolidated, TargetKsMatchConfiguration) {
  const auto r = run_consolidated(base(16));
  for (int k : r.target_ks) EXPECT_EQ(k, 16);
}

TEST(Consolidated, ResponsesPositiveAndTailOrdered) {
  const auto r = run_consolidated(base(16));
  for (double x : r.target_responses) ASSERT_GT(x, 0.0);
  const double p50 = stats::percentile(r.target_responses, 50.0);
  const double p99 = stats::percentile(r.target_responses, 99.0);
  EXPECT_LT(p50, p99);
}

TEST(Consolidated, HigherLoadSlower) {
  auto lo = base(8);
  lo.load = 0.5;
  auto hi = base(8);
  hi.load = 0.9;
  const auto rl = run_consolidated(lo);
  const auto rh = run_consolidated(hi);
  EXPECT_LT(stats::percentile(rl.target_responses, 99.0),
            stats::percentile(rh.target_responses, 99.0));
}

TEST(Consolidated, TargetTasksSlowerThanServiceTime) {
  // Task response includes queueing: mean response > mean target service
  // (which truncation inflates to ~2x the nominal 5 ms).
  const auto r = run_consolidated(base(16));
  EXPECT_GT(r.target_task_stats.mean(), 5.0);
}

TEST(Consolidated, DeterministicUnderSeed) {
  const auto a = run_consolidated(base(8));
  const auto b = run_consolidated(base(8));
  ASSERT_EQ(a.target_responses.size(), b.target_responses.size());
  EXPECT_DOUBLE_EQ(a.target_responses[5], b.target_responses[5]);
}

TEST(Consolidated, Validation) {
  auto c = base(8);
  c.generator = nullptr;
  EXPECT_THROW(run_consolidated(c), std::invalid_argument);
  c = base(8);
  c.load = 0.0;
  EXPECT_THROW(run_consolidated(c), std::invalid_argument);
  c = base(8);
  c.mean_work_per_job = 0.0;
  EXPECT_THROW(run_consolidated(c), std::invalid_argument);
  c = base(8);
  c.num_nodes = 0;
  EXPECT_THROW(run_consolidated(c), std::invalid_argument);
}

TEST(Consolidated, OversizedJobRejected) {
  auto c = base(8);
  c.generator = [](util::Rng&) {
    return JobSpec{false, 100, 1.0};  // 100 tasks > 8 nodes
  };
  EXPECT_THROW(run_consolidated(c), std::invalid_argument);
}

}  // namespace
}  // namespace forktail::fjsim
