# Golden-output regression runner (invoked via `cmake -P` from ctest).
#
# Runs a fig/table binary at smoke scale with CSV output and compares the
# result byte-for-byte against the CSV pinned in tests/golden/.  The
# goldens were captured from the pre-ScenarioSpec hand-wired benches, so a
# passing test is a proof that the declarative layer reproduces the old
# construction exactly (same seeds, same sample counts, same math).
#
# Variables (all required, passed with -D):
#   BINARY -- the bench executable to run
#   GOLDEN -- the pinned CSV to compare against
#   OUTPUT -- scratch path for the fresh CSV
foreach(var BINARY GOLDEN OUTPUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_golden.cmake: -D${var}=... is required")
  endif()
endforeach()

execute_process(
  COMMAND ${BINARY} --scale smoke --csv true
  OUTPUT_FILE ${OUTPUT}
  RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "${BINARY} exited with status ${run_rc}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUTPUT} ${GOLDEN}
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
    "golden mismatch: ${OUTPUT} differs from ${GOLDEN}.\n"
    "The refactor changed bench output -- diff the two files; if the "
    "change is intended, re-pin the golden deliberately.")
endif()
