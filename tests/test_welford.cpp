#include "stats/welford.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace forktail::stats {
namespace {

TEST(Welford, ExactSmallSample) {
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_EQ(w.count(), 8u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
}

TEST(Welford, SampleVarianceUsesNMinusOne) {
  Welford w;
  for (double x : {1.0, 2.0, 3.0}) w.add(x);
  EXPECT_DOUBLE_EQ(w.sample_variance(), 1.0);
  EXPECT_NEAR(w.variance(), 2.0 / 3.0, 1e-15);
}

TEST(Welford, SampleVarianceRequiresTwo) {
  Welford w;
  w.add(1.0);
  EXPECT_THROW(w.sample_variance(), std::logic_error);
}

TEST(Welford, MergeMatchesSequential) {
  util::Rng rng(9);
  Welford all;
  Welford a;
  Welford b;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.exponential(3.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Welford, MergeWithEmptyIsIdentity) {
  Welford a;
  a.add(5.0);
  a.add(7.0);
  Welford empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 6.0);
  Welford b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 6.0);
}

TEST(Welford, ScvOfExponentialIsOne) {
  util::Rng rng(10);
  Welford w;
  for (int i = 0; i < 300000; ++i) w.add(rng.exponential(4.22));
  EXPECT_NEAR(w.scv(), 1.0, 0.02);
}

TEST(Welford, NumericallyStableForLargeOffsets) {
  Welford w;
  // Values near 1e9 with variance 1: naive sum-of-squares would lose it.
  for (double x : {1e9 + 1.0, 1e9 - 1.0, 1e9 + 1.0, 1e9 - 1.0}) w.add(x);
  EXPECT_NEAR(w.variance(), 1.0, 1e-6);
}

TEST(Welford, NaNPoisonsAllStatisticsConsistently) {
  // A NaN sample always poisoned mean/variance via the arithmetic; before
  // the fix it was silently DROPPED from min/max, leaving the extremes
  // claiming a clean range around NaN moments.  Poisoning must be total.
  Welford w;
  w.add(2.0);
  w.add(std::nan(""));
  w.add(7.0);
  EXPECT_TRUE(std::isnan(w.mean()));
  EXPECT_TRUE(std::isnan(w.min()));
  EXPECT_TRUE(std::isnan(w.max()));
  EXPECT_EQ(w.count(), 3u);
}

TEST(Welford, MergePropagatesNaNExtremes) {
  Welford poisoned;
  poisoned.add(std::nan(""));
  Welford clean;
  clean.add(1.0);
  clean.add(2.0);
  clean.merge(poisoned);
  EXPECT_TRUE(std::isnan(clean.min()));
  EXPECT_TRUE(std::isnan(clean.max()));
  EXPECT_TRUE(std::isnan(clean.mean()));
}

TEST(Welford, VarianceNeverNegativeStddevNeverNaN) {
  // Near-constant data at a large offset is the worst case for m2
  // cancellation; variance() clamps so stddev() cannot go NaN.
  Welford a;
  Welford b;
  const double base = 3.141592653589793e12;
  for (int i = 0; i < 1000; ++i) {
    a.add(base);
    b.add(base + (i % 2 == 0 ? 1e-4 : -1e-4));
  }
  a.merge(b);
  EXPECT_GE(a.variance(), 0.0);
  EXPECT_GE(a.sample_variance(), 0.0);
  EXPECT_FALSE(std::isnan(a.stddev()));

  Welford constant;
  for (int i = 0; i < 100; ++i) constant.add(base);
  EXPECT_DOUBLE_EQ(constant.variance(), 0.0);
  EXPECT_DOUBLE_EQ(constant.stddev(), 0.0);
}

TEST(Welford, EmptyAccumulatorIsWellDefined) {
  const Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.stddev(), 0.0);
  EXPECT_THROW(w.sample_variance(), std::logic_error);
}

TEST(RawMoments, MatchesAnalyticExponential) {
  util::Rng rng(11);
  RawMoments m;
  const double mean = 2.0;
  for (int i = 0; i < 500000; ++i) m.add(rng.exponential(mean));
  EXPECT_NEAR(m.moment(1), mean, 0.02);
  EXPECT_NEAR(m.moment(2), 2 * mean * mean, 0.15);
  EXPECT_NEAR(m.moment(3), 6 * mean * mean * mean, 1.5);
}

TEST(RawMoments, RejectsOutOfRangeOrder) {
  RawMoments m;
  m.add(1.0);
  EXPECT_THROW(m.moment(0), std::out_of_range);
  EXPECT_THROW(m.moment(5), std::out_of_range);
}

}  // namespace
}  // namespace forktail::stats
