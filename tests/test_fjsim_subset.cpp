#include "fjsim/subset.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "dist/basic.hpp"
#include "stats/percentile.hpp"

namespace forktail::fjsim {
namespace {

SubsetConfig base() {
  SubsetConfig c;
  c.num_nodes = 32;
  c.service = std::make_shared<dist::Exponential>(1.0);
  c.load = 0.7;
  c.k_mode = KMode::kFixed;
  c.k_fixed = 8;
  c.num_requests = 30000;
  c.warmup_fraction = 0.25;
  c.seed = 41;
  return c;
}

TEST(Subset, LambdaCalibration) {
  const auto r = run_subset(base());
  // lambda = rho N / (E[k] E[S]) = 0.7 * 32 / 8.
  EXPECT_NEAR(r.lambda, 0.7 * 32.0 / 8.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.mean_k, 8.0);
}

TEST(Subset, PerNodeUtilizationMatchesTarget) {
  // Post-hoc check: tasks per node per unit time * E[S] ~ load.
  auto c = base();
  c.num_requests = 60000;
  const auto r = run_subset(c);
  // Total tasks over N nodes over total time T: rate per node ~ lambda k/N.
  const double expected_rate = r.lambda * 8.0 / 32.0;
  EXPECT_NEAR(expected_rate * c.service->mean(), 0.7, 1e-9);
  // Mean task response must exceed E[S] (queueing) but stay finite/stable.
  EXPECT_GT(r.task_stats.mean(), 1.0);
  EXPECT_LT(r.task_stats.mean(), 1.0 / (1.0 - 0.7) * 1.6);
}

TEST(Subset, ResponseGrowsWithK) {
  auto c = base();
  c.k_fixed = 2;
  const auto small = run_subset(c);
  c.k_fixed = 30;
  const auto large = run_subset(c);
  EXPECT_LT(stats::percentile(small.responses, 99.0),
            stats::percentile(large.responses, 99.0));
}

TEST(Subset, UniformKMeans) {
  auto c = base();
  c.k_mode = KMode::kUniformInt;
  c.k_lo = 4;
  c.k_hi = 12;
  const auto r = run_subset(c);
  EXPECT_DOUBLE_EQ(r.mean_k, 8.0);
  const double tasks_per_request =
      static_cast<double>(r.total_tasks) /
      (static_cast<double>(c.num_requests) / (1.0 - c.warmup_fraction));
  EXPECT_NEAR(tasks_per_request, 8.0, 0.2);
}

TEST(Subset, GroupByKBucketsResponses) {
  auto c = base();
  c.k_mode = KMode::kUniformInt;
  c.k_lo = 2;
  c.k_hi = 4;
  c.group_by_k = true;
  const auto r = run_subset(c);
  ASSERT_EQ(r.responses_by_k.size(), 3u);
  std::size_t total = 0;
  for (const auto& [k, v] : r.responses_by_k) {
    EXPECT_GE(k, 2);
    EXPECT_LE(k, 4);
    total += v.size();
  }
  EXPECT_EQ(total, r.responses.size());
  // Larger k gets stochastically larger medians.
  EXPECT_LT(stats::percentile(r.responses_by_k.at(2), 50.0),
            stats::percentile(r.responses_by_k.at(4), 50.0));
}

TEST(Subset, GroupingDisabledByDefault) {
  const auto r = run_subset(base());
  EXPECT_TRUE(r.responses_by_k.empty());
}

TEST(Subset, DeterministicUnderSeed) {
  const auto a = run_subset(base());
  const auto b = run_subset(base());
  EXPECT_DOUBLE_EQ(a.responses[7], b.responses[7]);
}

TEST(Subset, Validation) {
  auto c = base();
  c.k_fixed = 0;
  EXPECT_THROW(run_subset(c), std::invalid_argument);
  c = base();
  c.k_fixed = 33;
  EXPECT_THROW(run_subset(c), std::invalid_argument);
  c = base();
  c.k_mode = KMode::kUniformInt;
  c.k_lo = 5;
  c.k_hi = 4;
  EXPECT_THROW(run_subset(c), std::invalid_argument);
  c = base();
  c.load = 0.0;
  EXPECT_THROW(run_subset(c), std::invalid_argument);
}

TEST(Subset, ThreeReplicaRoundRobin) {
  auto c = base();
  c.replicas = 3;
  c.policy = Policy::kRoundRobin;
  const auto r = run_subset(c);
  // lambda scales with replicas.
  EXPECT_NEAR(r.lambda, 3.0 * 0.7 * 32.0 / 8.0, 1e-12);
  EXPECT_EQ(r.responses.size(), 30000u);
}

}  // namespace
}  // namespace forktail::fjsim
