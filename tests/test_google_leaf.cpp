#include "dist/google_leaf.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/welford.hpp"
#include "util/rng.hpp"

namespace forktail::dist {
namespace {

TEST(GoogleLeaf, MatchesPublishedStatistics) {
  const Empirical& d = google_leaf();
  // The paper's published summary: mean 4.22 ms, CV 1.12, max 276.6 ms.
  EXPECT_NEAR(d.mean(), kGoogleLeafMeanMs, 1e-9);
  EXPECT_NEAR(d.cv(), kGoogleLeafCv, 0.02);
  EXPECT_NEAR(d.max(), kGoogleLeafMaxMs, 0.5);
}

TEST(GoogleLeaf, P95NearRedundancyThreshold) {
  // Section 4.1 uses a 10 ms redundant-issue delay, "around the 95th
  // percentile of the empirical distribution".
  const Empirical& d = google_leaf();
  EXPECT_NEAR(d.quantile(0.95), 10.0, 1.0);
}

TEST(GoogleLeaf, IsHeavyTailed) {
  const Empirical& d = google_leaf();
  // Tail mass far beyond what an exponential with the same mean would have:
  // P(X > 10 mean) for Exp is e^-10 ~ 4.5e-5; here it must be much larger.
  const double tail = 1.0 - d.cdf(10.0 * d.mean());
  EXPECT_GT(tail, 5e-4);
}

TEST(GoogleLeaf, SamplingIsConsistent) {
  const Empirical& d = google_leaf();
  util::Rng rng(40);
  stats::Welford w;
  for (int i = 0; i < 300000; ++i) {
    const double x = d.sample(rng);
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, kGoogleLeafMaxMs + 1e-9);
    w.add(x);
  }
  EXPECT_NEAR(w.mean(), d.mean(), 0.05);
  // The tail carries most of the variance; 300k draws leave ~10% noise.
  EXPECT_NEAR(w.variance(), d.variance(), 0.15 * d.variance());
}

TEST(GoogleLeaf, SingletonIsStable) {
  const Empirical& a = google_leaf();
  const Empirical& b = google_leaf();
  EXPECT_EQ(&a, &b);
  const DistPtr p = google_leaf_ptr();
  EXPECT_NEAR(p->mean(), a.mean(), 1e-12);
}

TEST(GoogleLeaf, ThirdMomentFinitePositive) {
  const Empirical& d = google_leaf();
  EXPECT_GT(d.moment(3), 0.0);
  EXPECT_LT(d.moment(3), std::pow(kGoogleLeafMaxMs, 3));
}

}  // namespace
}  // namespace forktail::dist
