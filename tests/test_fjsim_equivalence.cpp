// Cross-validation: the Lindley fast path (src/fjsim) and the general
// event-driven simulator (src/sim) model the same systems, so their
// steady-state statistics must agree within Monte-Carlo noise.
#include <gtest/gtest.h>

#include <memory>

#include "dist/basic.hpp"
#include "dist/factory.hpp"
#include "fjsim/homogeneous.hpp"
#include "fjsim/subset.hpp"
#include "sim/network.hpp"
#include "stats/percentile.hpp"

namespace forktail {
namespace {

struct Case {
  const char* dist;
  std::size_t nodes;
  int replicas;
  double load;
  fjsim::Policy fast_policy;
  sim::DispatchPolicy event_policy;
};

class EquivalenceTest : public ::testing::TestWithParam<Case> {};

TEST_P(EquivalenceTest, SteadyStateStatisticsAgree) {
  const Case& tc = GetParam();
  const dist::DistPtr service = dist::make_named(tc.dist);

  fjsim::HomogeneousConfig fast;
  fast.num_nodes = tc.nodes;
  fast.replicas = tc.replicas;
  fast.policy = tc.fast_policy;
  fast.redundant_delay = 10.0;
  fast.service = service;
  fast.load = tc.load;
  fast.num_requests = 60000;
  fast.warmup_fraction = 0.25;
  fast.seed = 11;
  const auto fast_result = fjsim::run_homogeneous(fast);

  sim::FjConfig event;
  event.num_nodes = tc.nodes;
  event.replicas = tc.replicas;
  event.policy = tc.event_policy;
  event.redundant_delay = 10.0;
  event.service = service;
  event.num_requests = 60000;
  event.warmup_fraction = 0.25;
  // Both simulators derive their streams identically from the master seed
  // (arrivals from split(0), node n from split(100+n)), so with equal
  // seeds the two implementations must agree to floating-point exactness:
  // the Lindley fast path is an exact reformulation, not an approximation.
  event.seed = 11;
  event.lambda = sim::lambda_for_nominal_load(event, tc.load);
  const auto event_result = sim::run_fj_simulation(event);

  const double fast_mean = fast_result.task_stats.mean();
  const double event_mean = event_result.pooled_task_stats.mean();
  EXPECT_NEAR(fast_mean, event_mean, 1e-9 * event_mean) << tc.dist;

  const double fast_p99 = stats::percentile(fast_result.responses, 99.0);
  const double event_p99 = stats::percentile(event_result.request_responses, 99.0);
  EXPECT_NEAR(fast_p99, event_p99, 1e-9 * event_p99) << tc.dist;
}

TEST(EquivalenceCrossSeed, IndependentStreamsAgreeStatistically) {
  const dist::DistPtr service = dist::make_named("Exponential");
  fjsim::HomogeneousConfig fast;
  fast.num_nodes = 8;
  fast.service = service;
  fast.load = 0.8;
  fast.num_requests = 80000;
  fast.warmup_fraction = 0.25;
  fast.seed = 101;
  const auto fast_result = fjsim::run_homogeneous(fast);

  sim::FjConfig event;
  event.num_nodes = 8;
  event.service = service;
  event.num_requests = 80000;
  event.warmup_fraction = 0.25;
  event.seed = 202;
  event.lambda = sim::lambda_for_nominal_load(event, 0.8);
  const auto event_result = sim::run_fj_simulation(event);

  // The heavy-traffic mean estimator is long-range dependent, so allow a
  // wide statistical band here (the same-seed test above is the exact one).
  EXPECT_NEAR(fast_result.task_stats.mean(),
              event_result.pooled_task_stats.mean(),
              0.12 * event_result.pooled_task_stats.mean());
  EXPECT_NEAR(stats::percentile(fast_result.responses, 99.0),
              stats::percentile(event_result.request_responses, 99.0),
              0.12 * stats::percentile(event_result.request_responses, 99.0));
}

INSTANTIATE_TEST_SUITE_P(
    Policies, EquivalenceTest,
    ::testing::Values(
        Case{"Exponential", 8, 1, 0.8, fjsim::Policy::kSingle,
             sim::DispatchPolicy::kSingle},
        Case{"Empirical", 8, 1, 0.8, fjsim::Policy::kSingle,
             sim::DispatchPolicy::kSingle},
        Case{"Exponential", 4, 3, 0.8, fjsim::Policy::kRoundRobin,
             sim::DispatchPolicy::kRoundRobin},
        Case{"Empirical", 4, 3, 0.75, fjsim::Policy::kRedundant,
             sim::DispatchPolicy::kRedundant}));

TEST(EquivalenceFixedK, SubsetSimMatchesEventSim) {
  const dist::DistPtr service = dist::make_named("Exponential");

  fjsim::SubsetConfig fast;
  fast.num_nodes = 16;
  fast.service = service;
  fast.load = 0.7;
  fast.k_mode = fjsim::KMode::kFixed;
  fast.k_fixed = 4;
  fast.num_requests = 60000;
  fast.seed = 21;
  const auto fast_result = fjsim::run_subset(fast);

  sim::FjConfig event;
  event.num_nodes = 16;
  event.service = service;
  event.k_mode = sim::TaskCountMode::kFixed;
  event.k_fixed = 4;
  event.num_requests = 60000;
  event.seed = 22;
  event.lambda = sim::lambda_for_nominal_load(event, 0.7);
  const auto event_result = sim::run_fj_simulation(event);

  EXPECT_NEAR(fast_result.lambda, event.lambda, 1e-9);
  EXPECT_NEAR(fast_result.task_stats.mean(),
              event_result.pooled_task_stats.mean(),
              0.06 * event_result.pooled_task_stats.mean());
  EXPECT_NEAR(stats::percentile(fast_result.responses, 99.0),
              stats::percentile(event_result.request_responses, 99.0),
              0.10 * stats::percentile(event_result.request_responses, 99.0));
}

}  // namespace
}  // namespace forktail
