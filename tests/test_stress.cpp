// Stress and failure-injection tests: randomized schedules, extreme loads,
// and degenerate inputs that production use will eventually hit.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "core/forktail.hpp"
#include "dist/basic.hpp"
#include "dist/factory.hpp"
#include "fjsim/homogeneous.hpp"
#include "sim/engine.hpp"
#include "sim/heap_engine.hpp"
#include "stats/percentile.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace forktail {
namespace {

TEST(EngineStress, RandomizedScheduleProcessesInOrder) {
  sim::Engine engine;
  util::Rng rng(123);
  std::vector<double> fired;
  fired.reserve(20000);
  // Seed events at random times; each handler occasionally schedules more
  // events in its own future.
  std::function<void()> handler = [&] {
    fired.push_back(engine.now());
    if (fired.size() < 20000 && rng.bernoulli(0.4)) {
      engine.schedule_in(rng.exponential(1.0), handler);
      engine.schedule_in(rng.exponential(2.0), handler);
    }
  };
  for (int i = 0; i < 2000; ++i) {
    engine.schedule(rng.uniform(0.0, 100.0), handler);
  }
  engine.run();
  ASSERT_GE(fired.size(), 2000u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    ASSERT_GE(fired[i], fired[i - 1]) << "out-of-order at " << i;
  }
  EXPECT_EQ(engine.events_processed(), fired.size());
}

TEST(EngineStress, CancelHeavyHedgingRaceCompactsAndStaysOrdered) {
  // ~50% of scheduled events are hedging-style cancellables that get
  // retracted before firing, interleaved with the run (not batched up
  // front): every fired "primary" cancels its pending "hedge" twin and
  // schedules the next pair.  Tombstones must be compacted (bounded
  // memory), firing stays time-ordered, and the calendar engine's final
  // state matches the frozen binary-heap reference bit for bit.
  const auto drive = [](auto& engine) {
    util::Rng rng(77);
    std::vector<double> fired;
    fired.reserve(60000);
    using Id = typename std::decay_t<decltype(engine)>::EventId;
    std::vector<Id> hedges;
    std::function<void()> primary = [&] {
      fired.push_back(engine.now());
      // Retract the most recent still-pending hedge (it may already have
      // been consumed -- cancel is harmlessly false then).
      if (!hedges.empty()) {
        engine.cancel(hedges.back());
        hedges.pop_back();
      }
      if (fired.size() < 50000) {
        const double dt = rng.exponential(1.0);
        engine.schedule_in(dt, primary);
        // The hedge twin launches strictly later than the primary, so the
        // primary always wins the race and the hedge is pure tombstone
        // load: a steady ~50% cancel rate.
        hedges.push_back(
            engine.schedule_cancellable(engine.now() + dt + 1000.0, [] {}));
      }
    };
    for (int i = 0; i < 64; ++i) {
      engine.schedule(rng.uniform(0.0, 10.0), primary);
    }
    engine.run();
    return std::pair<std::vector<double>, std::uint64_t>(
        std::move(fired), engine.events_cancelled());
  };

  sim::Engine calendar;
  const auto [fired, cancelled] = drive(calendar);
  ASSERT_GE(fired.size(), 50000u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    ASSERT_GE(fired[i], fired[i - 1]) << "out-of-order at " << i;
  }
  // Roughly half of all scheduled events were cancelled hedges...
  EXPECT_GT(cancelled, fired.size() / 3);
  // ...and the tombstone sweep actually ran, keeping the calendar bounded.
  EXPECT_GE(calendar.compactions(), 1u);
  // Every primary firing was processed; at most a stray end-of-run hedge
  // (never cancelled because no primary fired after it) adds no-op events.
  EXPECT_GE(calendar.events_processed(), fired.size());

  // The frozen heap engine replays the identical script: bit-identical
  // firing schedule and matching cancel/process accounting.
  sim::HeapEngine heap;
  const auto [fired_heap, cancelled_heap] = drive(heap);
  ASSERT_EQ(fired.size(), fired_heap.size());
  for (std::size_t i = 0; i < fired.size(); ++i) {
    ASSERT_EQ(fired[i], fired_heap[i]) << "diverged at " << i;
  }
  EXPECT_EQ(cancelled, cancelled_heap);
  EXPECT_EQ(calendar.events_processed(), heap.events_processed());
  EXPECT_EQ(calendar.now(), heap.now());
}

TEST(SimStress, NearSaturationStaysFiniteAndOrdered) {
  // rho = 0.99: the run is legal (stable), just extremely slow to mix;
  // every computed response must be finite and positive.
  fjsim::HomogeneousConfig cfg;
  cfg.num_nodes = 4;
  cfg.service = dist::make_named("Empirical");
  cfg.load = 0.99;
  cfg.num_requests = 20000;
  cfg.warmup_fraction = 0.2;
  cfg.seed = 3;
  const auto r = fjsim::run_homogeneous(cfg);
  for (double x : r.responses) {
    ASSERT_TRUE(std::isfinite(x));
    ASSERT_GT(x, 0.0);
  }
  // Sanity: at rho = 0.99 the mean response dwarfs the service time.
  EXPECT_GT(r.task_stats.mean(), 10.0 * cfg.service->mean());
}

TEST(PredictorStress, RandomMomentFuzzRoundTrips) {
  // Fuzz the (mean, variance, k, p) space: the quantile must always invert
  // the CDF, stay positive and finite.
  util::Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    const double mean = std::exp(rng.uniform(-6.0, 8.0));
    const double cv = std::exp(rng.uniform(-2.0, 1.5));
    const double variance = (cv * mean) * (cv * mean);
    const double k = std::exp(rng.uniform(0.0, 8.0));
    const double p = rng.uniform(1.0, 99.99);
    const double x = core::homogeneous_quantile({mean, variance}, k, p);
    ASSERT_TRUE(std::isfinite(x)) << mean << " " << variance << " " << k;
    ASSERT_GT(x, 0.0);
    ASSERT_NEAR(core::homogeneous_cdf({mean, variance}, k, x), p / 100.0, 1e-6);
  }
}

TEST(PredictorStress, InhomogeneousFuzzWithWildNodeMixtures) {
  util::Rng rng(78);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 40));
    std::vector<core::TaskStats> nodes;
    for (int i = 0; i < n; ++i) {
      const double mean = std::exp(rng.uniform(-3.0, 6.0));
      const double cv = std::exp(rng.uniform(-1.5, 1.2));
      nodes.push_back({mean, (cv * mean) * (cv * mean)});
    }
    const double x = core::inhomogeneous_quantile(nodes, 99.0);
    ASSERT_TRUE(std::isfinite(x));
    ASSERT_NEAR(core::inhomogeneous_cdf(nodes, x), 0.99, 1e-6);
    // Dominance: at least the largest single-node p99.
    double max_single = 0.0;
    for (const auto& s : nodes) {
      max_single =
          std::max(max_single, core::homogeneous_quantile(s, 1.0, 99.0));
    }
    ASSERT_GE(x, max_single - 1e-9 * max_single);
  }
}

TEST(OnlineStress, InterleavedRecordingAcrossManyNodes) {
  // Hammer the online predictor with interleaved, bursty per-node streams
  // and assert it never produces a non-finite prediction once warmed up.
  core::OnlineTailPredictor online(16, 50.0, 20);
  util::Rng rng(79);
  std::vector<double> clocks(16, 0.0);
  for (int step = 0; step < 50000; ++step) {
    const auto node = static_cast<std::size_t>(rng.uniform_int(16ULL));
    clocks[node] += rng.exponential(0.3);
    online.record(node, clocks[node], rng.exponential(5.0) + 0.1);
    if (step > 2000 && step % 1000 == 0) {
      const auto p = online.predict_homogeneous(99.0);
      ASSERT_TRUE(p.has_value());
      ASSERT_TRUE(std::isfinite(*p));
    }
  }
}

TEST(MixtureStress, ManyGroupQuantileStable) {
  // 256 binned groups spanning nearly the whole cluster.
  const auto mixture = core::TaskCountMixture::uniform_int(1, 100000);
  const double x = core::mixture_quantile({5.0, 50.0}, mixture, 99.9);
  ASSERT_TRUE(std::isfinite(x));
  EXPECT_GT(x, core::homogeneous_quantile({5.0, 50.0}, 1.0, 99.9));
  EXPECT_LT(x, core::homogeneous_quantile({5.0, 50.0}, 100000.0, 99.9));
}

TEST(StressThreadPool, DestructionWhileTasksThrowNeverHangs) {
  // A worker that throws during pool teardown must neither terminate the
  // process nor leave the destructor joining forever.  50 rounds of
  // destroy-with-throwing-backlog; the test passes by finishing.
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> ran{0};
    {
      util::ThreadPool pool(4);
      for (int i = 0; i < 64; ++i) {
        pool.submit([&ran, i] {
          ++ran;
          if (i % 3 == 0) throw std::runtime_error("task failure");
        });
      }
      // No wait_idle(): the destructor itself must drain the queue (some
      // tasks still pending, several already thrown) and join cleanly.
    }
    EXPECT_EQ(ran.load(), 64) << "round " << round;
  }
}

TEST(StressThreadPool, WaitIdleRethrowsFirstErrorAndPoolStaysUsable) {
  util::ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait_idle(), std::runtime_error);
    // The pool must remain fully usable after a rethrow.
    std::atomic<int> ok{0};
    for (int i = 0; i < 8; ++i) pool.submit([&ok] { ++ok; });
    pool.wait_idle();
    EXPECT_EQ(ok.load(), 8);
  }
}

TEST(StressThreadPool, ConcurrentSubmittersAndThrowersDrainExactly) {
  // Several threads hammer submit() while half the tasks throw; every task
  // must run exactly once and wait_idle must always return.
  util::ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::thread> submitters;
  constexpr int kPerThread = 500;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&pool, &ran] {
      for (int i = 0; i < kPerThread; ++i) {
        pool.submit([&ran, i] {
          ++ran;
          if (i % 2 == 0) throw std::runtime_error("x");
        });
      }
    });
  }
  for (auto& s : submitters) s.join();
  try {
    pool.wait_idle();
  } catch (const std::runtime_error&) {
    // expected: at least one captured failure
  }
  EXPECT_EQ(ran.load(), 4 * kPerThread);
}

}  // namespace
}  // namespace forktail
