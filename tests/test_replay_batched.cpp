// Batched replay determinism: for every fork-join runner, the batched
// engine (any block size) must reproduce the scalar reference path
// (batch = 1) bit for bit -- responses, moment accumulators, everything.
// Block sizes are chosen so tiles cross the warm-up boundary mid-tile, the
// last tile is partial, and odd node counts exercise the paired kernel's
// remainder lane (fjsim::LindleyState::replay_tile_pair).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "dist/basic.hpp"
#include "dist/factory.hpp"
#include "dist/heavy.hpp"
#include "fjsim/heterogeneous.hpp"
#include "fjsim/homogeneous.hpp"
#include "fjsim/pipeline.hpp"
#include "fjsim/subset.hpp"
#include "stats/welford.hpp"

namespace forktail::fjsim {
namespace {

// The scalar path is the reference; "equal" means bitwise equal, not just
// within tolerance -- the engines must replay the identical float stream.
void expect_bitwise_equal(const std::vector<double>& ref,
                          const std::vector<double>& got, const char* what) {
  ASSERT_EQ(ref.size(), got.size()) << what;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(ref[i]),
              std::bit_cast<std::uint64_t>(got[i]))
        << what << " diverges at index " << i;
  }
}

void expect_welford_equal(const stats::Welford& ref, const stats::Welford& got,
                          const char* what) {
  EXPECT_EQ(ref.count(), got.count()) << what;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(ref.mean()),
            std::bit_cast<std::uint64_t>(got.mean()))
      << what << " mean";
  EXPECT_EQ(std::bit_cast<std::uint64_t>(ref.variance()),
            std::bit_cast<std::uint64_t>(got.variance()))
      << what << " variance";
  EXPECT_EQ(std::bit_cast<std::uint64_t>(ref.min()),
            std::bit_cast<std::uint64_t>(got.min()))
      << what << " min";
  EXPECT_EQ(std::bit_cast<std::uint64_t>(ref.max()),
            std::bit_cast<std::uint64_t>(got.max()))
      << what << " max";
}

// Batch sizes per case: default (1024), a prime that misaligns every tile
// against the warm-up boundary, and one tile spanning the whole run.
constexpr std::size_t kBatches[] = {0, 193, 1u << 20};

HomogeneousResult run_homog(std::size_t batch, std::size_t nodes,
                            Policy policy, int replicas, dist::DistPtr dist) {
  HomogeneousConfig cfg;
  cfg.num_nodes = nodes;
  cfg.replicas = replicas;
  cfg.policy = policy;
  cfg.redundant_delay = 2.0;
  cfg.service = std::move(dist);
  cfg.load = 0.9;
  cfg.num_requests = 4000;
  cfg.seed = 123;
  cfg.batch = batch;
  return run_homogeneous(cfg);
}

void check_homogeneous(std::size_t nodes, Policy policy, int replicas,
                       const dist::DistPtr& dist) {
  const auto ref = run_homog(1, nodes, policy, replicas, dist);
  for (const std::size_t batch : kBatches) {
    const auto got = run_homog(batch, nodes, policy, replicas, dist);
    expect_bitwise_equal(ref.responses, got.responses, "responses");
    expect_welford_equal(ref.task_stats, got.task_stats, "task_stats");
    EXPECT_EQ(ref.redundant_issues, got.redundant_issues);
  }
}

TEST(ReplayBatched, HomogeneousExponentialPairedNodes) {
  check_homogeneous(8, Policy::kSingle, 1, dist::make_named("Exponential"));
}

TEST(ReplayBatched, HomogeneousOddNodeCountUsesRemainderLane) {
  check_homogeneous(7, Policy::kSingle, 1, dist::make_named("Exponential"));
}

TEST(ReplayBatched, HomogeneousSingleNode) {
  check_homogeneous(1, Policy::kSingle, 1, dist::make_named("Exponential"));
}

TEST(ReplayBatched, HomogeneousWeibull) {
  check_homogeneous(6, Policy::kSingle, 1, dist::make_named("Weibull"));
}

TEST(ReplayBatched, HomogeneousLogNormalBoxMullerCache) {
  check_homogeneous(5, Policy::kSingle, 1,
                    std::make_shared<dist::LogNormal>(
                        dist::LogNormal::from_mean_cv(4.22, 1.2)));
}

TEST(ReplayBatched, HomogeneousRoundRobinReplicas) {
  check_homogeneous(5, Policy::kRoundRobin, 3, dist::make_named("Exponential"));
}

TEST(ReplayBatched, HomogeneousRedundantEventPath) {
  // kRedundant replays event-driven; batch only sizes the node's internal
  // demand buffer, and the consumed stream must not change.
  check_homogeneous(4, Policy::kRedundant, 2, dist::make_named("Exponential"));
}

TEST(ReplayBatched, Heterogeneous) {
  HeterogeneousConfig cfg;
  cfg.services = {dist::make_named("Exponential"), dist::make_named("Weibull"),
                  std::make_shared<dist::LogNormal>(
                      dist::LogNormal::from_mean_cv(4.22, 1.2)), dist::make_named("Erlang-2"),
                  dist::make_named("Exponential")};
  cfg.lambda = lambda_for_max_load(cfg.services, 0.8);
  cfg.num_requests = 4000;
  cfg.seed = 321;
  cfg.batch = 1;
  const auto ref = run_heterogeneous(cfg);
  for (const std::size_t batch : kBatches) {
    cfg.batch = batch;
    const auto got = run_heterogeneous(cfg);
    expect_bitwise_equal(ref.responses, got.responses, "responses");
    ASSERT_EQ(ref.node_stats.size(), got.node_stats.size());
    for (std::size_t n = 0; n < ref.node_stats.size(); ++n) {
      expect_welford_equal(ref.node_stats[n], got.node_stats[n], "node_stats");
    }
  }
}

TEST(ReplayBatched, Subset) {
  SubsetConfig cfg;
  cfg.num_nodes = 50;
  cfg.service = dist::make_named("Exponential");
  cfg.load = 0.8;
  cfg.k_mode = KMode::kFixed;
  cfg.k_fixed = 8;
  cfg.num_requests = 4000;
  cfg.seed = 77;
  cfg.batch = 1;
  const auto ref = run_subset(cfg);
  for (const std::size_t batch : kBatches) {
    cfg.batch = batch;
    const auto got = run_subset(cfg);
    expect_bitwise_equal(ref.responses, got.responses, "responses");
    expect_welford_equal(ref.task_stats, got.task_stats, "task_stats");
  }
}

TEST(ReplayBatched, Pipeline) {
  PipelineConfig cfg;
  cfg.stages = {{4, dist::make_named("Exponential")},
                {3, dist::make_named("Weibull")},
                {6, dist::make_named("Erlang-2")}};
  cfg.load = 0.8;
  cfg.num_requests = 4000;
  cfg.seed = 55;
  cfg.batch = 1;
  const auto ref = run_pipeline(cfg);
  for (const std::size_t batch : kBatches) {
    cfg.batch = batch;
    const auto got = run_pipeline(cfg);
    expect_bitwise_equal(ref.responses, got.responses, "responses");
    ASSERT_EQ(ref.stage_task_stats.size(), got.stage_task_stats.size());
    for (std::size_t s = 0; s < ref.stage_task_stats.size(); ++s) {
      expect_welford_equal(ref.stage_task_stats[s], got.stage_task_stats[s],
                           "stage_task_stats");
      expect_welford_equal(ref.stage_latency_stats[s],
                           got.stage_latency_stats[s], "stage_latency_stats");
    }
  }
}

}  // namespace
}  // namespace forktail::fjsim
