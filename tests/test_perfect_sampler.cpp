// Perfect sampler (fjsim/perfect_sampler.hpp): bit-reproducibility,
// stationarity against long-warm-up replay, and the refusal contract.
//
// The sampler's claim is strong -- each draw comes from the exact
// stationary response law (up to the 2^-40 coalescence certificate) -- so
// the tests attack it from three sides:
//   * known-answer: pinned 64-bit patterns (any drift in the draw order,
//     the Rng::split stream layout, or the coalescence rule changes bits);
//   * prefix identity: draw d depends only on (seed, d), never on the
//     number of draws requested;
//   * distribution: a two-sample KS test against the replay engine run
//     with a 10x warm-up (the engine pair must agree on the stationary
//     law; replay autocorrelation inflates the KS statistic, so the bar
//     is generous but still catches wrong-law bugs).
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dist/factory.hpp"
#include "fjsim/config.hpp"
#include "fjsim/homogeneous.hpp"
#include "fjsim/perfect_sampler.hpp"

namespace forktail {
namespace {

fjsim::PerfectSamplerConfig homogeneous_config() {
  fjsim::PerfectSamplerConfig cfg;
  cfg.num_nodes = 4;
  cfg.service = dist::make_named("Exponential");
  cfg.load = 0.7;
  cfg.draws = 4;
  cfg.seed = 42;
  return cfg;
}

TEST(PerfectSampler, KnownAnswerHomogeneous) {
  const fjsim::PerfectSampleResult res =
      fjsim::run_perfect(homogeneous_config());
  const std::uint64_t expected[] = {
      0x40527b71b5b02853ULL,  // 73.928815290478539
      0x40312afaf06bb70fULL,  // 17.167891527459741
      0x4044e3e2cc4e219cULL,  // 41.780358827734034
      0x40394deb34f03e2eULL,  // 25.304370220807122
  };
  ASSERT_EQ(res.responses.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(res.responses[i]), expected[i])
        << "draw " << i << " drifted: " << res.responses[i];
  }
}

TEST(PerfectSampler, KnownAnswerSubset) {
  fjsim::PerfectSamplerConfig cfg;
  cfg.num_nodes = 16;
  cfg.service = dist::make_named("Erlang-2");
  cfg.load = 0.6;
  cfg.subset = true;
  cfg.k_mode = fjsim::KMode::kFixed;
  cfg.k_fixed = 4;
  cfg.draws = 4;
  cfg.seed = 7;
  const fjsim::PerfectSampleResult res = fjsim::run_perfect(cfg);
  const std::uint64_t expected[] = {
      0x403324c8bf2cefb1ULL,  // 19.143688152762198
      0x402c59b0c57a4485ULL,  // 14.175176783728839
      0x40295252f45dba3aULL,  // 12.660789143029536
      0x4035e170533c5224ULL,  // 21.880620195605061
  };
  ASSERT_EQ(res.responses.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(res.responses[i]), expected[i])
        << "draw " << i << " drifted: " << res.responses[i];
  }
}

// Draw d is a pure function of (seed, d): asking for more draws must not
// perturb earlier ones (each draw owns an Rng::split stream).
TEST(PerfectSampler, DrawsArePrefixStable) {
  fjsim::PerfectSamplerConfig small = homogeneous_config();
  fjsim::PerfectSamplerConfig large = homogeneous_config();
  large.draws = 8;
  const auto a = fjsim::run_perfect(small).responses;
  const auto b = fjsim::run_perfect(large).responses;
  ASSERT_EQ(b.size(), 8u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << "draw " << i;
  }
}

double two_sample_ks(std::vector<double> a, std::vector<double> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double d = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] <= b[j]) {
      ++i;
    } else {
      ++j;
    }
    const double fa = static_cast<double>(i) / static_cast<double>(a.size());
    const double fb = static_cast<double>(j) / static_cast<double>(b.size());
    d = std::max(d, std::abs(fa - fb));
  }
  return d;
}

// Stationarity: perfect draws vs the replay engine given a 10x-longer
// warm-up than the benches use.  The replay sample is autocorrelated, so
// its empirical CDF wanders more than an iid sample of the same size --
// the threshold is 3x the iid 0.1% KS bar, loose enough for that but far
// below the shift a wrong stationary law produces (seeds are fixed, so
// this is a deterministic regression check, not a flaky statistical one).
TEST(PerfectSampler, MatchesLongWarmupReplay) {
  const std::size_t kDraws = 6000;

  fjsim::PerfectSamplerConfig perfect = homogeneous_config();
  perfect.draws = kDraws;
  perfect.seed = 3;
  const auto exact = fjsim::run_perfect(perfect).responses;

  fjsim::HomogeneousConfig replay;
  replay.num_nodes = 4;
  replay.service = dist::make_named("Exponential");
  replay.load = 0.7;
  replay.num_requests = kDraws;
  replay.warmup_fraction = 0.75;  // 3x the measured span; benches use 0.25
  replay.seed = 3;
  const auto simulated = fjsim::run_homogeneous(replay).responses;

  const double d = two_sample_ks(exact, simulated);
  const double m = static_cast<double>(kDraws);
  const double iid_bar = 1.95 * std::sqrt(2.0 / m);  // alpha = 0.001
  EXPECT_LT(d, 3.0 * iid_bar) << "KS distance " << d;
}

// Heavy-tailed services have no MGF, so no Lundberg certificate exists and
// the sampler must refuse rather than silently truncate the walk.
TEST(PerfectSampler, RefusesHeavyTailedService) {
  fjsim::PerfectSamplerConfig cfg = homogeneous_config();
  cfg.service = dist::make_named("Weibull");
  try {
    fjsim::run_perfect(cfg);
    FAIL() << "expected ConfigError";
  } catch (const fjsim::ConfigError& e) {
    EXPECT_EQ(e.field(), "service");
  }
}

TEST(PerfectSampler, RefusalNamesTheDeclaredTailClass) {
  // The gate is the capability query, not a family list: a regularly
  // varying service must be refused with its declared tail class in the
  // message so the user knows WHY no Lundberg certificate exists.
  fjsim::PerfectSamplerConfig cfg = homogeneous_config();
  cfg.service = dist::make_named("Pareto", 4.22, 2.6);
  try {
    fjsim::run_perfect(cfg);
    FAIL() << "expected ConfigError";
  } catch (const fjsim::ConfigError& e) {
    EXPECT_EQ(e.field(), "service");
    const std::string what = e.what();
    EXPECT_NE(what.find("regularly-varying"), std::string::npos) << what;
    EXPECT_NE(what.find("MGF"), std::string::npos) << what;
  }
}

TEST(PerfectSampler, RejectsBadKnobs) {
  fjsim::PerfectSamplerConfig cfg = homogeneous_config();
  cfg.load = 1.0;
  EXPECT_THROW(fjsim::run_perfect(cfg), fjsim::ConfigError);
  cfg = homogeneous_config();
  cfg.epsilon = 0.0;
  EXPECT_THROW(fjsim::run_perfect(cfg), fjsim::ConfigError);
  cfg = homogeneous_config();
  cfg.subset = true;
  cfg.k_fixed = 5;  // > num_nodes
  EXPECT_THROW(fjsim::run_perfect(cfg), fjsim::ConfigError);
}

}  // namespace
}  // namespace forktail
