#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "trace/facebook.hpp"
#include "trace/io.hpp"
#include "fjsim/consolidated.hpp"
#include "util/rng.hpp"

namespace forktail::trace {
namespace {

TEST(FacebookBins, ProbabilitiesSumToOne) {
  double total = 0.0;
  for (const auto& bin : facebook_job_size_bins()) {
    EXPECT_LE(bin.lo, bin.hi);
    EXPECT_GT(bin.probability, 0.0);
    total += bin.probability;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(FacebookBins, MostJobsAreSmall) {
  // The defining property of the Facebook histogram: > 50% of jobs have
  // <= 2 tasks while the tail reaches thousands.
  const auto& bins = facebook_job_size_bins();
  EXPECT_GE(bins[0].probability + bins[1].probability, 0.5);
  EXPECT_GE(bins.back().hi, 1500u);
}

FacebookWorkload::Params default_params() {
  FacebookWorkload::Params p;
  p.target_tasks = 100;
  p.target_mean_ms = 50.0;
  return p;
}

TEST(FacebookWorkload, TargetFractionRespected) {
  FacebookWorkload w(default_params());
  util::Rng rng(80);
  int targets = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (w.sample_job(rng).target) ++targets;
  }
  EXPECT_NEAR(static_cast<double>(targets) / n, 0.1, 0.01);
}

TEST(FacebookWorkload, TargetJobsAreUniform) {
  FacebookWorkload w(default_params());
  util::Rng rng(81);
  for (int i = 0; i < 1000; ++i) {
    const auto job = w.sample_job(rng);
    if (job.target) {
      EXPECT_EQ(job.tasks, 100u);
      EXPECT_DOUBLE_EQ(job.mean_task_time, 50.0);
    }
  }
}

TEST(FacebookWorkload, BackgroundSizesMatchBins) {
  FacebookWorkload w(default_params());
  util::Rng rng(82);
  int small = 0;
  const int n = 50000;
  double mean_acc = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto k = w.sample_background_tasks(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 3000u);
    if (k <= 2) ++small;
    mean_acc += k;
  }
  EXPECT_NEAR(static_cast<double>(small) / n, 0.54, 0.02);
  EXPECT_NEAR(mean_acc / n, w.mean_background_tasks(),
              0.05 * w.mean_background_tasks());
}

TEST(FacebookWorkload, MaxTasksClampApplied) {
  auto p = default_params();
  p.max_tasks = 64;
  FacebookWorkload w(p);
  util::Rng rng(83);
  for (int i = 0; i < 20000; ++i) {
    ASSERT_LE(w.sample_background_tasks(rng), 64u);
  }
}

TEST(FacebookWorkload, MeanTimesLogUniform) {
  FacebookWorkload w(default_params());
  util::Rng rng(84);
  for (int i = 0; i < 10000; ++i) {
    const double m = w.sample_background_mean(rng);
    ASSERT_GE(m, 1.0);
    ASSERT_LE(m, 1000.0);
  }
}

TEST(FacebookWorkload, MeanWorkEstimateIsDeterministicAndSane) {
  FacebookWorkload w(default_params());
  const double a = w.estimate_mean_work(0.05, 50000, 1);
  const double b = w.estimate_mean_work(0.05, 50000, 1);
  EXPECT_DOUBLE_EQ(a, b);
  // E[k] * E[S_trunc] rough magnitude: E[k] ~ 120+, E[S] ~ 2 * ~150 ms.
  EXPECT_GT(a, 1000.0);
  EXPECT_LT(a, 2e6);
}

TEST(FacebookWorkload, ParamValidation) {
  auto p = default_params();
  p.min_mean_ms = 0.0;
  EXPECT_THROW(FacebookWorkload{p}, std::invalid_argument);
  p = default_params();
  p.target_fraction = 1.5;
  EXPECT_THROW(FacebookWorkload{p}, std::invalid_argument);
  p = default_params();
  p.target_tasks = 0;
  EXPECT_THROW(FacebookWorkload{p}, std::invalid_argument);
}

TEST(TraceSynthesis, RecordsHaveExpectedShape) {
  FacebookWorkload w(default_params());
  const auto records = synthesize_trace(w, 500, 10.0, 0.05, 7);
  ASSERT_EQ(records.size(), 500u);
  double prev = 0.0;
  for (const auto& rec : records) {
    EXPECT_GT(rec.arrival_time, prev);
    prev = rec.arrival_time;
    EXPECT_EQ(rec.task_times.size(), rec.num_tasks);
    for (double t : rec.task_times) EXPECT_GE(t, 0.05);
  }
}

TEST(TraceIo, RoundTripPreservesRecords) {
  FacebookWorkload w(default_params());
  const auto records = synthesize_trace(w, 100, 5.0, 0.05, 8);
  std::stringstream ss;
  write_trace(ss, records);
  const auto loaded = read_trace(ss);
  ASSERT_EQ(loaded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_NEAR(loaded[i].arrival_time, records[i].arrival_time, 1e-9);
    EXPECT_EQ(loaded[i].num_tasks, records[i].num_tasks);
    EXPECT_NEAR(loaded[i].mean_task_time, records[i].mean_task_time, 1e-9);
    ASSERT_EQ(loaded[i].task_times.size(), records[i].task_times.size());
    for (std::size_t t = 0; t < records[i].task_times.size(); ++t) {
      EXPECT_NEAR(loaded[i].task_times[t], records[i].task_times[t], 1e-6);
    }
  }
}

TEST(TraceIo, FileRoundTrip) {
  FacebookWorkload w(default_params());
  const auto records = synthesize_trace(w, 20, 5.0, 0.05, 9);
  const std::string path = "/tmp/forktail_trace_test.csv";
  write_trace_file(path, records);
  const auto loaded = read_trace_file(path);
  EXPECT_EQ(loaded.size(), records.size());
  std::remove(path.c_str());
}

TEST(TraceIo, MalformedLineRejected) {
  std::stringstream ss("not,a,valid\n");
  EXPECT_THROW(read_trace(ss), std::exception);
}

TEST(TraceIo, TaskCountMismatchRejected) {
  std::stringstream ss("1.0,3,2.0,1.0;2.0\n");  // claims 3 tasks, lists 2
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(TraceIo, MissingFileRejected) {
  EXPECT_THROW(read_trace_file("/nonexistent/forktail.csv"), std::runtime_error);
}

TEST(TraceIo, TypedErrorCarriesLineNumber) {
  std::stringstream ss("1.0,1,2.0,2.0\nnot,a,valid\n");
  try {
    read_trace(ss);
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TraceIo, TrailingGarbageInNumberRejected) {
  std::stringstream ss("1.0abc,1,2.0,2.0\n");
  EXPECT_THROW(read_trace(ss), TraceError);
}

TEST(TraceIo, NegativeTaskCountRejected) {
  // stoul would silently wrap -3 modulo 2^64; the reader must reject it.
  std::stringstream ss("1.0,-3,2.0,\n");
  EXPECT_THROW(read_trace(ss), TraceError);
}

TEST(TraceIo, PartialReadRecoversPrefixOfTruncatedFile) {
  // A collector killed mid-write leaves the last record cut off mid-field;
  // the partial reader must keep everything before it and report the error.
  const std::string text =
      "0.5,2,1.0,1.25;2.5\n"
      "1.5,3,1.0,1.0;2.0;3.0\n"
      "2.5,3,1.0,1.0;2.\n";  // third record truncated mid task-time list
  std::stringstream truncated(text);

  const TraceReadResult result = read_trace_partial(truncated);
  EXPECT_FALSE(result.complete);
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.error_line, 3u);
  EXPECT_FALSE(result.error.empty());
  EXPECT_EQ(result.records[0].num_tasks, 2u);
  EXPECT_DOUBLE_EQ(result.records[0].task_times[1], 2.5);
  EXPECT_EQ(result.records[1].num_tasks, 3u);
  // The strict reader rejects the same stream outright.
  std::stringstream again(text);
  EXPECT_THROW(read_trace(again), TraceError);
}

TEST(TraceIo, PartialReadOfRecordCutMidNumber) {
  // Truncation can also land inside a digit run, leaving a field like
  // "3.1" that still parses: the count mismatch must catch it, and a
  // dangling comma ("1.0,") must be caught as a bad field.
  std::stringstream mid("0.5,1,1.0,1.25\n1.0,2,2.0,1.5\n");
  const TraceReadResult a = read_trace_partial(mid);
  EXPECT_FALSE(a.complete);
  EXPECT_EQ(a.records.size(), 1u);
  EXPECT_EQ(a.error_line, 2u);

  std::stringstream dangling("0.5,1,1.0,1.25\n1.0,\n");
  const TraceReadResult b = read_trace_partial(dangling);
  EXPECT_FALSE(b.complete);
  EXPECT_EQ(b.records.size(), 1u);
  EXPECT_EQ(b.error_line, 2u);
}

TEST(TraceIo, PartialReadOfCleanStreamIsComplete) {
  FacebookWorkload w(default_params());
  const auto records = synthesize_trace(w, 5, 5.0, 0.05, 14);
  std::stringstream ss;
  write_trace(ss, records);
  const TraceReadResult result = read_trace_partial(ss);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.records.size(), 5u);
  EXPECT_EQ(result.error_line, 0u);
  EXPECT_TRUE(result.error.empty());
}

TEST(TraceReplay, CyclesRecordsInOrder) {
  std::vector<JobRecord> records(3);
  for (std::uint32_t i = 0; i < 3; ++i) {
    records[i].num_tasks = i + 1;
    records[i].mean_task_time = 10.0 * (i + 1);
  }
  auto gen = make_replay_generator(records);
  util::Rng rng(1);
  for (int round = 0; round < 2; ++round) {
    for (std::uint32_t i = 0; i < 3; ++i) {
      const auto job = gen(rng);
      EXPECT_EQ(job.tasks, i + 1);
      EXPECT_DOUBLE_EQ(job.mean_task_time, 10.0 * (i + 1));
      EXPECT_FALSE(job.target);
    }
  }
}

TEST(TraceReplay, ClampsTaskCounts) {
  std::vector<JobRecord> records(1);
  records[0].num_tasks = 500;
  records[0].mean_task_time = 1.0;
  auto gen = make_replay_generator(records, /*max_tasks=*/64);
  util::Rng rng(2);
  EXPECT_EQ(gen(rng).tasks, 64u);
}

TEST(TraceReplay, EmptyTraceRejected) {
  EXPECT_THROW(make_replay_generator({}), std::invalid_argument);
}

TEST(TraceMeanWork, ExactFromRecordedTimes) {
  std::vector<JobRecord> records(2);
  records[0].num_tasks = 2;
  records[0].mean_task_time = 5.0;
  records[0].task_times = {4.0, 6.0};
  records[1].num_tasks = 1;
  records[1].mean_task_time = 10.0;
  records[1].task_times = {12.0};
  EXPECT_NEAR(trace_mean_work(records, 0.05), (10.0 + 12.0) / 2.0, 1e-12);
}

TEST(TraceMeanWork, MeanBasedAppliesTruncationInflation) {
  // Without recorded times, the Hawk model Normal(m, (2m)^2) truncated at
  // ~0 inflates the mean to ~2x the nominal value.
  std::vector<JobRecord> records(1);
  records[0].num_tasks = 10;
  records[0].mean_task_time = 1.0;
  const double w = trace_mean_work(records, 0.001);
  EXPECT_GT(w, 10.0 * 1.9);
  EXPECT_LT(w, 10.0 * 2.2);
}

TEST(TraceReplay, DrivesConsolidatedSimulator) {
  // End-to-end: synthesize a trace, write/read it, replay it through the
  // consolidated simulator at a fixed load.
  FacebookWorkload::Params params = default_params();
  params.max_tasks = 16;
  params.target_fraction = 0.0;  // pure background trace
  FacebookWorkload workload(params);
  auto records = synthesize_trace(workload, 2000, 5.0, 0.05, 11);
  std::stringstream ss;
  write_trace(ss, records);
  const auto loaded = read_trace(ss);

  fjsim::ConsolidatedConfig cfg;
  cfg.num_nodes = 16;
  cfg.replicas = 3;
  cfg.load = 0.6;
  cfg.generator = make_replay_generator(loaded, 16);
  cfg.mean_work_per_job = trace_mean_work(loaded, 0.05, 16);
  cfg.num_jobs = 20000;
  cfg.seed = 12;
  const auto r = fjsim::run_consolidated(cfg);
  EXPECT_GT(r.background_task_stats.count(), 0u);
  // All jobs are background; no target jobs tracked.
  EXPECT_TRUE(r.target_responses.empty());
  // Load calibration sanity: mean background task response must exceed the
  // mean service but stay finite (stable at 60% load).
  EXPECT_GT(r.background_task_stats.mean(), 0.0);
}

}  // namespace
}  // namespace forktail::trace
