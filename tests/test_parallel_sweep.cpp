// ParallelSweepRunner: determinism across thread counts, exception
// surfacing, and slot-ordered collection.
#include "sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/predictor.hpp"
#include "parallel_runner.hpp"

namespace forktail::bench {
namespace {

SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.distributions = {"Exponential"};
  spec.node_counts = {4, 8};
  spec.loads = {0.5, 0.8};
  return spec;
}

BenchOptions tiny_options(std::size_t threads) {
  BenchOptions options;
  options.scale = 0.01;  // floors at 2000 requests per cell
  options.seed = 42;
  options.threads = threads;
  return options;
}

Predictor blackbox_predictor() {
  return [](const dist::Distribution& /*service*/, double /*lambda*/,
            const core::TaskStats& measured, double k, double percentile) {
    return core::homogeneous_quantile(measured, k, percentile);
  };
}

TEST(ParallelSweepRunner, MapPreservesIndexOrder) {
  ParallelSweepRunner runner(4);
  const auto out = runner.map<std::size_t>(
      100, 1, [](std::size_t i, util::Rng&) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelSweepRunner, CellSeedsAreScheduleIndependent) {
  // cell_seed is a pure function of (master seed, index) ...
  EXPECT_EQ(ParallelSweepRunner::cell_seed(7, 3),
            ParallelSweepRunner::cell_seed(7, 3));
  // ... and distinct across indices and master seeds.
  EXPECT_NE(ParallelSweepRunner::cell_seed(7, 3),
            ParallelSweepRunner::cell_seed(7, 4));
  EXPECT_NE(ParallelSweepRunner::cell_seed(7, 3),
            ParallelSweepRunner::cell_seed(8, 3));
}

TEST(ParallelSweepRunner, ForEachRunsEveryCellOnce) {
  ParallelSweepRunner runner(3);
  std::vector<std::atomic<int>> hits(257);
  runner.for_each(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelSweepRunner, ThrowingCellSurfacesException) {
  ParallelSweepRunner runner(4);
  EXPECT_THROW(
      runner.for_each(16,
                      [&](std::size_t i) {
                        if (i == 7) throw std::runtime_error("cell 7 bad");
                      }),
      std::runtime_error);
  // The runner stays usable after a failed sweep.
  std::atomic<int> ok{0};
  runner.for_each(8, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
}

TEST(ErrorSweep, TableIsByteIdenticalAcrossThreadCounts) {
  const SweepSpec spec = tiny_spec();
  const auto serial =
      error_sweep_table(spec, blackbox_predictor(), tiny_options(1));
  const auto parallel =
      error_sweep_table(spec, blackbox_predictor(), tiny_options(4));
  EXPECT_EQ(serial.to_csv(), parallel.to_csv());
  EXPECT_EQ(serial.to_text(), parallel.to_text());
}

TEST(ErrorSweep, ReplicatedTableIsByteIdenticalAcrossThreadCounts) {
  SweepSpec spec = tiny_spec();
  spec.node_counts = {4};
  spec.replicas = 3;
  const auto serial =
      error_sweep_table(spec, blackbox_predictor(), tiny_options(1));
  const auto parallel =
      error_sweep_table(spec, blackbox_predictor(), tiny_options(3));
  EXPECT_EQ(serial.to_csv(), parallel.to_csv());
  // replicas > 1 adds mean/spread columns.
  EXPECT_EQ(serial.num_columns(), 8u);
  EXPECT_EQ(serial.num_rows(), spec.loads.size());
}

TEST(ErrorSweep, ReplicasUseDistinctStreams) {
  SweepSpec spec = tiny_spec();
  spec.distributions = {"Exponential"};
  spec.node_counts = {4};
  spec.loads = {0.5};
  spec.replicas = 2;
  // With two replicas the spread column must be positive: the replicas ran
  // with different RNG streams, so their measured p99s differ.
  const auto table =
      error_sweep_table(spec, blackbox_predictor(), tiny_options(2));
  const std::string csv = table.to_csv();
  // Row format: dist,nodes,load%,sim,sim_sd,pred,err,err_sd -- grab sim_sd.
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream row(csv.substr(csv.find('\n') + 1));
  while (std::getline(row, cell, ',')) cells.push_back(cell);
  ASSERT_EQ(cells.size(), 8u);
  EXPECT_GT(std::stod(cells[4]), 0.0);
}

TEST(ErrorSweep, UnknownDistributionFailsTheSweepWithoutAborting) {
  SweepSpec spec = tiny_spec();
  spec.distributions = {"NoSuchDistribution"};
  EXPECT_THROW(
      error_sweep_table(spec, blackbox_predictor(), tiny_options(4)),
      std::exception);
  EXPECT_THROW(
      error_sweep_table(spec, blackbox_predictor(), tiny_options(1)),
      std::exception);
}

}  // namespace
}  // namespace forktail::bench
