#include "dist/heavy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "stats/ecdf.hpp"
#include "stats/welford.hpp"
#include "util/rng.hpp"

namespace forktail::dist {
namespace {

TEST(NormalHelpers, CdfPdfConsistency) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-14);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(normal_cdf(-1.959963984540054), 0.025, 1e-9);
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-12);
}

TEST(NormalHelpers, QuantileInvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 0.9999}) {
    const double z = normal_quantile(p);
    EXPECT_NEAR(normal_cdf(z), p, 1e-10) << "p=" << p;
  }
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
}

TEST(Weibull, PaperCalibration) {
  // mean 4.22 ms, CV 1.5 => shape 0.6848, scale 3.2630 (Section 4.1).
  const auto d = Weibull::from_mean_cv(4.22, 1.5);
  EXPECT_NEAR(d.shape(), 0.6848, 5e-4);
  EXPECT_NEAR(d.scale(), 3.2630, 5e-3);
  EXPECT_NEAR(d.mean(), 4.22, 1e-9);
  EXPECT_NEAR(d.cv(), 1.5, 1e-9);
}

TEST(Weibull, SampledMomentsMatchAnalytic) {
  const auto d = Weibull::from_mean_cv(4.22, 1.5);
  util::Rng rng(20);
  stats::RawMoments m;
  std::vector<double> samples;
  for (int i = 0; i < 300000; ++i) {
    const double x = d.sample(rng);
    m.add(x);
    samples.push_back(x);
  }
  EXPECT_NEAR(m.moment(1), d.moment(1), 0.02 * d.moment(1));
  EXPECT_NEAR(m.moment(2), d.moment(2), 0.05 * d.moment(2));
  stats::Ecdf e(samples);
  EXPECT_LT(e.ks_distance([&](double x) { return d.cdf(x); }), 0.01);
}

TEST(Weibull, ShapeOneIsExponential) {
  Weibull d(1.0, 3.0);
  EXPECT_NEAR(d.mean(), 3.0, 1e-12);
  EXPECT_NEAR(d.scv(), 1.0, 1e-9);
  EXPECT_NEAR(d.cdf(3.0), 1.0 - std::exp(-1.0), 1e-12);
}

TEST(TruncatedPareto, PaperCalibration) {
  // mean 4.22 ms, CV 1.2, H = 276.6 ms => alpha = 2.0119, L = 2.14 ms.
  const auto d = TruncatedPareto::from_mean_cv_upper(4.22, 1.2, 276.6);
  EXPECT_NEAR(d.alpha(), 2.0119, 2e-3);
  EXPECT_NEAR(d.lower(), 2.14, 5e-3);
  EXPECT_NEAR(d.mean(), 4.22, 1e-8);
  EXPECT_NEAR(d.cv(), 1.2, 1e-8);
}

TEST(TruncatedPareto, SupportRespected) {
  const auto d = TruncatedPareto::from_mean_cv_upper(4.22, 1.2, 276.6);
  util::Rng rng(21);
  for (int i = 0; i < 100000; ++i) {
    const double x = d.sample(rng);
    ASSERT_GE(x, d.lower());
    ASSERT_LE(x, d.upper());
  }
}

TEST(TruncatedPareto, CdfBoundariesAndMonotone) {
  TruncatedPareto d(2.0, 1.0, 100.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(100.0), 1.0);
  double prev = 0.0;
  for (double x = 1.0; x <= 100.0; x += 1.0) {
    const double c = d.cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(TruncatedPareto, ThirdMomentFiniteThanksToTruncation) {
  const auto d = TruncatedPareto::from_mean_cv_upper(4.22, 1.2, 276.6);
  // alpha ~ 2 means an untruncated Pareto would have infinite E[S^3]; the
  // truncation keeps it finite -- required by the Takacs formula (Eq. 11).
  EXPECT_GT(d.moment(3), 0.0);
  EXPECT_LT(d.moment(3), std::pow(276.6, 3));
  util::Rng rng(22);
  stats::RawMoments m;
  // E[S^3] with alpha ~ 2 is dominated by rare near-maximum draws, so the
  // Monte-Carlo estimate converges slowly; use a wide band.
  for (int i = 0; i < 2000000; ++i) m.add(d.sample(rng));
  EXPECT_NEAR(m.moment(3), d.moment(3), 0.15 * d.moment(3));
}

TEST(TruncatedPareto, MomentAtKEqualAlphaUsesLogBranch) {
  TruncatedPareto d(2.0, 1.0, 50.0);  // k = 2 == alpha
  util::Rng rng(23);
  stats::RawMoments m;
  for (int i = 0; i < 400000; ++i) m.add(d.sample(rng));
  EXPECT_NEAR(m.moment(2), d.moment(2), 0.05 * d.moment(2));
}

TEST(LogNormal, FromMeanCvRoundTrip) {
  const auto d = LogNormal::from_mean_cv(10.0, 0.8);
  EXPECT_NEAR(d.mean(), 10.0, 1e-9);
  EXPECT_NEAR(d.cv(), 0.8, 1e-9);
}

TEST(LogNormal, SampledCdfMatches) {
  const auto d = LogNormal::from_mean_cv(5.0, 1.0);
  util::Rng rng(24);
  std::vector<double> samples(150000);
  for (auto& x : samples) x = d.sample(rng);
  stats::Ecdf e(samples);
  EXPECT_LT(e.ks_distance([&](double x) { return d.cdf(x); }), 0.01);
}

TEST(TruncatedNormal, MomentsMatchSampling) {
  // The trace model: Normal(m, (2m)^2) truncated below (Hawk-style).
  const double m = 50.0;
  TruncatedNormal d(m, 2.0 * m, 0.05);
  util::Rng rng(25);
  stats::RawMoments mm;
  for (int i = 0; i < 400000; ++i) {
    const double x = d.sample(rng);
    ASSERT_GE(x, 0.05);
    mm.add(x);
  }
  EXPECT_NEAR(mm.moment(1), d.moment(1), 0.01 * d.moment(1));
  EXPECT_NEAR(mm.moment(2), d.moment(2), 0.03 * d.moment(2));
  EXPECT_NEAR(mm.moment(3), d.moment(3), 0.06 * d.moment(3));
}

TEST(TruncatedNormal, SevereTruncationInflatesMean) {
  // With sigma = 2m the mass below zero is ~31%; truncation raises the
  // mean to ~2x the nominal value -- the effect the trace generator must
  // account for when calibrating load.
  TruncatedNormal d(1.0, 2.0, 0.0);
  EXPECT_GT(d.mean(), 1.9);
  EXPECT_LT(d.mean(), 2.2);
}

TEST(TruncatedNormal, CdfBoundaries) {
  TruncatedNormal d(10.0, 5.0, 1.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.0);
  EXPECT_NEAR(d.cdf(1e9), 1.0, 1e-12);
  EXPECT_GT(d.cdf(10.0), 0.3);
  EXPECT_LT(d.cdf(10.0), 0.7);
}

TEST(TruncatedNormal, RejectsNegligibleMass) {
  // Truncating 20 sigma above the mean leaves no usable mass.
  EXPECT_THROW(TruncatedNormal(0.0, 1.0, 20.0), std::invalid_argument);
}

TEST(HeavyDists, NoLstAvailable) {
  const auto d = Weibull::from_mean_cv(4.22, 1.5);
  EXPECT_FALSE(d.has_lst());
  EXPECT_THROW(d.lst({1.0, 0.0}), std::logic_error);
}

TEST(Pareto, MomentsMatchClosedForm) {
  // E[S^k] = alpha scale^k / (alpha - k) for k < alpha, +infinity at and
  // beyond the tail index.
  const Pareto d(2.5, 2.0);
  EXPECT_NEAR(d.moment(1), 2.5 * 2.0 / 1.5, 1e-12);
  EXPECT_NEAR(d.moment(2), 2.5 * 4.0 / 0.5, 1e-12);
  EXPECT_TRUE(std::isinf(d.moment(3)));
  const Pareto light(3.5, 2.0);
  EXPECT_NEAR(light.moment(3), 3.5 * 8.0 / 0.5, 1e-12);
}

TEST(Pareto, CdfBoundariesAndPowerLaw) {
  const Pareto d(2.5, 2.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.0);
  EXPECT_NEAR(d.cdf(4.0), 1.0 - std::pow(0.5, 2.5), 1e-14);
  // Survival is an exact power law: S(2x)/S(x) = 2^-alpha for all x >= L.
  for (double x : {3.0, 10.0, 100.0}) {
    EXPECT_NEAR((1.0 - d.cdf(2.0 * x)) / (1.0 - d.cdf(x)),
                std::pow(2.0, -2.5), 1e-12);
  }
}

TEST(Pareto, FromMeanTailRoundTrip) {
  const auto d = Pareto::from_mean_tail(4.22, 2.2);
  EXPECT_NEAR(d.scale(), 4.22 * 1.2 / 2.2, 1e-12);
  EXPECT_NEAR(d.mean(), 4.22, 1e-12);
  EXPECT_DOUBLE_EQ(d.alpha(), 2.2);
}

TEST(Pareto, FromMeanTailRejectsDivergentMean) {
  EXPECT_THROW(Pareto::from_mean_tail(4.22, 1.0), std::invalid_argument);
  EXPECT_THROW(Pareto::from_mean_tail(4.22, 0.5), std::invalid_argument);
  EXPECT_THROW(Pareto::from_mean_tail(0.0, 2.2), std::invalid_argument);
  EXPECT_THROW(Pareto(-1.0, 2.0), std::invalid_argument);
}

TEST(Pareto, SampledBodyMatchesCdf) {
  // KS on the full sample checks the inverse transform; the first moment
  // converges (alpha > 2) but slowly, so the band is loose.
  const auto d = Pareto::from_mean_tail(4.22, 2.6);
  util::Rng rng(21);
  stats::RawMoments m;
  std::vector<double> samples;
  for (int i = 0; i < 300000; ++i) {
    const double x = d.sample(rng);
    m.add(x);
    samples.push_back(x);
  }
  EXPECT_NEAR(m.moment(1), d.moment(1), 0.05 * d.moment(1));
  stats::Ecdf e(samples);
  EXPECT_LT(e.ks_distance([&](double x) { return d.cdf(x); }), 0.01);
  // Support starts at the scale: no sample below it.
  EXPECT_GE(*std::min_element(samples.begin(), samples.end()), d.scale());
}

TEST(HeavyMixture, MomentsAndCdfAreConvexCombinations) {
  const auto d = ParetoLogNormalMixture::from_mean_tail(4.22, 2.2, 0.9, 0.8);
  // Both components are calibrated to the target mean, so the mixture mean
  // is exactly the target for any body weight.
  EXPECT_NEAR(d.mean(), 4.22, 1e-9);
  EXPECT_NEAR(d.moment(2),
              0.9 * d.body().moment(2) + 0.1 * d.tail().moment(2), 1e-9);
  EXPECT_TRUE(std::isinf(d.moment(3)));  // tail alpha 2.2 < 3 propagates
  for (double x : {1.0, 4.0, 20.0, 200.0}) {
    EXPECT_NEAR(d.cdf(x), 0.9 * d.body().cdf(x) + 0.1 * d.tail().cdf(x),
                1e-14);
  }
}

TEST(HeavyMixture, RejectsDegenerateBodyWeight) {
  const auto body = LogNormal::from_mean_cv(4.22, 0.8);
  const auto tail = Pareto::from_mean_tail(4.22, 2.2);
  EXPECT_THROW(ParetoLogNormalMixture(1.0, body, tail), std::invalid_argument);
  EXPECT_THROW(ParetoLogNormalMixture(-0.1, body, tail),
               std::invalid_argument);
  EXPECT_NO_THROW(ParetoLogNormalMixture(0.0, body, tail));
}

TEST(HeavyMixture, SampledCdfMatchesAnalytic) {
  const auto d = ParetoLogNormalMixture::from_mean_tail(4.22, 2.6);
  util::Rng rng(22);
  std::vector<double> samples;
  samples.reserve(300000);
  for (int i = 0; i < 300000; ++i) samples.push_back(d.sample(rng));
  stats::Ecdf e(samples);
  EXPECT_LT(e.ks_distance([&](double x) { return d.cdf(x); }), 0.01);
}

}  // namespace
}  // namespace forktail::dist
