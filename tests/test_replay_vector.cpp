// Vector replay engine determinism and equivalence suite.
//
// The engine's contract (fjsim/vector_engine.hpp) is:
//   1. Bit-identical output for ANY thread count (max_parallelism), ANY
//      demand-tile size (config.batch), and ANY ISA dispatch level.
//   2. Statistically equivalent to the legacy engines, but NOT bit-identical
//      to them (documented golden change: polynomial log/exp, inverse-CDF
//      lognormal, pooled subset demand lanes; docs/performance.md).
// This file pins both halves, plus the primitives the contract rests on:
// split_seed known-answer vectors, XoshiroBlock lane streams vs the scalar
// engine, bits_to_unit vs Rng::uniform, and the vec_math kernels vs libm.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "dist/basic.hpp"
#include "dist/factory.hpp"
#include "dist/google_leaf.hpp"
#include "dist/heavy.hpp"
#include "dist/vec_sampler.hpp"
#include "fjsim/heterogeneous.hpp"
#include "fjsim/homogeneous.hpp"
#include "fjsim/pipeline.hpp"
#include "fjsim/subset.hpp"
#include "fjsim/telemetry.hpp"
#include "fjsim/vector_engine.hpp"
#include "stats/percentile.hpp"
#include "util/rng.hpp"
#include "util/vec_math.hpp"
#include "util/vec_rng.hpp"

namespace forktail::fjsim {

// The per-level entry points have external linkage precisely so the native
// dispatch level can be checked against the always-available generic level
// in-process (vector_engine.cpp declares the same signatures).
namespace ve_generic {
HomogeneousResult run_homogeneous(const HomogeneousConfig& config);
HeterogeneousResult run_heterogeneous(const HeterogeneousConfig& config);
SubsetResult run_subset(const SubsetConfig& config);
PipelineResult run_pipeline(const PipelineConfig& config);
}  // namespace ve_generic

namespace {

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << what << " diverges at index " << i;
  }
}

void expect_welford_equal(const stats::Welford& a, const stats::Welford& b,
                          const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what << " count";
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.mean()),
            std::bit_cast<std::uint64_t>(b.mean()))
      << what << " mean";
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.variance()),
            std::bit_cast<std::uint64_t>(b.variance()))
      << what << " variance";
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.min()),
            std::bit_cast<std::uint64_t>(b.min()))
      << what << " min";
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.max()),
            std::bit_cast<std::uint64_t>(b.max()))
      << what << " max";
}

// ------------------------------------------------------------- primitives

TEST(VecRng, SplitSeedKnownAnswers) {
  // Pinned outputs of Rng::split_seed.  These are the exact seeds the
  // sharded engine hands to SIMD lanes; a silent change here re-seeds every
  // stream and invalidates all vector goldens.
  struct Kat {
    std::uint64_t parent, index, child;
  };
  constexpr Kat kKats[] = {
      {0x0000000000000000ULL, 0x0000000000000000ULL, 0xa706dd2f4d197e6fULL},
      {0x0000000000000000ULL, 0x0000000000000001ULL, 0x5e41ab087439611eULL},
      {0x000000000000002aULL, 0x0000000000000000ULL, 0x4d9b3f1ec9cf6b1bULL},
      {0x000000000000002aULL, 0x0000000000000064ULL, 0xb234c65b9aa6ae44ULL},
      {0x00000000deadbeefULL, 0x0000000000000007ULL, 0x03b1802eab8d5742ULL},
      {0xffffffffffffffffULL, 0xffffffffffffffffULL, 0x6309143e67a47936ULL},
  };
  for (const Kat& k : kKats) {
    EXPECT_EQ(util::Rng::split_seed(k.parent, k.index), k.child)
        << "parent=" << k.parent << " index=" << k.index;
  }
}

TEST(VecRng, BitsToUnitMatchesRngUniform) {
  // Regression pin: an earlier exponent-splice implementation dropped bit 52
  // of (x >> 11) and folded every uniform into [0, 1/2).  Cover draws with
  // bit 52 both set and clear, plus the extremes.
  constexpr std::uint64_t kProbe[] = {
      0ULL, 1ULL, 0x7ffULL, 0x800ULL, 0x8000000000000000ULL,
      0xffffffffffffffffULL, 0x8000000000000800ULL, 0x123456789abcdef0ULL};
  for (std::uint64_t x : kProbe) {
    const double expected = static_cast<double>(x >> 11) * 0x1.0p-53;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(util::bits_to_unit(x)),
              std::bit_cast<std::uint64_t>(expected))
        << "x=" << x;
    EXPECT_GE(util::bits_to_unit(x), 0.0);
    EXPECT_LT(util::bits_to_unit(x), 1.0);
  }
  // And against the scalar generator on a live stream.
  util::Xoshiro256pp raw(99);
  util::Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(util::bits_to_unit(raw())),
              std::bit_cast<std::uint64_t>(rng.uniform()))
        << "draw " << i;
  }
}

TEST(VecRng, XoshiroBlockLanesMatchScalarStreams) {
  constexpr std::size_t kRows = 333;  // odd, so refills land mid-stream
  util::XoshiroBlock block;
  std::uint64_t seeds[util::kVecLanes];
  for (std::size_t l = 0; l < util::kVecLanes; ++l) {
    seeds[l] = util::Rng::split_seed(42, 100 + l);
    block.seed_lane(l, seeds[l]);
  }
  std::vector<std::uint64_t> out(kRows * util::kVecLanes);
  block.fill(out.data(), kRows);
  // Second fill continues the stream (state carries across blocks).
  std::vector<std::uint64_t> out2(kRows * util::kVecLanes);
  block.fill(out2.data(), kRows);
  for (std::size_t l = 0; l < util::kVecLanes; ++l) {
    util::Xoshiro256pp scalar(seeds[l]);
    for (std::size_t i = 0; i < kRows; ++i) {
      ASSERT_EQ(out[i * util::kVecLanes + l], scalar())
          << "lane " << l << " row " << i;
    }
    for (std::size_t i = 0; i < kRows; ++i) {
      ASSERT_EQ(out2[i * util::kVecLanes + l], scalar())
          << "lane " << l << " row " << kRows + i << " (second block)";
    }
  }
}

TEST(VecRng, CounterHashIsRandomAccess) {
  // Element c of stream s must not depend on what was drawn before it.
  const std::uint64_t direct = util::counter_hash(7, 1000);
  std::uint64_t blockwise[16];
  util::counter_hash_block(7, 992, blockwise, 16);
  EXPECT_EQ(blockwise[8], direct);
  // Distinct (seed, counter) pairs map to distinct outputs over a small
  // window (the finalizer is bijective per seed).
  for (int i = 0; i < 15; ++i) EXPECT_NE(blockwise[i], blockwise[i + 1]);
}

TEST(VecRng, PickHash32IsRandomAccessAndInRange) {
  // The subset engine's pick stream: element (stream, counter) of seed s is
  // a pure function of the triple -- recomputing it in any order gives the
  // same value (the conflict-fixup loop relies on this).
  const std::uint32_t direct = util::pick_hash32(7u, 42u, 1000u);
  for (std::uint32_t c = 1005; c-- > 995;) {
    const std::uint32_t again = util::pick_hash32(7u, 42u, c);
    if (c == 1000u) {
      EXPECT_EQ(again, direct);
    }
  }
  // Changing any single input changes the output (sanity, not a proof).
  EXPECT_NE(util::pick_hash32(8u, 42u, 1000u), direct);
  EXPECT_NE(util::pick_hash32(7u, 43u, 1000u), direct);
  EXPECT_NE(util::pick_hash32(7u, 42u, 1001u), direct);

  // hash_to_range maps into [0, n) for every h, including the extremes,
  // and the multiply-shift reduction is monotone in h for fixed n.
  for (std::uint32_t n : {1u, 2u, 16u, 100u, 4096u}) {
    EXPECT_EQ(util::hash_to_range(0u, n), 0u);
    EXPECT_LT(util::hash_to_range(0xFFFFFFFFu, n), n);
  }
  // Distribution sanity: hashing 64k counters into n=100 hits every cell
  // within a loose band of the expected 655 per cell.
  std::array<int, 100> cells{};
  for (std::uint32_t c = 0; c < 65536; ++c) {
    ++cells[util::hash_to_range(util::pick_hash32(1u, 2u, c), 100u)];
  }
  for (int count : cells) {
    EXPECT_GT(count, 400);
    EXPECT_LT(count, 950);
  }
}

TEST(VecMath, LogExpMatchLibmClosely) {
  util::Rng rng(5);
  double max_log_ulp = 0.0, max_exp_ulp = 0.0;
  for (int i = 0; i < 200000; ++i) {
    // Log-uniform u covers every binade the samplers can feed into log.
    const double u = std::exp(rng.uniform(-690.0, 0.0));
    const double l0 = util::vec_log(u), l1 = std::log(u);
    max_log_ulp = std::max(
        max_log_ulp, std::abs(l0 - l1) / std::abs(std::nextafter(l1, 0.0) - l1));
    const double x = rng.uniform(-700.0, 700.0);
    const double e0 = util::vec_exp(x), e1 = std::exp(x);
    max_exp_ulp = std::max(
        max_exp_ulp, std::abs(e0 - e1) / (std::nextafter(e1, 1e308) - e1));
  }
  // Measured: log ~7 ulp worst case (atanh-series rounding), exp ~1 ulp
  // (Cody-Waite reduction + degree-13 Taylor).  The bounds leave one
  // doubling of headroom before a compiler/libm change trips them.
  EXPECT_LT(max_log_ulp, 14.0);
  EXPECT_LT(max_exp_ulp, 4.0);
}

TEST(VecSampler, EmpiricalGridMatchesQuantileBitwise) {
  const dist::Empirical& leaf = dist::google_leaf();
  const dist::EmpiricalGrid grid(leaf);
  util::Rng rng(11);
  for (int i = 0; i < 50000; ++i) {
    const double u = rng.uniform();
    ASSERT_EQ(std::bit_cast<std::uint64_t>(grid.quantile(u)),
              std::bit_cast<std::uint64_t>(leaf.quantile(u)))
        << "u=" << u;
  }
}

TEST(VecSampler, LaneMeansMatchDistributionMeans) {
  // Every vectorized inverse-CDF path, checked against the analytic mean.
  // 8 lanes x 100k rows gives a standard error small enough for 2% bands
  // even on the heavy tails (lognormal excluded from the tightest band).
  const std::vector<dist::DistPtr> roster = {
      std::make_shared<dist::Exponential>(1.7),
      std::make_shared<dist::Erlang>(3, 2.0),
      std::make_shared<dist::HyperExp2>(dist::HyperExp2::from_mean_scv(4.22, 2.0)),
      std::make_shared<dist::Weibull>(0.7, 1.3),
      std::make_shared<dist::LogNormal>(0.2, 0.6),
      std::make_shared<dist::Deterministic>(3.25),
      std::make_shared<dist::UniformReal>(1.0, 3.0),
      dist::google_leaf_ptr(),
  };
  constexpr std::size_t kRows = 100000;
  std::vector<double> buf(kRows * util::kVecLanes);
  for (const auto& d : roster) {
    std::vector<dist::LaneSampler::Lane> lanes;
    for (std::size_t l = 0; l < util::kVecLanes; ++l) {
      lanes.push_back({d.get(), util::Rng::split_seed(9, l)});
    }
    dist::LaneSampler sampler{
        std::span<const dist::LaneSampler::Lane>(lanes)};
    sampler.fill(buf.data(), kRows);
    double sum = 0.0;
    for (double x : buf) sum += x;
    const double mean = sum / static_cast<double>(buf.size());
    EXPECT_NEAR(mean, d->mean(), 0.02 * d->mean()) << d->name();
  }
}

TEST(VecSampler, ExponentialLanesTrackScalarStream) {
  // The exponential path consumes exactly one u64 per sample from the same
  // lane stream the scalar Rng would; values agree to a few ulp (vec_log vs
  // libm log is the only difference).
  const dist::Exponential d(2.5);
  const std::uint64_t seed = util::Rng::split_seed(3, 100);
  std::vector<dist::LaneSampler::Lane> lanes(
      util::kVecLanes, dist::LaneSampler::Lane{&d, seed});
  dist::LaneSampler sampler{std::span<const dist::LaneSampler::Lane>(lanes)};
  constexpr std::size_t kRows = 4096;
  std::vector<double> buf(kRows * util::kVecLanes);
  sampler.fill(buf.data(), kRows);
  util::Rng scalar(seed);
  for (std::size_t i = 0; i < kRows; ++i) {
    const double ref = d.sample(scalar);
    const double got = buf[i * util::kVecLanes];  // lane 0 shares the seed
    ASSERT_NEAR(got, ref, 16.0 * std::abs(ref) * 0x1.0p-52) << "row " << i;
  }
}

// ------------------------------------------------- engine determinism

HomogeneousConfig homog_config() {
  HomogeneousConfig c;
  c.num_nodes = 21;  // odd: remainder lanes in the last node group
  c.service = std::make_shared<dist::Exponential>(1.0);
  c.load = 0.8;
  c.num_requests = 8000;
  c.seed = 42;
  c.engine = Engine::kVector;
  return c;
}

SubsetConfig subset_config() {
  SubsetConfig c;
  c.num_nodes = 50;
  c.k_fixed = 7;
  c.service = std::make_shared<dist::Weibull>(0.5, 0.05);
  c.load = 0.7;
  c.num_requests = 8000;
  c.seed = 7;
  c.engine = Engine::kVector;
  return c;
}

PipelineConfig pipeline_config() {
  PipelineConfig c;
  c.stages = {{6, std::make_shared<dist::Exponential>(1.0)},
              {9, std::make_shared<dist::LogNormal>(0.0, 0.5)}};
  c.num_requests = 8000;
  c.seed = 3;
  c.engine = Engine::kVector;
  return c;
}

HeterogeneousConfig hetero_config() {
  HeterogeneousConfig c;
  for (int i = 0; i < 13; ++i) {
    c.services.push_back(
        i % 2 ? dist::DistPtr(std::make_shared<dist::Exponential>(0.5 + 0.1 * i))
              : dist::DistPtr(std::make_shared<dist::Erlang>(3, 2.0)));
  }
  c.lambda = lambda_for_max_load(c.services, 0.8);
  c.num_requests = 8000;
  c.seed = 11;
  c.engine = Engine::kVector;
  return c;
}

TEST(VectorEngine, HomogeneousThreadAndBatchInvariant) {
  auto c = homog_config();
  const auto ref = run_homogeneous(c);
  for (std::size_t threads : {std::size_t{2}, std::size_t{5}}) {
    auto ct = c;
    ct.max_parallelism = threads;
    const auto got = run_homogeneous(ct);
    expect_bitwise_equal(ref.responses, got.responses, "homog responses");
    expect_welford_equal(ref.task_stats, got.task_stats, "homog task_stats");
    EXPECT_EQ(ref.total_tasks, got.total_tasks);
    EXPECT_EQ(ref.lambda, got.lambda);
  }
  for (std::size_t batch : {std::size_t{1}, std::size_t{97}, std::size_t{1} << 20}) {
    auto cb = c;
    cb.batch = batch;
    const auto got = run_homogeneous(cb);
    expect_bitwise_equal(ref.responses, got.responses, "homog batch responses");
    expect_welford_equal(ref.task_stats, got.task_stats, "homog batch stats");
  }
}

TEST(VectorEngine, SubsetThreadAndBatchInvariant) {
  auto c = subset_config();
  const auto ref = run_subset(c);
  for (std::size_t threads : {std::size_t{2}, std::size_t{5}}) {
    auto ct = c;
    ct.max_parallelism = threads;
    const auto got = run_subset(ct);
    expect_bitwise_equal(ref.responses, got.responses, "subset responses");
    expect_welford_equal(ref.task_stats, got.task_stats, "subset task_stats");
    EXPECT_EQ(ref.total_tasks, got.total_tasks);
  }
  auto cb = c;
  cb.batch = 37;
  const auto got = run_subset(cb);
  expect_bitwise_equal(ref.responses, got.responses, "subset batch responses");
  expect_welford_equal(ref.task_stats, got.task_stats, "subset batch stats");
}

TEST(VectorEngine, PipelineThreadInvariant) {
  auto c = pipeline_config();
  const auto ref = run_pipeline(c);
  for (std::size_t threads : {std::size_t{2}, std::size_t{5}}) {
    auto ct = c;
    ct.max_parallelism = threads;
    const auto got = run_pipeline(ct);
    expect_bitwise_equal(ref.responses, got.responses, "pipeline responses");
    ASSERT_EQ(ref.stage_task_stats.size(), got.stage_task_stats.size());
    for (std::size_t s = 0; s < ref.stage_task_stats.size(); ++s) {
      expect_welford_equal(ref.stage_task_stats[s], got.stage_task_stats[s],
                           "pipeline stage task stats");
      expect_welford_equal(ref.stage_latency_stats[s],
                           got.stage_latency_stats[s],
                           "pipeline stage latency stats");
    }
  }
}

TEST(VectorEngine, HeterogeneousThreadInvariant) {
  auto c = hetero_config();
  const auto ref = run_heterogeneous(c);
  for (std::size_t threads : {std::size_t{2}, std::size_t{5}}) {
    auto ct = c;
    ct.max_parallelism = threads;
    const auto got = run_heterogeneous(ct);
    expect_bitwise_equal(ref.responses, got.responses, "hetero responses");
    ASSERT_EQ(ref.node_stats.size(), got.node_stats.size());
    for (std::size_t n = 0; n < ref.node_stats.size(); ++n) {
      expect_welford_equal(ref.node_stats[n], got.node_stats[n],
                           "hetero node stats");
    }
  }
}

TEST(VectorEngine, GenericLevelMatchesNativeDispatch) {
  // The dispatcher picks the best ISA level for this CPU; the generic level
  // must produce bit-identical results.  On a machine without AVX this test
  // compares generic with itself, which is vacuous but harmless.
  const auto hc = homog_config();
  const auto native_h = run_homogeneous(hc);
  const auto generic_h = ve_generic::run_homogeneous(hc);
  expect_bitwise_equal(native_h.responses, generic_h.responses,
                       "homog generic-vs-native");
  expect_welford_equal(native_h.task_stats, generic_h.task_stats,
                       "homog generic-vs-native stats");

  const auto sc = subset_config();
  const auto native_s = run_subset(sc);
  const auto generic_s = ve_generic::run_subset(sc);
  expect_bitwise_equal(native_s.responses, generic_s.responses,
                       "subset generic-vs-native");

  const auto pc = pipeline_config();
  const auto native_p = run_pipeline(pc);
  const auto generic_p = ve_generic::run_pipeline(pc);
  expect_bitwise_equal(native_p.responses, generic_p.responses,
                       "pipeline generic-vs-native");

  const auto xc = hetero_config();
  const auto native_x = run_heterogeneous(xc);
  const auto generic_x = ve_generic::run_heterogeneous(xc);
  expect_bitwise_equal(native_x.responses, generic_x.responses,
                       "hetero generic-vs-native");
}

TEST(VectorEngine, TelemetryCountersThreadInvariant) {
  // The deterministic counters (tasks, tiles) must not depend on how the
  // node groups were sharded -- only wall-clock histograms may differ.
  auto& m = ReplayMetrics::get();
  auto c = homog_config();

  const std::uint64_t meas0 = m.tasks_measured.value();
  const std::uint64_t warm0 = m.tasks_warmup.value();
  const std::uint64_t tiles0 = m.tiles.value();
  (void)run_homogeneous(c);
  const std::uint64_t meas1 = m.tasks_measured.value();
  const std::uint64_t warm1 = m.tasks_warmup.value();
  const std::uint64_t tiles1 = m.tiles.value();
  c.max_parallelism = 5;
  (void)run_homogeneous(c);
  EXPECT_EQ(m.tasks_measured.value() - meas1, meas1 - meas0);
  EXPECT_EQ(m.tasks_warmup.value() - warm1, warm1 - warm0);
  EXPECT_EQ(m.tiles.value() - tiles1, tiles1 - tiles0);
}

// ------------------------------------------- statistical equivalence

TEST(VectorEngine, HomogeneousMatchesLegacyStatistically) {
  auto c = homog_config();
  c.num_requests = 20000;
  auto legacy = c;
  legacy.engine = Engine::kLegacy;
  const auto l = run_homogeneous(legacy);
  const auto v = run_homogeneous(c);
  ASSERT_EQ(l.task_stats.count(), v.task_stats.count());
  // Same streams, same transforms up to last-ulp log differences: the
  // aggregate moments agree far tighter than sampling noise.
  EXPECT_NEAR(v.task_stats.mean(), l.task_stats.mean(),
              1e-6 * l.task_stats.mean());
  EXPECT_NEAR(v.task_stats.variance(), l.task_stats.variance(),
              1e-6 * l.task_stats.variance());
  EXPECT_NEAR(stats::percentile(v.responses, 99.0),
              stats::percentile(l.responses, 99.0),
              1e-6 * stats::percentile(l.responses, 99.0));
}

TEST(VectorEngine, SubsetAndPipelineMatchLegacyWithinNoise) {
  // These paths replay different (equally valid) sample paths -- pooled
  // demand lanes, counter-hash picks, inverse-CDF lognormal -- so the
  // comparison is statistical: means within a few percent at n = 20000.
  auto sc = subset_config();
  sc.num_requests = 20000;
  auto sl = sc;
  sl.engine = Engine::kLegacy;
  const auto s_legacy = run_subset(sl);
  const auto s_vec = run_subset(sc);
  EXPECT_EQ(s_legacy.total_tasks, s_vec.total_tasks);
  EXPECT_NEAR(s_vec.task_stats.mean(), s_legacy.task_stats.mean(),
              0.10 * s_legacy.task_stats.mean());

  auto pc = pipeline_config();
  pc.num_requests = 20000;
  auto pl = pc;
  pl.engine = Engine::kLegacy;
  const auto p_legacy = run_pipeline(pl);
  const auto p_vec = run_pipeline(pc);
  for (std::size_t s = 0; s < p_legacy.stage_task_stats.size(); ++s) {
    EXPECT_NEAR(p_vec.stage_task_stats[s].mean(),
                p_legacy.stage_task_stats[s].mean(),
                0.10 * p_legacy.stage_task_stats[s].mean())
        << "stage " << s;
  }
  EXPECT_NEAR(stats::percentile(p_vec.responses, 99.0),
              stats::percentile(p_legacy.responses, 99.0),
              0.15 * stats::percentile(p_legacy.responses, 99.0));
}

// ------------------------------------------------ unsupported configs

TEST(VectorEngine, RejectsUnsupportedPoliciesLoudly) {
  auto hc = homog_config();
  hc.policy = Policy::kRedundant;
  hc.redundant_delay = 10.0;
  EXPECT_THROW((void)run_homogeneous(hc), ConfigError);

  auto sc = subset_config();
  sc.replicas = 2;
  EXPECT_THROW((void)run_subset(sc), ConfigError);
}

}  // namespace
}  // namespace forktail::fjsim
