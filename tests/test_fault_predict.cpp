// Degraded-mode predictor: closed-form mitigation transforms over the GE
// fit, the degraded-flag contract, and the issue's acceptance criterion --
// hedging at the p95 delay quantile on a homogeneous scenario at 80% load
// must measurably drop the simulated p99, and the degraded-mode predictor
// must track that mitigated p99 within 25%.
#include "fault/predict.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/genexp.hpp"
#include "dist/basic.hpp"
#include "fault/sim.hpp"
#include "scenario/run.hpp"
#include "stats/percentile.hpp"

namespace forktail::fault {
namespace {

MitigatedStats healthy_stats() {
  MitigatedStats s;
  s.attempt_mean = 20.0;
  s.attempt_variance = 500.0;
  s.attempt_count = 10000;
  return s;
}

TEST(FaultPredict, InertPolicyReducesToForkTailMaxOrderStatistic) {
  const MitigatedStats s = healthy_stats();
  const MitigationPolicy inert;
  const int fanout = 50;
  const auto p = predict_mitigated(s, inert, fanout, 0.99);
  EXPECT_FALSE(p.degraded);
  EXPECT_TRUE(p.reasons.empty());
  const auto ge = core::GenExp::fit_moments(s.attempt_mean, s.attempt_variance);
  EXPECT_NEAR(p.value, ge.max_quantile(0.99, fanout),
              1e-5 * ge.max_quantile(0.99, fanout));
}

TEST(FaultPredict, HedgingLowersThePrediction) {
  MitigatedStats s = healthy_stats();
  s.hedge_mean = s.attempt_mean;
  s.hedge_variance = s.attempt_variance;
  s.hedge_count = 10000;
  s.hedge_delay = 50.0;
  MitigationPolicy hedged;
  hedged.hedge_quantile = 0.95;
  const auto with = predict_mitigated(s, hedged, 50, 0.99);
  const auto without = predict_mitigated(s, MitigationPolicy{}, 50, 0.99);
  EXPECT_FALSE(with.degraded);
  EXPECT_LT(with.value, without.value);
}

TEST(FaultPredict, EarlyReturnLowersThePrediction) {
  const MitigatedStats s = healthy_stats();
  MitigationPolicy partial;
  partial.early_k = 40;
  const auto some = predict_mitigated(s, partial, 50, 0.99);
  const auto all = predict_mitigated(s, MitigationPolicy{}, 50, 0.99);
  EXPECT_LT(some.value, all.value);
  // early_k == fanout is exactly the full barrier.
  MitigationPolicy full;
  full.early_k = 50;
  const auto same = predict_mitigated(s, full, 50, 0.99);
  EXPECT_NEAR(same.value, all.value, 1e-6 * all.value);
}

TEST(FaultPredict, TimeoutWithoutRetriesDefectsAndDegrades) {
  // A timeout with no retries loses mass: completion never reaches 1, so
  // extreme percentiles must be conditioned -- a stated degradation.
  const MitigatedStats s = healthy_stats();
  MitigationPolicy policy;
  policy.timeout = 25.0;  // ~p71 of an exponential with mean 20
  const auto p = predict_mitigated(s, policy, 50, 0.99);
  EXPECT_TRUE(p.degraded);
  EXPECT_FALSE(p.reasons.empty());
  EXPECT_TRUE(std::isfinite(p.value));
}

TEST(FaultPredict, RetriesRecoverMassAndBoundThePrediction) {
  const MitigatedStats s = healthy_stats();
  MitigationPolicy policy;
  policy.timeout = 60.0;
  policy.max_retries = 3;
  policy.backoff_base = 5.0;
  const auto p = predict_mitigated(s, policy, 50, 0.99);
  EXPECT_TRUE(std::isfinite(p.value));
  // The retry mixture can never predict below the no-timeout law's value
  // truncated at the timeout, nor above the full retry ladder's end.
  EXPECT_GT(p.value, 0.0);
  EXPECT_LT(p.value, 4.0 * (policy.timeout + policy.backoff_base * 7) + 200.0);
}

TEST(FaultPredict, ThinTelemetryDegradesInsteadOfAborting) {
  MitigatedStats s = healthy_stats();
  s.attempt_count = kMinMomentSamples - 1;
  const auto p = predict_mitigated(s, MitigationPolicy{}, 50, 0.99);
  EXPECT_TRUE(p.degraded);
  EXPECT_FALSE(p.reasons.empty());
  EXPECT_TRUE(std::isfinite(p.value));
}

TEST(FaultPredict, MissingHedgeTelemetryFallsBackToAttemptLaw) {
  MitigatedStats s = healthy_stats();
  s.hedge_count = 0;  // hedging on, but no hedge-lane samples measured
  MitigationPolicy policy;
  policy.hedge_quantile = 0.95;
  s.hedge_delay = 50.0;
  const auto p = predict_mitigated(s, policy, 50, 0.99);
  EXPECT_TRUE(p.degraded);
  EXPECT_TRUE(std::isfinite(p.value));
}

TEST(FaultPredict, NonPositiveVarianceFallsBackToExponential) {
  MitigatedStats s = healthy_stats();
  s.attempt_variance = 0.0;
  const auto p = predict_mitigated(s, MitigationPolicy{}, 50, 0.99);
  EXPECT_TRUE(p.degraded);
  EXPECT_TRUE(std::isfinite(p.value));
}

TEST(FaultPredict, UselessTelemetryYieldsNanNotThrow) {
  MitigatedStats s;  // zero everything: no mean at all
  const auto p = predict_mitigated(s, MitigationPolicy{}, 50, 0.99);
  EXPECT_TRUE(p.degraded);
  EXPECT_TRUE(std::isnan(p.value));
}

// --------------------------------------------------------------------------
// Acceptance: hedged p99 drop + degraded predictor accuracy at 80% load.
// --------------------------------------------------------------------------

TEST(FaultPredictAcceptance, HedgingAtP95DropsSimulatedP99AndPredictorTracksIt) {
  fjsim::HomogeneousConfig config;
  config.num_nodes = 10;
  config.service = std::make_shared<dist::Exponential>(10.0);
  config.load = 0.8;
  config.num_requests = 20000;
  config.seed = 42;

  // Baseline: the unmitigated engine at the same load.
  const auto plain = fjsim::run_homogeneous(config);
  const double p99_plain = stats::percentile(plain.responses, 99.0);

  // Hedge every task once it has been outstanding for the service p95.
  FaultPlan plan;
  plan.mitigation.hedge_quantile = 0.95;
  const auto hedged = run_mitigated_homogeneous(config, plan);
  const double p99_hedged = stats::percentile(hedged.responses, 99.0);

  // "Drops measurably": at least 10% off the unmitigated p99.
  EXPECT_LT(p99_hedged, 0.9 * p99_plain)
      << "p99 plain " << p99_plain << " vs hedged " << p99_hedged;
  EXPECT_GT(hedged.counters.hedges_launched, 0u);
  EXPECT_GT(hedged.counters.hedges_won, 0u);

  // The degraded-mode predictor, fed only black-box mitigated telemetry,
  // must land within 25% of the simulated mitigated p99.
  MitigatedStats stats;
  stats.attempt_mean = hedged.attempt_stats.mean();
  stats.attempt_variance = hedged.attempt_stats.variance();
  stats.attempt_count = hedged.attempt_stats.count();
  stats.hedge_mean = hedged.hedge_stats.mean();
  stats.hedge_variance = hedged.hedge_stats.variance();
  stats.hedge_count = hedged.hedge_stats.count();
  stats.hedge_delay = hedged.hedge_delay;
  const auto prediction = predict_mitigated(
      stats, plan.mitigation, static_cast<int>(config.num_nodes), 0.99);
  ASSERT_TRUE(std::isfinite(prediction.value));
  const double err = std::abs(prediction.value - p99_hedged) / p99_hedged;
  EXPECT_LT(err, 0.25) << "predicted " << prediction.value << " vs simulated "
                       << p99_hedged;
}

TEST(FaultPredictAcceptance, ScenarioLayerEndToEnd) {
  // Same acceptance through the declarative path: spec -> registry ->
  // forktail-degraded predictor row in the report.
  scenario::ScenarioSpec spec;
  spec.name = "hedged-acceptance";
  spec.nodes = 10;
  spec.service.dist = "Exponential";
  spec.service.mean = 10.0;
  spec.load = 0.8;
  spec.requests = 20000;
  spec.seed = 42;
  spec.faults.mitigation.hedge_quantile = 0.95;

  const auto report =
      scenario::run_scenario(spec, {"forktail-degraded"}, {99.0});
  ASSERT_EQ(report.predictions.size(), 1u);
  EXPECT_EQ(report.predictions[0].predictor, "forktail-degraded");
  EXPECT_LT(std::abs(report.predictions[0].error_pct[0]), 25.0)
      << "predicted " << report.predictions[0].predicted_ms[0]
      << " vs measured " << report.measured_ms[0];
}

}  // namespace
}  // namespace forktail::fault
