// Slow tier of the bounds oracle: wide-fan-out perfect-sampler
// cross-checks (n = 32) and the golden warm-up bias audit.
//
// The warm-up audit is the reason the fig5/fig10 goldens can stay pinned:
// it reproduces a golden sweep cell's sampling regime (warmup_fraction
// 0.25 at smoke scale) and checks the replay p99 against exact stationary
// draws of the same system.  If this test ever fails, the goldens carry
// warm-up bias beyond CI noise and must be regenerated -- that failure is
// the regeneration trigger, deliberately loud instead of silent.
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/linear_bounds.hpp"
#include "scenario/registry.hpp"
#include "scenario/spec.hpp"
#include "stats/percentile.hpp"

namespace forktail {
namespace {

scenario::Outcome run_perfect(scenario::ScenarioSpec spec) {
  spec.sampler = scenario::Sampler::kPerfect;
  return scenario::SimulatorRegistry::global().run(spec);
}

// n = 32, all three bound tiers (exact / LST inversion / Chernoff): the
// stationary p99 from exact draws must sit inside every certified bracket.
TEST(BoundsOracleSlow, WideFanoutQuantilesInsideBrackets) {
  struct Case {
    const char* dist;
    scenario::Topology topology;
    std::size_t nodes;
    int k;
    double load;
    std::uint64_t draws;
  };
  const Case cases[] = {
      {"Exponential", scenario::Topology::kHomogeneous, 32, 0, 0.7, 6000},
      {"Erlang-2", scenario::Topology::kHomogeneous, 32, 0, 0.6, 6000},
      {"HyperExp2", scenario::Topology::kHomogeneous, 32, 0, 0.5, 6000},
      {"TruncPareto", scenario::Topology::kSubset, 64, 32, 0.7, 4000},
      {"Empirical", scenario::Topology::kSubset, 64, 32, 0.6, 4000},
  };
  for (const Case& c : cases) {
    scenario::ScenarioSpec spec;
    spec.topology = c.topology;
    spec.nodes = c.nodes;
    spec.service.dist = c.dist;
    spec.load = c.load;
    if (c.k > 0) {
      spec.k.mode = scenario::KSpec::Mode::kFixed;
      spec.k.fixed = c.k;
    }
    spec.requests = c.draws;
    spec.seed = 5;
    const scenario::Outcome outcome = run_perfect(spec);
    const baselines::Bracket b = scenario::certified_bracket(outcome, 99.0);
    ASSERT_TRUE(b.certified) << c.dist;
    ASSERT_LE(b.lower, b.upper) << c.dist;
    const double p99 = stats::percentile(outcome.responses, 99.0);
    EXPECT_GE(p99, b.lower * 0.85) << c.dist << " n=" << c.nodes;
    EXPECT_LE(p99, b.upper * 1.15) << c.dist << " n=" << c.nodes;
  }
}

// Early-join (n, k) with k < n: the k-th completion is bracketed too, and
// tightening k toward 1 must move the whole bracket down monotonically.
TEST(BoundsOracleSlow, EarlyJoinBracketsAreMonotoneInK) {
  scenario::ScenarioSpec spec;
  spec.topology = scenario::Topology::kSubset;
  spec.nodes = 64;
  spec.service.dist = "Exponential";
  spec.load = 0.7;
  spec.k.mode = scenario::KSpec::Mode::kFixed;
  spec.k.fixed = 32;
  spec.requests = 4000;
  spec.seed = 9;
  const scenario::Outcome outcome = run_perfect(spec);

  const baselines::LinearBoundsBaseline bounds;
  double prev_upper = 0.0;
  for (const int join : {8, 16, 24, 32}) {
    baselines::BaselineInput in = scenario::baseline_input(outcome);
    in.join = join;
    ASSERT_TRUE(bounds.applicable(in)) << "join " << join;
    const baselines::Bracket b = bounds.bracket(in, 99.0);
    ASSERT_TRUE(b.certified);
    EXPECT_LE(b.lower, b.upper);
    EXPECT_GE(b.upper, prev_upper) << "join " << join;
    prev_upper = b.upper;
  }
}

// Golden warm-up audit (see file comment).  Mirrors the fig5 smoke-scale
// Empirical / 10-node / 50%-load cell: warmup_fraction 0.25 with a few
// thousand requests.  The tolerance is the combined two-sample CI noise at
// these sizes (~10% on the p99); the seeds are fixed, so a pass is
// deterministic and a fail means real bias, not bad luck.
TEST(BoundsOracleSlow, GoldenWarmupRegimeAgreesWithStationaryDraws) {
  scenario::ScenarioSpec replay;
  replay.topology = scenario::Topology::kHomogeneous;
  replay.nodes = 10;
  replay.service.dist = "Empirical";
  replay.load = 0.50;
  replay.requests = 6000;
  replay.warmup_fraction = 0.25;  // the goldens' regime
  replay.seed = 1;
  const scenario::Outcome simulated =
      scenario::SimulatorRegistry::global().run(replay);
  const double replay_p99 = stats::percentile(simulated.responses, 99.0);

  scenario::ScenarioSpec exact = replay;
  exact.requests = 8000;
  const scenario::Outcome stationary = run_perfect(exact);
  const double exact_p99 = stats::percentile(stationary.responses, 99.0);

  EXPECT_NEAR(replay_p99, exact_p99, 0.10 * exact_p99)
      << "fig5/fig10 golden warm-up regime drifted beyond CI noise from "
         "the stationary law -- regenerate the goldens";
}

}  // namespace
}  // namespace forktail
