#include "sim/cluster_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace forktail::sim {
namespace {

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, BucketIndexEdgeCases) {
  // Bucket 0 catches everything that is not a positive finite double.
  EXPECT_EQ(LatencyHistogram::bucket_index(0.0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_index(-1.0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_index(
                -std::numeric_limits<double>::infinity()),
            0u);
  EXPECT_EQ(LatencyHistogram::bucket_index(
                std::numeric_limits<double>::quiet_NaN()),
            0u);
  // Below the grid floor (2^-32) is underflow -> bucket 0; denormals too.
  EXPECT_EQ(LatencyHistogram::bucket_index(std::ldexp(1.0, -33)), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_index(
                std::numeric_limits<double>::denorm_min()),
            0u);
  // At or above the grid ceiling (2^32), and +inf, land in the last bucket.
  EXPECT_EQ(LatencyHistogram::bucket_index(std::ldexp(1.0, 33)),
            LatencyHistogram::kBuckets - 1);
  EXPECT_EQ(LatencyHistogram::bucket_index(
                std::numeric_limits<double>::infinity()),
            LatencyHistogram::kBuckets - 1);
  EXPECT_EQ(LatencyHistogram::bucket_index(
                std::numeric_limits<double>::max()),
            LatencyHistogram::kBuckets - 1);
}

TEST(LatencyHistogram, BucketIndexMatchesAnalyticGrid) {
  // Every in-range value must land in the binade/sub-bucket the grid
  // definition says; spot-check across the full exponent range, including
  // the exact binade edges.
  for (int e = -32; e < 32; ++e) {
    for (std::size_t sub = 0; sub < LatencyHistogram::kSubBuckets; ++sub) {
      const double lo =
          std::ldexp(1.0 + static_cast<double>(sub) /
                               LatencyHistogram::kSubBuckets,
                     e);
      const std::size_t expected =
          1 + static_cast<std::size_t>(e + 32) * LatencyHistogram::kSubBuckets +
          sub;
      EXPECT_EQ(LatencyHistogram::bucket_index(lo), expected)
          << "exponent " << e << " sub " << sub;
      // A value strictly inside the sub-bucket maps to the same index.
      EXPECT_EQ(LatencyHistogram::bucket_index(
                    lo * (1.0 + 0.4 / LatencyHistogram::kSubBuckets)),
                expected);
    }
  }
}

TEST(LatencyHistogram, UpperEdgeBoundsItsBucket) {
  util::Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double v = std::ldexp(rng.uniform() + 1.0,
                                static_cast<int>(rng.uniform_int(60)) - 30);
    const std::size_t b = LatencyHistogram::bucket_index(v);
    EXPECT_LE(v, LatencyHistogram::bucket_upper_edge(b));
    if (b > 1 && b < LatencyHistogram::kBuckets - 1) {
      EXPECT_GT(v, LatencyHistogram::bucket_upper_edge(b - 1));
    }
  }
}

TEST(LatencyHistogram, PercentileUpperEdgeRule) {
  LatencyHistogram h;
  EXPECT_EQ(h.percentile(99.0), 0.0);  // empty
  for (int i = 0; i < 99; ++i) h.record(1.0);
  h.record(1000.0);
  // 99% of the mass sits in 1.0's bucket; its upper edge bounds the p99.
  const double p99 = h.percentile(99.0);
  EXPECT_GE(p99, 1.0);
  EXPECT_LT(p99, 1.5);
  // The max lives in 1000.0's bucket.
  const double p100 = h.percentile(100.0);
  EXPECT_GE(p100, 1000.0);
  EXPECT_LT(p100, 1100.0);
}

TEST(LatencyHistogram, PercentileIsConservative) {
  // The reported quantile never under-estimates the true sample quantile
  // (upper-edge rule): check against exact order statistics.
  util::Rng rng(7);
  LatencyHistogram h;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.exponential(3.0);
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (const double pct : {50.0, 90.0, 99.0, 99.9}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(pct / 100.0 * static_cast<double>(samples.size())));
    const double exact = samples[rank - 1];
    const double est = h.percentile(pct);
    EXPECT_GE(est, exact);
    // Grid resolution: the upper edge is within one sub-bucket (12.5%).
    EXPECT_LE(est, exact * (1.0 + 1.0 / LatencyHistogram::kSubBuckets) +
                       1e-12);
  }
}

TEST(LatencyHistogram, MergeIsExactAndOrderIndependent) {
  util::Rng rng(21);
  LatencyHistogram all, a, b;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.exponential(1.0);
    all.record(v);
    (i % 3 == 0 ? a : b).record(v);
  }
  LatencyHistogram ab = a;
  ab.merge(b);
  LatencyHistogram ba = b;
  ba.merge(a);
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    EXPECT_EQ(ab.counts()[i], all.counts()[i]);
    EXPECT_EQ(ba.counts()[i], all.counts()[i]);
  }
  EXPECT_EQ(all.total(), 5000u);
}

// ---------------------------------------------------------------------------
// ClusterStats sharding
// ---------------------------------------------------------------------------

/// Record a fixed deterministic sample stream into a registry.
void fill(ClusterStats& cs, std::size_t num_nodes, std::uint64_t seed) {
  util::Rng rng(seed);
  for (int i = 0; i < 50000; ++i) {
    const auto node = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::uint64_t>(num_nodes)));
    cs.record(node, rng.exponential(1.0 + static_cast<double>(node % 7)));
  }
}

TEST(ClusterStats, SummaryBitIdenticalAcrossShardCounts) {
  // The determinism contract: every shard count produces the same summary,
  // bit for bit -- per-node moments, pooled merge, histogram, and count.
  constexpr std::size_t kNodes = 100;
  ClusterStats reference(kNodes, 1);
  fill(reference, kNodes, 42);
  const ClusterSummary ref = reference.summary();
  ASSERT_EQ(ref.per_node.size(), kNodes);

  for (const std::size_t shards : {0UL, 2UL, 3UL, 16UL, 64UL, 1000UL}) {
    ClusterStats cs(kNodes, shards);
    fill(cs, kNodes, 42);
    const ClusterSummary s = cs.summary();
    ASSERT_EQ(s.per_node.size(), kNodes) << shards << " shards";
    EXPECT_EQ(s.samples, ref.samples);
    // Bitwise equality on the doubles -- no tolerance.
    EXPECT_EQ(s.pooled.count(), ref.pooled.count());
    EXPECT_EQ(s.pooled.mean(), ref.pooled.mean()) << shards << " shards";
    EXPECT_EQ(s.pooled.variance(), ref.pooled.variance());
    EXPECT_EQ(s.pooled.min(), ref.pooled.min());
    EXPECT_EQ(s.pooled.max(), ref.pooled.max());
    for (std::size_t n = 0; n < kNodes; ++n) {
      EXPECT_EQ(s.per_node[n].count(), ref.per_node[n].count());
      EXPECT_EQ(s.per_node[n].mean(), ref.per_node[n].mean());
      EXPECT_EQ(s.per_node[n].variance(), ref.per_node[n].variance());
    }
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
      EXPECT_EQ(s.histogram.counts()[i], ref.histogram.counts()[i]);
    }
  }
}

TEST(ClusterStats, PerNodeAccumulatorsAreExact) {
  // A node's accumulator must equal a plain sequential Welford over that
  // node's samples -- sharding must not approximate.
  constexpr std::size_t kNodes = 10;
  ClusterStats cs(kNodes, 4);
  std::vector<stats::Welford> direct(kNodes);
  util::Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const auto node = static_cast<std::size_t>(rng.uniform_int(kNodes));
    const double v = rng.exponential(2.0);
    cs.record(node, v);
    direct[node].add(v);
  }
  for (std::size_t n = 0; n < kNodes; ++n) {
    EXPECT_EQ(cs.node(n).count(), direct[n].count());
    EXPECT_EQ(cs.node(n).mean(), direct[n].mean());
    EXPECT_EQ(cs.node(n).variance(), direct[n].variance());
  }
}

TEST(ClusterStats, ShardMappingCoversAllNodesContiguously) {
  for (const std::size_t nodes : {1UL, 63UL, 64UL, 65UL, 1000UL, 1024UL}) {
    for (const std::size_t shards : {0UL, 1UL, 7UL, 16UL}) {
      ClusterStats cs(nodes, shards);
      EXPECT_GE(cs.num_shards(), 1u);
      std::size_t prev = cs.shard_of(0);
      EXPECT_EQ(prev, 0u);
      for (std::size_t n = 1; n < nodes; ++n) {
        const std::size_t s = cs.shard_of(n);
        EXPECT_TRUE(s == prev || s == prev + 1);  // contiguous ranges
        prev = s;
      }
      EXPECT_EQ(prev, cs.num_shards() - 1);
    }
  }
}

TEST(ClusterStats, RecordMomentsSkipsHistogramOnly) {
  ClusterStats cs(4, 2);
  cs.record_moments(1, 2.5);
  cs.record_moments(1, 3.5);
  cs.record(2, 1.0);
  const ClusterSummary s = cs.summary();
  EXPECT_EQ(s.per_node[1].count(), 2u);
  EXPECT_EQ(s.per_node[2].count(), 1u);
  EXPECT_EQ(s.pooled.count(), 3u);
  EXPECT_EQ(s.samples, 3u);
  // Only the record() sample reached the histogram.
  EXPECT_EQ(s.histogram.total(), 1u);
}

TEST(ClusterStats, ResetClearsEverything) {
  ClusterStats cs(8);
  fill(cs, 8, 3);
  cs.reset();
  const ClusterSummary s = cs.summary();
  EXPECT_EQ(s.samples, 0u);
  EXPECT_EQ(s.pooled.count(), 0u);
  EXPECT_EQ(s.histogram.total(), 0u);
  for (const auto& w : s.per_node) EXPECT_EQ(w.count(), 0u);
}

}  // namespace
}  // namespace forktail::sim
