// forktail.wire.v1 contract tests: known-answer round trips, the full
// malformed-datagram rejection matrix (every WireError reason reachable and
// hit), and byte-level fuzz asserting decode() is total -- no crash, no
// out-of-bounds read, and never an accepted-but-invalid sample.
#include "serve/wire.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace forktail::serve {
namespace {

WireBatch make_batch(std::uint16_t count = 4) {
  WireBatch batch;
  batch.service = 7;
  batch.node = 42;
  batch.timestamp_ns = 123456789012345ULL;
  batch.count = count;
  for (std::uint16_t i = 0; i < count; ++i) {
    batch.samples[i] = 1.5 * (i + 1);
  }
  return batch;
}

TEST(ServeWire, RoundTripPreservesEveryField) {
  const WireBatch batch = make_batch(5);
  const std::vector<std::uint8_t> bytes = encode(batch);
  ASSERT_EQ(bytes.size(), kWireHeaderBytes + 8 * 5 + kWireChecksumBytes);

  WireBatch out;
  ASSERT_EQ(decode(bytes.data(), bytes.size(), out), WireError::kNone);
  EXPECT_EQ(out.service, batch.service);
  EXPECT_EQ(out.node, batch.node);
  EXPECT_EQ(out.timestamp_ns, batch.timestamp_ns);
  ASSERT_EQ(out.count, batch.count);
  for (std::uint16_t i = 0; i < batch.count; ++i) {
    EXPECT_EQ(out.samples[i], batch.samples[i]) << "sample " << i;
  }
}

TEST(ServeWire, KnownAnswerHeaderLayout) {
  // Byte-level KAT pinning the layout: future refactors must not silently
  // reorder fields or change endianness.
  WireBatch batch;
  batch.service = 0x0102;
  batch.node = 0x03040506;
  batch.timestamp_ns = 0x1112131415161718ULL;
  batch.count = 1;
  batch.samples[0] = 1.0;  // 0x3FF0000000000000
  const auto bytes = encode(batch);
  ASSERT_EQ(bytes.size(), 36u);
  // magic 0x464B5431 little-endian
  EXPECT_EQ(bytes[0], 0x31);
  EXPECT_EQ(bytes[1], 0x54);
  EXPECT_EQ(bytes[2], 0x4B);
  EXPECT_EQ(bytes[3], 0x46);
  // version 1 LE
  EXPECT_EQ(bytes[4], 0x01);
  EXPECT_EQ(bytes[5], 0x00);
  // service LE
  EXPECT_EQ(bytes[6], 0x02);
  EXPECT_EQ(bytes[7], 0x01);
  // node LE
  EXPECT_EQ(bytes[8], 0x06);
  EXPECT_EQ(bytes[11], 0x03);
  // timestamp LE
  EXPECT_EQ(bytes[12], 0x18);
  EXPECT_EQ(bytes[19], 0x11);
  // count, reserved
  EXPECT_EQ(bytes[20], 0x01);
  EXPECT_EQ(bytes[21], 0x00);
  EXPECT_EQ(bytes[22], 0x00);
  EXPECT_EQ(bytes[23], 0x00);
  // f64 1.0 LE: 7 zero bytes then 0x3F F0
  EXPECT_EQ(bytes[24], 0x00);
  EXPECT_EQ(bytes[30], 0xF0);
  EXPECT_EQ(bytes[31], 0x3F);
  // checksum covers [0, 32)
  const std::uint32_t sum = wire_checksum(bytes.data(), 32);
  EXPECT_EQ(bytes[32], static_cast<std::uint8_t>(sum & 0xFF));
  EXPECT_EQ(bytes[35], static_cast<std::uint8_t>((sum >> 24) & 0xFF));
}

TEST(ServeWire, ChecksumIsFnv1a32) {
  // FNV-1a 32 KAT: "" -> 0x811C9DC5, "a" -> 0xE40C292C (published vectors).
  EXPECT_EQ(wire_checksum(nullptr, 0), 0x811C9DC5u);
  const std::uint8_t a = 'a';
  EXPECT_EQ(wire_checksum(&a, 1), 0xE40C292Cu);
}

TEST(ServeWire, EncodeRejectsInvalidBatches) {
  WireBatch batch = make_batch(1);
  batch.count = 0;
  EXPECT_TRUE(encode(batch).empty());
  batch.count = static_cast<std::uint16_t>(kMaxSamplesPerDatagram + 1);
  EXPECT_TRUE(encode(batch).empty());
  batch = make_batch(2);
  batch.samples[1] = -1.0;
  EXPECT_TRUE(encode(batch).empty());
  batch.samples[1] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(encode(batch).empty());
  // Buffer too small.
  batch = make_batch(2);
  std::uint8_t small[8];
  EXPECT_EQ(encode(batch, small, sizeof(small)), 0u);
}

// ---------------------------------------------------------------- matrix

class ServeWireRejection : public ::testing::Test {
 protected:
  std::vector<std::uint8_t> bytes_ = encode(make_batch(3));

  WireError decoded() {
    WireBatch out;
    return decode(bytes_.data(), bytes_.size(), out);
  }

  /// Rewrite the trailing checksum so a deliberate field corruption tests
  /// THAT field's check rather than the checksum.
  void refresh_checksum() {
    const std::size_t body = bytes_.size() - kWireChecksumBytes;
    const std::uint32_t sum = wire_checksum(bytes_.data(), body);
    bytes_[body + 0] = static_cast<std::uint8_t>(sum & 0xFF);
    bytes_[body + 1] = static_cast<std::uint8_t>((sum >> 8) & 0xFF);
    bytes_[body + 2] = static_cast<std::uint8_t>((sum >> 16) & 0xFF);
    bytes_[body + 3] = static_cast<std::uint8_t>((sum >> 24) & 0xFF);
  }
};

TEST_F(ServeWireRejection, Truncated) {
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{23},
                          bytes_.size() - 1}) {
    WireBatch out;
    EXPECT_EQ(decode(bytes_.data(), len, out), WireError::kTruncated)
        << "len " << len;
  }
  // Trailing junk is a length mismatch, not silently ignored.
  bytes_.push_back(0);
  EXPECT_EQ(decoded(), WireError::kTruncated);
}

TEST_F(ServeWireRejection, BadMagic) {
  bytes_[0] ^= 0xFF;
  refresh_checksum();
  EXPECT_EQ(decoded(), WireError::kBadMagic);
}

TEST_F(ServeWireRejection, BadVersion) {
  bytes_[4] = 2;
  refresh_checksum();
  EXPECT_EQ(decoded(), WireError::kBadVersion);
}

TEST_F(ServeWireRejection, NonzeroReservedIsBadVersion) {
  bytes_[22] = 1;
  refresh_checksum();
  EXPECT_EQ(decoded(), WireError::kBadVersion);
}

TEST_F(ServeWireRejection, BadCountZero) {
  // count = 0 with a length that matches the header+checksum framing.
  bytes_[20] = 0;
  bytes_[21] = 0;
  bytes_.resize(kWireHeaderBytes);
  bytes_.resize(kWireHeaderBytes + kWireChecksumBytes);
  refresh_checksum();
  EXPECT_EQ(decoded(), WireError::kBadCount);
}

TEST_F(ServeWireRejection, BadCountOverCap) {
  const auto over = static_cast<std::uint16_t>(kMaxSamplesPerDatagram + 1);
  bytes_[20] = static_cast<std::uint8_t>(over & 0xFF);
  bytes_[21] = static_cast<std::uint8_t>(over >> 8);
  refresh_checksum();
  EXPECT_EQ(decoded(), WireError::kBadCount);
}

TEST_F(ServeWireRejection, ChecksumMismatch) {
  bytes_.back() ^= 0x01;
  EXPECT_EQ(decoded(), WireError::kChecksum);
}

TEST_F(ServeWireRejection, FlippedPayloadBitFailsChecksum) {
  bytes_[kWireHeaderBytes + 3] ^= 0x10;  // bit rot inside a sample
  EXPECT_EQ(decoded(), WireError::kChecksum);
}

TEST_F(ServeWireRejection, BadSampleNaN) {
  double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(bytes_.data() + kWireHeaderBytes + 8, &nan, 8);
  refresh_checksum();
  EXPECT_EQ(decoded(), WireError::kBadSample);
}

TEST_F(ServeWireRejection, BadSampleNegative) {
  double neg = -0.5;
  std::memcpy(bytes_.data() + kWireHeaderBytes, &neg, 8);
  refresh_checksum();
  EXPECT_EQ(decoded(), WireError::kBadSample);
}

TEST_F(ServeWireRejection, BadSampleInfinity) {
  double inf = std::numeric_limits<double>::infinity();
  std::memcpy(bytes_.data() + kWireHeaderBytes + 16, &inf, 8);
  refresh_checksum();
  EXPECT_EQ(decoded(), WireError::kBadSample);
}

TEST(ServeWire, EveryErrorHasAStableName) {
  EXPECT_STREQ(wire_error_name(WireError::kNone), "none");
  EXPECT_STREQ(wire_error_name(WireError::kTruncated), "truncated");
  EXPECT_STREQ(wire_error_name(WireError::kBadMagic), "bad_magic");
  EXPECT_STREQ(wire_error_name(WireError::kBadVersion), "bad_version");
  EXPECT_STREQ(wire_error_name(WireError::kBadCount), "bad_count");
  EXPECT_STREQ(wire_error_name(WireError::kChecksum), "checksum");
  EXPECT_STREQ(wire_error_name(WireError::kBadSample), "bad_sample");
}

// ------------------------------------------------------------------ fuzz

TEST(ServeWireFuzz, RandomBytesNeverDecodeInvalid) {
  // decode() is total: arbitrary bytes either fail with a typed reason or
  // produce a batch every invariant of which holds.  (Random bytes passing
  // the checksum is a ~2^-32 event per trial, so acceptance here is
  // effectively always a rejection-path test; the invariant check still
  // guards the accept path.)
  util::Rng rng(20260808);
  for (int round = 0; round < 5000; ++round) {
    const std::size_t len =
        static_cast<std::size_t>(rng.uniform() * (kMaxDatagramBytes + 64));
    std::vector<std::uint8_t> soup(len);
    for (auto& b : soup) {
      b = static_cast<std::uint8_t>(rng.uniform() * 256.0);
    }
    WireBatch out;
    const WireError err = decode(soup.data(), soup.size(), out);
    if (err == WireError::kNone) {
      ASSERT_GE(out.count, 1u);
      ASSERT_LE(out.count, kMaxSamplesPerDatagram);
      for (std::uint16_t i = 0; i < out.count; ++i) {
        ASSERT_TRUE(std::isfinite(out.samples[i]));
        ASSERT_GE(out.samples[i], 0.0);
      }
    }
  }
}

TEST(ServeWireFuzz, MutatedValidDatagramsNeverDecodeInvalid) {
  // Start from a valid datagram and apply small mutations -- the adversarial
  // region where most bytes are plausible.  Every accepted decode must still
  // satisfy the batch invariants.
  util::Rng rng(42);
  const WireBatch base = make_batch(8);
  const std::vector<std::uint8_t> pristine = encode(base);
  for (int round = 0; round < 5000; ++round) {
    std::vector<std::uint8_t> bytes = pristine;
    const int mutations = 1 + static_cast<int>(rng.uniform() * 4);
    for (int m = 0; m < mutations; ++m) {
      const double pick = rng.uniform();
      if (pick < 0.6 && !bytes.empty()) {
        // Flip bits in place.
        const std::size_t at =
            static_cast<std::size_t>(rng.uniform() * bytes.size());
        bytes[at] ^= static_cast<std::uint8_t>(1 + rng.uniform() * 255);
      } else if (pick < 0.8 && bytes.size() > 1) {
        // Truncate.
        bytes.resize(static_cast<std::size_t>(rng.uniform() * bytes.size()));
      } else {
        // Extend with junk.
        const std::size_t extra = 1 + static_cast<std::size_t>(rng.uniform() * 16);
        for (std::size_t i = 0; i < extra; ++i) {
          bytes.push_back(static_cast<std::uint8_t>(rng.uniform() * 256.0));
        }
      }
    }
    WireBatch out;
    const WireError err = decode(bytes.data(), bytes.size(), out);
    if (err == WireError::kNone) {
      ASSERT_GE(out.count, 1u);
      ASSERT_LE(out.count, kMaxSamplesPerDatagram);
      for (std::uint16_t i = 0; i < out.count; ++i) {
        ASSERT_TRUE(std::isfinite(out.samples[i]));
        ASSERT_GE(out.samples[i], 0.0);
      }
    }
  }
}

TEST(ServeWireFuzz, EncodeDecodeRoundTripRandomBatches) {
  util::Rng rng(99);
  for (int round = 0; round < 1000; ++round) {
    WireBatch batch;
    batch.service = static_cast<std::uint16_t>(rng.uniform() * 65536.0);
    batch.node = static_cast<std::uint32_t>(rng.uniform() * 4096.0);
    batch.timestamp_ns =
        static_cast<std::uint64_t>(rng.uniform() * 9e18);
    batch.count = static_cast<std::uint16_t>(
        1 + rng.uniform() * (kMaxSamplesPerDatagram - 1));
    for (std::uint16_t i = 0; i < batch.count; ++i) {
      batch.samples[i] = rng.uniform() * 1e6;
    }
    const auto bytes = encode(batch);
    ASSERT_FALSE(bytes.empty());
    WireBatch out;
    ASSERT_EQ(decode(bytes.data(), bytes.size(), out), WireError::kNone);
    EXPECT_EQ(out.service, batch.service);
    EXPECT_EQ(out.node, batch.node);
    EXPECT_EQ(out.timestamp_ns, batch.timestamp_ns);
    ASSERT_EQ(out.count, batch.count);
    for (std::uint16_t i = 0; i < batch.count; ++i) {
      ASSERT_EQ(out.samples[i], batch.samples[i]);
    }
  }
}

}  // namespace
}  // namespace forktail::serve
