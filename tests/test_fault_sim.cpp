// Mitigated homogeneous simulator: determinism, bit-identity of the
// mitigation-free paths, mitigation effectiveness, and fault counters.
#include "fault/sim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "dist/basic.hpp"
#include "fjsim/subset.hpp"
#include "scenario/run.hpp"
#include "stats/percentile.hpp"

namespace forktail::fault {
namespace {

fjsim::HomogeneousConfig base_config() {
  fjsim::HomogeneousConfig c;
  c.num_nodes = 8;
  c.service = std::make_shared<dist::Exponential>(10.0);
  c.load = 0.6;
  c.num_requests = 4000;
  c.seed = 42;
  return c;
}

FaultPlan injection_plan() {
  FaultPlan plan;
  plan.inject.slowdown_rate = 0.002;
  plan.inject.slowdown_mean_duration = 100.0;
  plan.inject.slowdown_factor = 3.0;
  plan.inject.blip_rate = 0.002;
  plan.inject.blip_duration = 20.0;
  return plan;
}

TEST(FaultSim, MitigationFreePathIsBitIdenticalToPlainEngine) {
  // A plan whose only active knob is early_k = N (wait for every task,
  // stated explicitly) must reproduce the fault-free engine exactly: same
  // arrival stream, same service draws, same responses to the last bit.
  const auto config = base_config();
  FaultPlan plan;
  plan.mitigation.early_k = static_cast<int>(config.num_nodes);

  const auto plain = fjsim::run_homogeneous(config);
  const auto mitigated = run_mitigated_homogeneous(config, plan);

  ASSERT_EQ(mitigated.responses.size(), plain.responses.size());
  for (std::size_t i = 0; i < plain.responses.size(); ++i) {
    ASSERT_EQ(mitigated.responses[i], plain.responses[i]) << "request " << i;
  }
  EXPECT_EQ(mitigated.task_stats.count(), plain.task_stats.count());
  EXPECT_DOUBLE_EQ(mitigated.task_stats.mean(), plain.task_stats.mean());
  EXPECT_DOUBLE_EQ(mitigated.lambda, plain.lambda);
  EXPECT_EQ(mitigated.counters.crashes, 0u);
  EXPECT_EQ(mitigated.counters.timeouts, 0u);
  EXPECT_EQ(mitigated.counters.hedges_launched, 0u);
  EXPECT_EQ(mitigated.counters.dropped_requests, 0u);
}

TEST(FaultSim, SameSeedSamePlanIsBitReproducible) {
  const auto config = base_config();
  FaultPlan plan = injection_plan();
  plan.inject.crash_rate = 0.0005;
  plan.inject.crash_mean_duration = 40.0;
  plan.mitigation.timeout = 120.0;
  plan.mitigation.max_retries = 2;
  plan.mitigation.backoff_base = 5.0;
  plan.mitigation.hedge_quantile = 0.9;

  const auto a = run_mitigated_homogeneous(config, plan);
  const auto b = run_mitigated_homogeneous(config, plan);
  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    ASSERT_EQ(a.responses[i], b.responses[i]);
  }
  EXPECT_EQ(a.counters.crashes, b.counters.crashes);
  EXPECT_EQ(a.counters.timeouts, b.counters.timeouts);
  EXPECT_EQ(a.counters.retries, b.counters.retries);
  EXPECT_EQ(a.counters.hedges_launched, b.counters.hedges_launched);
  EXPECT_EQ(a.counters.hedges_won, b.counters.hedges_won);
  EXPECT_EQ(a.counters.dropped_requests, b.counters.dropped_requests);
}

TEST(FaultSim, InjectionCountersFireAndTailInflates) {
  const auto config = base_config();
  const auto plain = fjsim::run_homogeneous(config);
  const auto faulty = run_mitigated_homogeneous(config, injection_plan());

  EXPECT_GT(faulty.counters.slowdowns, 0u);
  EXPECT_GT(faulty.counters.blips, 0u);
  EXPECT_EQ(faulty.counters.crashes, 0u);

  const double p99_plain = stats::percentile(plain.responses, 99.0);
  const double p99_faulty = stats::percentile(faulty.responses, 99.0);
  EXPECT_GT(p99_faulty, p99_plain);
}

TEST(FaultSim, UnmitigatedCrashesDropRequests) {
  auto config = base_config();
  config.num_requests = 2000;
  FaultPlan plan;
  plan.inject.crash_rate = 0.002;
  plan.inject.crash_mean_duration = 30.0;
  // Make the plan non-inert on the mitigation side without recovering
  // lost tasks: early return still needs every task.
  plan.mitigation.early_k = static_cast<int>(config.num_nodes);
  const auto result = run_mitigated_homogeneous(config, plan);
  EXPECT_GT(result.counters.crashes, 0u);
  EXPECT_GT(result.counters.dropped_requests, 0u);
  EXPECT_EQ(result.responses.size() + result.counters.dropped_requests,
            config.num_requests);
}

TEST(FaultSim, TimeoutRetriesRecoverCrashedTasks) {
  auto config = base_config();
  config.num_requests = 2000;
  FaultPlan plan;
  plan.inject.crash_rate = 0.002;
  plan.inject.crash_mean_duration = 30.0;
  plan.mitigation.timeout = 100.0;
  plan.mitigation.max_retries = 3;
  plan.mitigation.backoff_base = 1.0;
  const auto result = run_mitigated_homogeneous(config, plan);
  EXPECT_GT(result.counters.timeouts, 0u);
  EXPECT_GT(result.counters.retries, 0u);

  // The same injection with no mitigation drops far more requests.
  FaultPlan bare;
  bare.inject = plan.inject;
  bare.mitigation.early_k = static_cast<int>(config.num_nodes);
  const auto unmitigated = run_mitigated_homogeneous(config, bare);
  EXPECT_LT(result.counters.dropped_requests,
            unmitigated.counters.dropped_requests);
}

TEST(FaultSim, EarlyReturnNeverSlowerThanFullBarrier) {
  const auto config = base_config();
  FaultPlan full;
  full.mitigation.early_k = static_cast<int>(config.num_nodes);
  FaultPlan partial;
  partial.mitigation.early_k = static_cast<int>(config.num_nodes) - 2;

  const auto all = run_mitigated_homogeneous(config, full);
  const auto some = run_mitigated_homogeneous(config, partial);
  ASSERT_EQ(all.responses.size(), some.responses.size());
  for (std::size_t i = 0; i < all.responses.size(); ++i) {
    ASSERT_LE(some.responses[i], all.responses[i]);
  }
  EXPECT_LT(stats::percentile(some.responses, 99.0),
            stats::percentile(all.responses, 99.0));
}

TEST(FaultSim, RejectsReplicatedNodes) {
  auto config = base_config();
  config.replicas = 2;
  config.policy = fjsim::Policy::kRoundRobin;
  EXPECT_THROW(run_mitigated_homogeneous(config, injection_plan()),
               fjsim::ConfigError);
}

TEST(FaultSim, RejectsEarlyKAboveNodeCount) {
  const auto config = base_config();
  FaultPlan plan;
  plan.mitigation.early_k = static_cast<int>(config.num_nodes) + 1;
  EXPECT_THROW(run_mitigated_homogeneous(config, plan), fjsim::ConfigError);
}

TEST(FaultSubset, EarlyKAtFullFanoutIsBitIdenticalToZero) {
  // early_k == k waits for every task, so the aggregation must reproduce
  // the pre-knob engine exactly (the goldens' bit-identity guarantee).
  fjsim::SubsetConfig c;
  c.num_nodes = 50;
  c.service = std::make_shared<dist::Exponential>(5.0);
  c.load = 0.5;
  c.k_mode = fjsim::KMode::kFixed;
  c.k_fixed = 10;
  c.num_requests = 3000;
  c.seed = 7;

  const auto baseline = fjsim::run_subset(c);
  c.early_k = c.k_fixed;
  const auto early = fjsim::run_subset(c);
  ASSERT_EQ(early.responses.size(), baseline.responses.size());
  for (std::size_t i = 0; i < baseline.responses.size(); ++i) {
    ASSERT_EQ(early.responses[i], baseline.responses[i]) << "request " << i;
  }
}

TEST(FaultSubset, EarlyKTrimsTheTail) {
  fjsim::SubsetConfig c;
  c.num_nodes = 50;
  c.service = std::make_shared<dist::Exponential>(5.0);
  c.load = 0.5;
  c.k_mode = fjsim::KMode::kFixed;
  c.k_fixed = 10;
  c.num_requests = 3000;
  c.seed = 7;
  const auto all = fjsim::run_subset(c);
  c.early_k = 8;
  const auto some = fjsim::run_subset(c);
  EXPECT_LT(stats::percentile(some.responses, 99.0),
            stats::percentile(all.responses, 99.0));
}

TEST(FaultSubset, EarlyKValidation) {
  fjsim::SubsetConfig c;
  c.num_nodes = 50;
  c.service = std::make_shared<dist::Exponential>(5.0);
  c.k_mode = fjsim::KMode::kFixed;
  c.k_fixed = 10;
  c.early_k = 11;
  EXPECT_THROW(fjsim::validate(c), fjsim::ConfigError);
  c.early_k = -1;
  EXPECT_THROW(fjsim::validate(c), fjsim::ConfigError);
}

TEST(FaultScenario, RegistryRoutesFaultyHomogeneousSpecs) {
  scenario::ScenarioSpec spec;
  spec.name = "faulty-routing";
  spec.nodes = 6;
  spec.service.dist = "Exponential";
  spec.service.mean = 10.0;
  spec.load = 0.5;
  spec.requests = 1500;
  spec.seed = 11;
  spec.faults.inject.blip_rate = 0.01;
  spec.faults.inject.blip_duration = 15.0;

  const auto outcome = scenario::SimulatorRegistry::global().run(spec);
  EXPECT_TRUE(outcome.faulty);
  EXPECT_GT(outcome.fault_counters.blips, 0u);
  EXPECT_GT(outcome.attempt_count, 0u);

  // The same spec with an inert plan routes through the plain engine.
  scenario::ScenarioSpec plain = spec;
  plain.faults = FaultPlan{};
  const auto clean = scenario::SimulatorRegistry::global().run(plain);
  EXPECT_FALSE(clean.faulty);
  EXPECT_EQ(clean.fault_counters.blips, 0u);
}

TEST(FaultScenario, ReportEmitsFaultSectionOnlyWhenFaulty) {
  scenario::ScenarioSpec spec;
  spec.nodes = 4;
  spec.service.mean = 10.0;
  spec.load = 0.5;
  spec.requests = 800;
  const auto clean = scenario::run_scenario(spec, {}, {99.0});
  EXPECT_FALSE(scenario::to_json(clean).contains("fault"));

  spec.faults.inject.blip_rate = 0.01;
  spec.faults.inject.blip_duration = 15.0;
  const auto faulty = scenario::run_scenario(spec, {}, {99.0});
  const auto doc = scenario::to_json(faulty);
  ASSERT_TRUE(doc.contains("fault"));
  EXPECT_GT(doc.at("fault").at("injected_blips").as_number(), 0.0);
  EXPECT_TRUE(doc.at("fault").contains("degraded"));
}

TEST(FaultSim, DistQuantileInvertsCdf) {
  const dist::Exponential d(10.0);
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    const double x = dist_quantile(d, q);
    EXPECT_NEAR(d.cdf(x), q, 1e-9);
  }
  EXPECT_DOUBLE_EQ(dist_quantile(d, 0.0), 0.0);
}

}  // namespace
}  // namespace forktail::fault
