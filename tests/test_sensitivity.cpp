#include "core/sensitivity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/welford.hpp"
#include "util/rng.hpp"

namespace forktail::core {
namespace {

TEST(GeCentralMoment, ExponentialClosedForms) {
  // GE with alpha = 1 is Exp(beta): mu2 = b^2, mu3 = 2 b^3, mu4 = 9 b^4.
  const GenExp ge(1.0, 3.0);
  EXPECT_NEAR(ge_central_moment(ge, 2), 9.0, 1e-6);
  EXPECT_NEAR(ge_central_moment(ge, 3), 2.0 * 27.0, 1e-5);
  EXPECT_NEAR(ge_central_moment(ge, 4), 9.0 * 81.0, 1e-3);
}

TEST(GeCentralMoment, MatchesAnalyticVariance) {
  for (double alpha : {0.3, 1.0, 2.5, 8.0}) {
    const GenExp ge(alpha, 2.0);
    EXPECT_NEAR(ge_central_moment(ge, 2), ge.variance(),
                1e-6 * ge.variance())
        << "alpha=" << alpha;
  }
}

TEST(GeCentralMoment, MatchesMonteCarlo) {
  const GenExp ge = GenExp::fit_moments(10.0, 250.0);
  util::Rng rng(5);
  const double mean = ge.mean();
  double m3 = 0.0;
  double m4 = 0.0;
  const int n = 2000000;
  for (int i = 0; i < n; ++i) {
    const double d = ge.sample(rng) - mean;
    m3 += d * d * d;
    m4 += d * d * d * d;
  }
  m3 /= n;
  m4 /= n;
  EXPECT_NEAR(ge_central_moment(ge, 3), m3, 0.05 * std::fabs(m3));
  EXPECT_NEAR(ge_central_moment(ge, 4), m4, 0.10 * m4);
}

TEST(GeCentralMoment, RejectsBadOrder) {
  const GenExp ge(1.0, 1.0);
  EXPECT_THROW(ge_central_moment(ge, 1), std::out_of_range);
  EXPECT_THROW(ge_central_moment(ge, 5), std::out_of_range);
}

TEST(QuantileSensitivity, DerivativeSigns) {
  // The predicted tail always grows in the measured variance.  Its
  // derivative in the mean AT FIXED VARIANCE can be negative at deep
  // percentiles: raising the mean lowers the CV, lightening the fitted
  // tail faster than the scale grows -- a real (and useful) property of
  // the two-moment fit.  The positive-growth direction is the fixed-CV
  // ray, checked via Euler's relation in ScaleInvariance below.
  const QuantileSensitivity s =
      quantile_sensitivity({10.0, 150.0}, 100.0, 99.0);
  EXPECT_GT(s.value, 0.0);
  EXPECT_GT(s.d_variance, 0.0);
  // At the median of a single task the mean derivative IS positive.
  const QuantileSensitivity median =
      quantile_sensitivity({10.0, 150.0}, 1.0, 50.0);
  EXPECT_GT(median.d_mean, 0.0);
}

TEST(QuantileSensitivity, ScaleInvariance) {
  // x_p is homogeneous of degree 1 in (mean, sqrt(var)): Euler's relation
  // gives mean * dx/dmean + 2 var * dx/dvar = x_p.
  const TaskStats stats{7.0, 120.0};
  const QuantileSensitivity s = quantile_sensitivity(stats, 64.0, 99.0);
  EXPECT_NEAR(stats.mean * s.d_mean + 2.0 * stats.variance * s.d_variance,
              s.value, 1e-3 * s.value);
}

TEST(PredictionUncertainty, ShrinksAsSqrtN) {
  const TaskStats stats{10.0, 100.0};
  const auto u1k = prediction_uncertainty(stats, 100.0, 99.0, 1000);
  const auto u4k = prediction_uncertainty(stats, 100.0, 99.0, 4000);
  EXPECT_NEAR(u4k.stderr_rel, 0.5 * u1k.stderr_rel, 0.02 * u1k.stderr_rel);
}

TEST(PredictionUncertainty, PaperThousandSamplesClaim) {
  // Section 3: "1000 task samples ... allow a reasonably accurate
  // estimation".  For an exponential-like service the delta-method
  // relative standard error at n = 1000 must be in the single digits.
  const TaskStats stats{42.0, 42.0 * 42.0};
  const auto u = prediction_uncertainty(stats, 1000.0, 99.0, 1000);
  EXPECT_LT(u.stderr_rel, 0.10);
  EXPECT_GT(u.stderr_rel, 0.005);  // and not trivially zero
}

TEST(PredictionUncertainty, HeavierTailsNeedMoreSamples) {
  const TaskStats light{10.0, 50.0};   // CV ~ 0.7
  const TaskStats heavy{10.0, 400.0};  // CV = 2
  const auto ul = prediction_uncertainty(light, 100.0, 99.0, 1000);
  const auto uh = prediction_uncertainty(heavy, 100.0, 99.0, 1000);
  EXPECT_GT(uh.stderr_rel, ul.stderr_rel);
}

TEST(PredictionUncertainty, DeltaMethodMatchesResampling) {
  // Empirical check of the delta method: draw many n-sample moment
  // estimates from the fitted GE, re-predict, and compare the spread.
  const TaskStats stats{10.0, 100.0};
  const double k = 100.0;
  const std::uint64_t n = 2000;
  const auto u = prediction_uncertainty(stats, k, 99.0, n);
  const GenExp ge = GenExp::fit_moments(stats.mean, stats.variance);
  util::Rng rng(6);
  stats::Welford spread;
  for (int rep = 0; rep < 300; ++rep) {
    stats::Welford w;
    for (std::uint64_t i = 0; i < n; ++i) w.add(ge.sample(rng));
    spread.add(homogeneous_quantile({w.mean(), w.variance()}, k, 99.0));
  }
  EXPECT_NEAR(std::sqrt(spread.variance()), u.stderr_abs, 0.2 * u.stderr_abs);
}

TEST(SamplesForPrecision, InverseOfUncertainty) {
  const TaskStats stats{10.0, 150.0};
  const std::uint64_t n = samples_for_precision(stats, 100.0, 99.0, 0.05);
  const auto u = prediction_uncertainty(stats, 100.0, 99.0, n);
  EXPECT_LE(u.stderr_rel, 0.0505);
  // One fewer order of magnitude of samples must not suffice.
  const auto u10 = prediction_uncertainty(stats, 100.0, 99.0,
                                          std::max<std::uint64_t>(2, n / 10));
  EXPECT_GT(u10.stderr_rel, 0.05);
}

TEST(SamplesForPrecision, Validation) {
  EXPECT_THROW(samples_for_precision({1.0, 1.0}, 10.0, 99.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(prediction_uncertainty({1.0, 1.0}, 10.0, 99.0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace forktail::core
