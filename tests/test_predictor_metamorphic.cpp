// Metamorphic tests for the ForkTail predictor (core/predictor.hpp):
// instead of pinning outputs, these assert relations that must hold
// between predictions on transformed inputs -- unit-scale equivariance,
// monotonicity in the fork set, and the collapse of the inhomogeneous
// model (Eq. 4) onto the homogeneous closed form (Eq. 6/13) when every
// node is identical.  Randomized over a fixed master seed.
#include "core/predictor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace forktail::core {
namespace {

TaskStats random_stats(util::Rng& rng) {
  const double mean = std::exp(rng.uniform(-2.0, 4.0));
  const double cv = std::exp(rng.uniform(-1.5, 1.2));
  return {mean, (cv * mean) * (cv * mean)};
}

std::vector<TaskStats> random_nodes(util::Rng& rng, std::size_t n) {
  std::vector<TaskStats> nodes;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) nodes.push_back(random_stats(rng));
  return nodes;
}

TEST(PredictorMetamorphic, HomogeneousScaleEquivariance) {
  // Latency is unit-agnostic: measuring in milliseconds instead of seconds
  // (mean * c, variance * c^2) must scale every percentile by exactly c.
  util::Rng rng(806);
  for (int trial = 0; trial < 12; ++trial) {
    const TaskStats s = random_stats(rng);
    const double c = std::exp(rng.uniform(-4.0, 4.0));
    const double k = 1.0 + rng.uniform(0.0, 300.0);
    const double p = rng.uniform(50.0, 99.9);
    const double base = homogeneous_quantile(s, k, p);
    const double scaled =
        homogeneous_quantile({c * s.mean, c * c * s.variance}, k, p);
    EXPECT_NEAR(scaled, c * base, 1e-7 * c * base)
        << "mean=" << s.mean << " c=" << c << " k=" << k << " p=" << p;
  }
}

TEST(PredictorMetamorphic, InhomogeneousScaleEquivariance) {
  util::Rng rng(807);
  for (int trial = 0; trial < 8; ++trial) {
    const auto nodes = random_nodes(rng, 2 + rng.uniform_int(6));
    const double c = std::exp(rng.uniform(-3.0, 3.0));
    std::vector<TaskStats> scaled;
    for (const auto& n : nodes) {
      scaled.push_back({c * n.mean, c * c * n.variance});
    }
    const double p = rng.uniform(90.0, 99.9);
    const double base = inhomogeneous_quantile(nodes, p);
    EXPECT_NEAR(inhomogeneous_quantile(scaled, p), c * base, 1e-6 * c * base);
  }
}

TEST(PredictorMetamorphic, AddingNodeNeverLowersQuantile) {
  // The request waits for ALL forked tasks, so widening the fork set can
  // only push F_X^{-1}(p) up (the max over a superset dominates).
  util::Rng rng(808);
  for (int trial = 0; trial < 12; ++trial) {
    auto nodes = random_nodes(rng, 2 + rng.uniform_int(5));
    const double p = rng.uniform(90.0, 99.9);
    const double before = inhomogeneous_quantile(nodes, p);
    nodes.push_back(random_stats(rng));
    const double after = inhomogeneous_quantile(nodes, p);
    EXPECT_GE(after, before * (1.0 - 1e-9))
        << "trial " << trial << " p=" << p;
  }
}

TEST(PredictorMetamorphic, IdenticalNodesCollapseToHomogeneousForm) {
  // With n identical nodes, Eq. 4's CDF product is F(x)^n -- exactly the
  // homogeneous Eq. 6 -- so the numeric inversion must land on the
  // closed-form quantile.
  util::Rng rng(809);
  for (int trial = 0; trial < 10; ++trial) {
    const TaskStats s = random_stats(rng);
    const std::size_t n = 2 + rng.uniform_int(30);
    const std::vector<TaskStats> nodes(n, s);
    const double p = rng.uniform(80.0, 99.9);
    const double closed = homogeneous_quantile(s, static_cast<double>(n), p);
    const double inverted = inhomogeneous_quantile(nodes, p);
    EXPECT_NEAR(inverted, closed, 1e-8 * closed)
        << "n=" << n << " p=" << p << " mean=" << s.mean;
  }
}

TEST(PredictorMetamorphic, DegenerateMixtureEqualsFixedK) {
  util::Rng rng(810);
  for (int trial = 0; trial < 8; ++trial) {
    const TaskStats s = random_stats(rng);
    const int k = 1 + static_cast<int>(rng.uniform_int(200));
    const double p = rng.uniform(80.0, 99.9);
    const auto fixed = TaskCountMixture::fixed(static_cast<double>(k));
    const double via_mixture = mixture_quantile(s, fixed, p);
    const double via_fixed = homogeneous_quantile(s, k, p);
    EXPECT_NEAR(via_mixture, via_fixed, 1e-8 * via_fixed) << "k=" << k;
  }
}

TEST(PredictorMetamorphic, MixtureQuantileBracketedByExtremeK) {
  // K ~ U[a, b]: the mixture tail sits between the all-a and all-b tails.
  util::Rng rng(811);
  for (int trial = 0; trial < 8; ++trial) {
    const TaskStats s = random_stats(rng);
    const int a = 1 + static_cast<int>(rng.uniform_int(50));
    const int b = a + 1 + static_cast<int>(rng.uniform_int(100));
    const double p = rng.uniform(80.0, 99.9);
    const auto mixture = TaskCountMixture::uniform_int(a, b);
    const double x = mixture_quantile(s, mixture, p);
    EXPECT_GE(x, homogeneous_quantile(s, a, p) * (1.0 - 1e-9));
    EXPECT_LE(x, homogeneous_quantile(s, b, p) * (1.0 + 1e-9));
  }
}

TEST(PredictorMetamorphic, QuantileCdfRoundTripInhomogeneous) {
  util::Rng rng(812);
  for (int trial = 0; trial < 8; ++trial) {
    const auto nodes = random_nodes(rng, 2 + rng.uniform_int(8));
    const ForkTailPredictor predictor(nodes);
    const double p = rng.uniform(50.0, 99.9);
    const double x = predictor.quantile(p);
    EXPECT_NEAR(predictor.cdf(x), p / 100.0, 1e-6) << "p=" << p;
  }
}

TEST(PredictorMetamorphic, QuantileMonotoneInPercentile) {
  util::Rng rng(813);
  for (int trial = 0; trial < 6; ++trial) {
    const auto nodes = random_nodes(rng, 3);
    const ForkTailPredictor predictor(nodes);
    double prev = 0.0;
    for (double p : {50.0, 90.0, 95.0, 99.0, 99.9}) {
      const double x = predictor.quantile(p);
      EXPECT_GT(x, prev) << "p=" << p;
      prev = x;
    }
  }
}

}  // namespace
}  // namespace forktail::core
