// Adversarial-input tests for util::Json: every malformed document must
// raise util::JsonParseError -- never crash, overflow the stack, or parse
// silently wrong.  Complements the schema-oriented happy-path coverage in
// test_report_schema.cpp.
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.hpp"

namespace forktail::util {
namespace {

TEST(JsonFuzz, DeepNestingHitsTypedDepthCap) {
  // 100k open brackets would overflow the stack of a naive recursive
  // parser; the depth cap must turn it into a typed error.
  std::string hostile(100000, '[');
  EXPECT_THROW(Json::parse(hostile), JsonParseError);

  // Mixed object/array nesting counts the same way.
  std::string mixed;
  for (int i = 0; i < 50000; ++i) mixed += "{\"k\":[";
  EXPECT_THROW(Json::parse(mixed), JsonParseError);
}

TEST(JsonFuzz, DepthCapIsExact) {
  const auto nested = [](int depth) {
    std::string s(static_cast<std::size_t>(depth), '[');
    s += "1";
    s.append(static_cast<std::size_t>(depth), ']');
    return s;
  };
  EXPECT_NO_THROW(Json::parse(nested(kMaxJsonDepth)));
  EXPECT_THROW(Json::parse(nested(kMaxJsonDepth + 1)), JsonParseError);
}

TEST(JsonFuzz, OverlongNumbersRejectedNotUndefined) {
  // Values outside double range must error, not return inf.
  EXPECT_THROW(Json::parse("1e999"), JsonParseError);
  EXPECT_THROW(Json::parse("-1e999"), JsonParseError);
  std::string huge = "1";
  huge.append(400, '0');
  EXPECT_THROW(Json::parse(huge), JsonParseError);
  // A long but in-range digit string is fine.
  EXPECT_DOUBLE_EQ(Json::parse("0.3333333333333333333333333333").as_number(),
                   1.0 / 3.0);
  // Number-charset garbage must not reach stod unchecked.
  EXPECT_THROW(Json::parse("--1"), JsonParseError);
  EXPECT_THROW(Json::parse("1e+e"), JsonParseError);
  EXPECT_THROW(Json::parse("+"), JsonParseError);
}

TEST(JsonFuzz, DuplicateObjectKeysRejected) {
  EXPECT_THROW(Json::parse("{\"a\": 1, \"a\": 2}"), JsonParseError);
  // Same key at different depths is fine.
  EXPECT_NO_THROW(Json::parse("{\"a\": {\"a\": 1}}"));
}

TEST(JsonFuzz, SurrogatePairsDecodeToUtf8) {
  // U+1F600 as a surrogate pair -> 4-byte UTF-8.
  const Json v = Json::parse("\"\\ud83d\\ude00\"");
  EXPECT_EQ(v.as_string(), "\xF0\x9F\x98\x80");
}

TEST(JsonFuzz, LoneSurrogatesRejected) {
  EXPECT_THROW(Json::parse("\"\\ud800\""), JsonParseError);     // high alone
  EXPECT_THROW(Json::parse("\"\\udc00\""), JsonParseError);     // low alone
  EXPECT_THROW(Json::parse("\"\\ud800x\""), JsonParseError);    // high + text
  EXPECT_THROW(Json::parse("\"\\ud800\\n\""), JsonParseError);  // high + escape
  EXPECT_THROW(Json::parse("\"\\ud800\\ud800\""), JsonParseError);  // high+high
}

TEST(JsonFuzz, InvalidEscapesRejected) {
  EXPECT_THROW(Json::parse("\"\\q\""), JsonParseError);
  EXPECT_THROW(Json::parse("\"\\u12\""), JsonParseError);    // short
  EXPECT_THROW(Json::parse("\"\\u12zz\""), JsonParseError);  // bad digit
  EXPECT_THROW(Json::parse("\"\\"), JsonParseError);         // escape at EOF
}

TEST(JsonFuzz, UnescapedControlCharactersRejected) {
  EXPECT_THROW(Json::parse("\"a\nb\""), JsonParseError);
  EXPECT_THROW(Json::parse(std::string("\"a\0b\"", 5)), JsonParseError);
  EXPECT_NO_THROW(Json::parse("\"a\\nb\""));
}

TEST(JsonFuzz, ErrorCarriesByteOffset) {
  try {
    Json::parse("{\"a\": 1, \"a\": 2}");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_GT(e.offset(), 0u);
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

TEST(JsonFuzz, TruncatedDocumentsRejected) {
  for (const char* doc : {"{", "[", "\"abc", "{\"a\":", "[1,", "tru", "nul",
                          "{\"a\" 1}", "", "  "}) {
    EXPECT_THROW(Json::parse(doc), JsonParseError) << "doc: " << doc;
  }
}

TEST(JsonFuzz, RandomByteSoupNeverCrashes) {
  // Pure crash test: random byte strings either parse (rare) or raise the
  // typed error.  Any other escape (segfault, uncaught exception type)
  // fails the test run.
  util::Rng rng(20260806);
  for (int round = 0; round < 2000; ++round) {
    const std::size_t len = 1 + static_cast<std::size_t>(rng.uniform() * 64);
    std::string soup;
    soup.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      // Bias toward structural characters so the parser gets deep.
      const double pick = rng.uniform();
      if (pick < 0.5) {
        const char structural[] = "{}[]\",:0123456789.eE+-\\u\"tfn ";
        soup.push_back(
            structural[static_cast<std::size_t>(rng.uniform() * (sizeof(structural) - 1))]);
      } else {
        soup.push_back(static_cast<char>(rng.uniform() * 256.0));
      }
    }
    try {
      (void)Json::parse(soup);
    } catch (const JsonParseError&) {
      // expected for almost every input
    }
  }
}

TEST(JsonFuzz, RandomDocumentsRoundTrip) {
  // Structurally generated random documents must survive dump -> parse
  // exactly (the writer's determinism contract).
  util::Rng rng(7);
  for (int round = 0; round < 200; ++round) {
    Json doc = Json::object();
    const int n = 1 + static_cast<int>(rng.uniform() * 8);
    for (int i = 0; i < n; ++i) {
      const std::string key = "k" + std::to_string(i);
      const double pick = rng.uniform();
      if (pick < 0.4) {
        doc.set(key, Json(rng.uniform() * 1e6 - 5e5));
      } else if (pick < 0.6) {
        doc.set(key, Json(rng.uniform() < 0.5));
      } else if (pick < 0.8) {
        std::string s;
        for (int c = 0; c < 10; ++c) {
          s.push_back(static_cast<char>(' ' + rng.uniform() * 94));
        }
        doc.set(key, Json(s));
      } else {
        Json arr = Json::array();
        for (int c = 0; c < 3; ++c) arr.push_back(Json(rng.uniform()));
        doc.set(key, std::move(arr));
      }
    }
    EXPECT_EQ(Json::parse(doc.dump()), doc);
    EXPECT_EQ(Json::parse(doc.dump(0)), doc);
  }
}

}  // namespace
}  // namespace forktail::util
