#include "stats/percentile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace forktail::stats {
namespace {

TEST(Percentile, MedianOfOddSample) {
  std::vector<double> v = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
}

TEST(Percentile, InterpolatesBetweenOrderStats) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75.0), 7.5);
}

TEST(Percentile, Extremes) {
  std::vector<double> v = {4.0, 2.0, 9.0, 7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(Percentile, SingleElement) {
  std::vector<double> v = {42.0};
  EXPECT_DOUBLE_EQ(percentile(v, 99.0), 42.0);
}

TEST(Percentile, RejectsEmptyAndBadP) {
  std::vector<double> v;
  EXPECT_THROW(percentile(v, 50.0), std::invalid_argument);
  v.push_back(1.0);
  EXPECT_THROW(percentile(v, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile(v, 101.0), std::invalid_argument);
}

TEST(Percentiles, BatchMatchesSingle) {
  util::Rng rng(1);
  std::vector<double> v(10001);
  for (auto& x : v) x = rng.uniform();
  const double ps[] = {50.0, 90.0, 99.0};
  const auto batch = percentiles(v, ps);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(batch[i], percentile(v, ps[i]));
  }
}

TEST(PercentileInplace, MatchesSorting) {
  util::Rng rng(2);
  std::vector<double> v(5000);
  for (auto& x : v) x = rng.exponential(1.0);
  std::vector<double> copy = v;
  const double expected = percentile(v, 99.0);
  EXPECT_DOUBLE_EQ(percentile_inplace(copy, 99.0), expected);
}

TEST(PercentilesInplace, BitwiseMatchesCopySortVariant) {
  util::Rng rng(4);
  std::vector<double> v(20000);
  for (auto& x : v) x = rng.exponential(1.0);
  // Unsorted ps with duplicates and both endpoints: out[i] must line up
  // with the caller's ps order regardless of the internal selection order.
  const double ps[] = {95.0, 0.0, 50.0, 99.9, 50.0, 100.0};
  const auto sorted_path = percentiles(v, ps);
  std::vector<double> scratch = v;
  const auto selected = percentiles_inplace(scratch, ps);
  ASSERT_EQ(sorted_path.size(), selected.size());
  for (std::size_t i = 0; i < sorted_path.size(); ++i) {
    // Selection must be bit-identical to the sort-based path, not merely
    // close: BENCH_replay.json asserts the two pipelines agree exactly.
    EXPECT_EQ(sorted_path[i], selected[i]) << "ps index " << i;
  }
}

TEST(PercentilesInplace, RejectsEmptyAndBadPsBeforeReordering) {
  std::vector<double> v = {3.0, 1.0, 2.0};
  const std::vector<double> original = v;
  EXPECT_THROW(percentiles_inplace(v, std::span<const double>{}),
               std::invalid_argument);
  const double bad[] = {50.0, 120.0};
  EXPECT_THROW(percentiles_inplace(v, bad), std::invalid_argument);
  // Validation happens before any partitioning, so a rejected call must
  // leave the sample untouched.
  EXPECT_EQ(v, original);
}

TEST(Percentiles, RejectsEmptyAndBadPs) {
  std::vector<double> v = {1.0, 2.0};
  EXPECT_THROW(percentiles(v, std::span<const double>{}),
               std::invalid_argument);
  const double bad[] = {50.0, -0.5};
  EXPECT_THROW(percentiles(v, bad), std::invalid_argument);
}

TEST(Percentile, UniformQuantilesConverge) {
  util::Rng rng(3);
  std::vector<double> v(200000);
  for (auto& x : v) x = rng.uniform();
  EXPECT_NEAR(percentile(v, 99.0), 0.99, 0.002);
  EXPECT_NEAR(percentile(v, 50.0), 0.50, 0.005);
}

TEST(P2Quantile, ExactForFirstFive) {
  P2Quantile q(50.0);
  for (double x : {5.0, 1.0, 4.0, 2.0, 3.0}) q.add(x);
  EXPECT_DOUBLE_EQ(q.value(), 3.0);
}

TEST(P2Quantile, FewerThanFiveUsesSorting) {
  P2Quantile q(50.0);
  q.add(10.0);
  q.add(20.0);
  EXPECT_DOUBLE_EQ(q.value(), 15.0);
}

TEST(P2Quantile, NoSamplesThrows) {
  P2Quantile q(90.0);
  EXPECT_THROW(q.value(), std::logic_error);
}

TEST(P2Quantile, RejectsDegenerateLevels) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(100.0), std::invalid_argument);
}

TEST(P2Quantile, TracksExponentialP99) {
  P2Quantile q(99.0);
  util::Rng rng(4);
  std::vector<double> all;
  const int n = 200000;
  all.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(1.0);
    q.add(x);
    all.push_back(x);
  }
  const double exact = percentile(all, 99.0);
  EXPECT_NEAR(q.value(), exact, exact * 0.05);
}

TEST(Percentile, NaNSampleThrowsInsteadOfSilentGarbage) {
  // A NaN breaks the strict weak ordering std::sort / nth_element require,
  // so before the guard these calls returned arbitrary junk.  All four
  // entry points must reject the sample loudly.
  const double nan = std::nan("");
  std::vector<double> v = {1.0, nan, 3.0};
  const double ps[] = {50.0, 99.0};
  EXPECT_THROW(percentile(v, 50.0), std::invalid_argument);
  EXPECT_THROW(percentiles(v, ps), std::invalid_argument);
  std::vector<double> scratch = v;
  EXPECT_THROW(percentile_inplace(scratch, 50.0), std::invalid_argument);
  scratch = v;
  EXPECT_THROW(percentiles_inplace(scratch, ps), std::invalid_argument);
  // The rejected in-place call must not have reordered the sample.
  EXPECT_EQ(scratch[0], 1.0);
  EXPECT_EQ(scratch[2], 3.0);
}

TEST(Percentile, InfinitiesAreOrderedNormally) {
  // Infinities sort fine -- only NaN is rejected.
  std::vector<double> v = {1.0, std::numeric_limits<double>::infinity(), 0.5};
  EXPECT_DOUBLE_EQ(percentile(v, 100.0),
                   std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 0.5);
}

TEST(PercentilesInplace, EndpointAndSingleSampleEdges) {
  std::vector<double> single = {42.0};
  const double ps[] = {0.0, 50.0, 100.0};
  const auto out = percentiles_inplace(single, ps);
  for (double x : out) EXPECT_DOUBLE_EQ(x, 42.0);

  std::vector<double> v = {4.0, 2.0, 9.0, 7.0};
  const auto ends = percentiles_inplace(v, std::span<const double>(ps, 3));
  EXPECT_DOUBLE_EQ(ends[0], 2.0);   // p0 = min
  EXPECT_DOUBLE_EQ(ends[2], 9.0);   // p100 = max

  std::vector<double> empty;
  EXPECT_THROW(percentiles_inplace(empty, std::span<const double>(ps, 3)),
               std::invalid_argument);
  EXPECT_THROW(percentile_inplace(empty, 50.0), std::invalid_argument);
}

// Randomized cross-check of the nth_element selection path against the
// full-sort oracle.  The selection path's soundness rests on two claimed
// invariants -- ascending-p processing restricts each selection to the
// still-unpartitioned suffix, and the degenerate nth_element at lo+1 yields
// the exact interpolation neighbor -- which this fuzz pins over the inputs
// most likely to break a partial ordering: tiny samples (n = 1..4 hit every
// branch), duplicate-heavy draws (ties in strict-weak-order comparisons),
// and unsorted / duplicated ps hammering the cached_lo fast path.
TEST(PercentilesInplace, RandomizedFullSortOracle) {
  util::Rng rng(1234);
  for (int trial = 0; trial < 400; ++trial) {
    // Sizes biased toward tiny; every trial < 100 uses n in [1, 8].
    const std::size_t n =
        trial < 100 ? 1 + rng.uniform_int(std::uint64_t{8})
                    : 1 + rng.uniform_int(std::uint64_t{200});
    std::vector<double> v(n);
    const bool duplicate_heavy = (trial % 2) == 0;
    for (double& x : v) {
      // Duplicate-heavy: values from {0..4}, so runs of equal elements
      // straddle the selection pivots.  Otherwise continuous draws.
      x = duplicate_heavy
              ? static_cast<double>(rng.uniform_int(std::uint64_t{5}))
              : rng.exponential(1.0);
    }
    const std::size_t np = 1 + rng.uniform_int(std::uint64_t{6});
    std::vector<double> ps(np);
    for (double& p : ps) {
      switch (rng.uniform_int(std::uint64_t{4})) {
        case 0: p = 0.0; break;
        case 1: p = 100.0; break;
        default: p = rng.uniform(0.0, 100.0); break;
      }
    }
    if (np > 1 && rng.bernoulli(0.3)) ps[np - 1] = ps[0];  // duplicate p

    const auto oracle = percentiles(v, ps);
    std::vector<double> scratch = v;
    const auto selected = percentiles_inplace(scratch, ps);
    ASSERT_EQ(oracle.size(), selected.size());
    for (std::size_t i = 0; i < oracle.size(); ++i) {
      ASSERT_EQ(oracle[i], selected[i])
          << "trial " << trial << " n=" << n << " ps[" << i << "]=" << ps[i];
    }
    // The selection only reorders; it must not lose or invent samples.
    std::sort(scratch.begin(), scratch.end());
    std::sort(v.begin(), v.end());
    ASSERT_EQ(scratch, v) << "trial " << trial << ": sample multiset changed";
  }
}

TEST(P2Quantile, TracksMedianOfNormal) {
  P2Quantile q(50.0);
  util::Rng rng(5);
  for (int i = 0; i < 100000; ++i) q.add(rng.normal(7.0, 2.0));
  EXPECT_NEAR(q.value(), 7.0, 0.05);
}

}  // namespace
}  // namespace forktail::stats
