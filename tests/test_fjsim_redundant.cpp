#include "fjsim/redundant_node.hpp"

#include "fjsim/node.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "dist/basic.hpp"

namespace forktail::fjsim {
namespace {

/// Test distribution returning a scripted sequence of values.
class Scripted final : public dist::Distribution {
 public:
  explicit Scripted(std::vector<double> values) : values_(std::move(values)) {}
  double sample(util::Rng&) const override {
    if (next_ >= values_.size()) throw std::logic_error("script exhausted");
    return values_[next_++];
  }
  double moment(int k) const override {
    check_moment_order(k);
    return 1.0;
  }
  double cdf(double) const override { return 0.0; }
  std::string name() const override { return "Scripted"; }

 private:
  std::vector<double> values_;
  mutable std::size_t next_ = 0;
};

using Completions = std::map<std::uint64_t, double>;

TEST(RedundantNode, ShortTaskNeedsNoReplica) {
  dist::Deterministic service(1.0);
  RedundantNode node(&service, 2, 5.0, util::Rng(1));
  Completions done;
  auto cb = [&](std::uint64_t id, double, double t) { done[id] = t; };
  node.submit_task(0.0, 0, cb);
  node.flush(cb);
  EXPECT_EQ(node.redundant_issues(), 0u);
  EXPECT_DOUBLE_EQ(done.at(0), 1.0);
}

TEST(RedundantNode, PrimaryWinsReplicaKilled) {
  // Primary S = 30 triggers a replica at t = 5 on the idle second server
  // with S = 40; the primary completes first at 30 and the replica is
  // preempted there (server 1 is free again immediately).
  Scripted service({30.0, 40.0, 1.0});
  RedundantNode node(&service, 2, 5.0, util::Rng(2));
  Completions done;
  auto cb = [&](std::uint64_t id, double, double t) { done[id] = t; };
  node.submit_task(0.0, 0, cb);
  node.flush(cb);
  EXPECT_EQ(node.redundant_issues(), 1u);
  EXPECT_DOUBLE_EQ(done.at(0), 30.0);
}

TEST(RedundantNode, ReplicaWinsAndFreesTheStragglersServer) {
  // Task 0: S = 30 on server 0, replica at t = 5 on server 1 with S = 2,
  // so the task completes at 7 and the straggler is KILLED at 7 -- freeing
  // server 0 for task 1 (arrives at 6, S = 4), which must finish at 11,
  // not at 34.
  Scripted service({30.0, 2.0, 4.0});
  RedundantNode node(&service, 2, 5.0, util::Rng(3));
  Completions done;
  auto cb = [&](std::uint64_t id, double, double t) { done[id] = t; };
  node.submit_task(0.0, 0, cb);
  node.submit_task(6.0, 1, cb);
  node.flush(cb);
  EXPECT_EQ(node.redundant_issues(), 1u);
  EXPECT_DOUBLE_EQ(done.at(0), 7.0);
  EXPECT_DOUBLE_EQ(done.at(1), 11.0);
}

TEST(RedundantNode, QueuedReplicaLazilyCancelled) {
  // Two stragglers keep both servers busy; each one's replica queues on
  // the other server and must be dropped when its task finishes first.
  Scripted service({10.0, 10.0, 99.0, 99.0});
  RedundantNode node(&service, 2, 3.0, util::Rng(4));
  Completions done;
  auto cb = [&](std::uint64_t id, double, double t) { done[id] = t; };
  node.submit_task(0.0, 0, cb);
  node.submit_task(1.0, 1, cb);
  node.flush(cb);
  EXPECT_EQ(node.redundant_issues(), 2u);
  EXPECT_DOUBLE_EQ(done.at(0), 10.0);
  EXPECT_DOUBLE_EQ(done.at(1), 11.0);
}

TEST(RedundantNode, EveryTaskCompletesExactlyOnce) {
  dist::Exponential service(1.0);
  RedundantNode node(&service, 3, 0.5, util::Rng(5));
  std::vector<int> seen(2000, 0);
  auto cb = [&](std::uint64_t id, double, double) { ++seen[id]; };
  util::Rng arr(6);
  double t = 0.0;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    t += arr.exponential(0.6);
    node.submit_task(t, i, cb);
  }
  node.flush(cb);
  for (int s : seen) ASSERT_EQ(s, 1);
}

TEST(RedundantNode, CompletionsNeverBeforeArrivalAndReplicasCutTail) {
  // Statistical sanity on a heavy-tailed service: completions are causal
  // and the per-task response tail is shorter than without redundancy.
  const auto heavy = dist::HyperExp2::from_mean_scv(1.0, 8.0);
  RedundantNode red(&heavy, 3, 3.0, util::Rng(7));
  FastNode rr(&heavy, 3, Policy::kRoundRobin, util::Rng(7));
  util::Rng arr(8);
  std::vector<double> red_resp;
  std::vector<double> rr_resp;
  auto cb_red = [&](std::uint64_t, double a, double d) {
    ASSERT_GE(d, a);
    red_resp.push_back(d - a);
  };
  auto cb_rr = [&](std::uint64_t, double a, double d) {
    rr_resp.push_back(d - a);
  };
  double t = 0.0;
  for (std::uint64_t i = 0; i < 30000; ++i) {
    t += arr.exponential(0.8);  // ~42% nominal load over 3 servers
    red.submit_task(t, i, cb_red);
    rr.submit_task(t, i, cb_rr);
  }
  red.flush(cb_red);
  rr.flush(cb_rr);
  ASSERT_EQ(red_resp.size(), rr_resp.size());
  std::sort(red_resp.begin(), red_resp.end());
  std::sort(rr_resp.begin(), rr_resp.end());
  const auto p999 = [](const std::vector<double>& v) {
    return v[v.size() * 999 / 1000];
  };
  EXPECT_LT(p999(red_resp), p999(rr_resp));
  EXPECT_GT(red.redundant_issues(), 0u);
}

TEST(RedundantNode, Validation) {
  dist::Deterministic service(1.0);
  EXPECT_THROW(RedundantNode(nullptr, 2, 1.0, util::Rng(9)),
               std::invalid_argument);
  EXPECT_THROW(RedundantNode(&service, 1, 1.0, util::Rng(9)),
               std::invalid_argument);
  EXPECT_THROW(RedundantNode(&service, 2, 0.0, util::Rng(9)),
               std::invalid_argument);
}

}  // namespace
}  // namespace forktail::fjsim
