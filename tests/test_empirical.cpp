#include "dist/empirical.hpp"

#include <gtest/gtest.h>

#include "stats/welford.hpp"
#include "util/rng.hpp"

namespace forktail::dist {
namespace {

Empirical two_segment() {
  // Uniform mixture: 50% mass uniform on [0,1], 50% uniform on [1,3].
  return Empirical({0.0, 0.5, 1.0}, {0.0, 1.0, 3.0});
}

TEST(Empirical, MomentsOfUniformMixture) {
  const Empirical d = two_segment();
  // E[X] = 0.5*0.5 + 0.5*2 = 1.25; E[X^2] = 0.5*(1/3) + 0.5*(13/3) = 7/3.
  EXPECT_NEAR(d.mean(), 1.25, 1e-12);
  EXPECT_NEAR(d.moment(2), 7.0 / 3.0, 1e-12);
}

TEST(Empirical, QuantileInterpolation) {
  const Empirical d = two_segment();
  EXPECT_DOUBLE_EQ(d.quantile(0.25), 0.5);
  EXPECT_DOUBLE_EQ(d.quantile(0.75), 2.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 3.0);
}

TEST(Empirical, CdfInvertsQuantile) {
  const Empirical d = two_segment();
  for (double u : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    EXPECT_NEAR(d.cdf(d.quantile(u)), u, 1e-12) << "u=" << u;
  }
}

TEST(Empirical, SamplingMatchesMoments) {
  const Empirical d = two_segment();
  util::Rng rng(30);
  stats::RawMoments m;
  for (int i = 0; i < 300000; ++i) m.add(d.sample(rng));
  EXPECT_NEAR(m.moment(1), d.moment(1), 0.01);
  EXPECT_NEAR(m.moment(2), d.moment(2), 0.03);
}

TEST(Empirical, FromSamplesPreservesStatistics) {
  util::Rng rng(31);
  std::vector<double> samples(200000);
  for (auto& x : samples) x = rng.exponential(2.0);
  const Empirical d = Empirical::from_samples(samples);
  EXPECT_NEAR(d.mean(), 2.0, 0.05);
  EXPECT_NEAR(d.variance(), 4.0, 0.3);
  // CDF should track the exponential closely in the body.
  EXPECT_NEAR(d.cdf(2.0 * std::log(2.0)), 0.5, 0.01);
}

TEST(Empirical, ScaledMultipliesMoments) {
  const Empirical d = two_segment();
  const Empirical s = d.scaled(2.0);
  EXPECT_NEAR(s.mean(), 2.0 * d.mean(), 1e-12);
  EXPECT_NEAR(s.moment(2), 4.0 * d.moment(2), 1e-12);
  EXPECT_NEAR(s.moment(3), 8.0 * d.moment(3), 1e-12);
}

TEST(Empirical, FlatSegmentsHandled) {
  // An atom at 1.0 carrying 50% mass (flat value segment).
  const Empirical d({0.0, 0.25, 0.75, 1.0}, {0.0, 1.0, 1.0, 2.0});
  EXPECT_NEAR(d.cdf(1.0 - 1e-12), 0.25, 1e-6);
  EXPECT_NEAR(d.cdf(1.0 + 1e-12), 0.75, 1e-6);
  // Mean = 0.25*0.5 + 0.5*1 + 0.25*1.5 = 1.0.
  EXPECT_NEAR(d.mean(), 1.0, 1e-12);
}

TEST(Empirical, ValidatesKnots) {
  EXPECT_THROW(Empirical({0.0, 1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(Empirical({0.1, 1.0}, {0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Empirical({0.0, 0.5}, {0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Empirical({0.0, 0.5, 0.5, 1.0}, {0.0, 1.0, 2.0, 3.0}),
               std::invalid_argument);
  EXPECT_THROW(Empirical({0.0, 1.0}, {1.0, 0.5}), std::invalid_argument);
}

TEST(Empirical, ScaledRejectsNonPositive) {
  EXPECT_THROW(two_segment().scaled(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace forktail::dist
