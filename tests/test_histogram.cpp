#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace forktail::stats {
namespace {

TEST(Histogram, CountsLandInCorrectBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(9.99);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total_count(), 3u);
}

TEST(Histogram, UnderflowAndOverflow) {
  Histogram h(1.0, 2.0, 4);
  h.add(0.5);
  h.add(2.5);
  h.add(1.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total_count(), 3u);
}

TEST(Histogram, BinEdgesLinear) {
  Histogram h(0.0, 100.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lower(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(0), 25.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(3), 75.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(3), 100.0);
}

TEST(Histogram, LogSpacingCoversDecades) {
  Histogram h(1.0, 1000.0, 3, Histogram::Spacing::kLog);
  EXPECT_NEAR(h.bin_upper(0), 10.0, 1e-9);
  EXPECT_NEAR(h.bin_upper(1), 100.0, 1e-9);
  h.add(5.0);
  h.add(50.0);
  h.add(500.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(2), 1u);
}

TEST(Histogram, LogSpacingRequiresPositiveLow) {
  EXPECT_THROW(Histogram(0.0, 10.0, 4, Histogram::Spacing::kLog),
               std::invalid_argument);
}

TEST(Histogram, QuantileApproximatesExact) {
  Histogram h(0.0, 1.0, 1000);
  util::Rng rng(6);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform());
  EXPECT_NEAR(h.quantile(50.0), 0.5, 0.01);
  EXPECT_NEAR(h.quantile(99.0), 0.99, 0.01);
}

TEST(Histogram, CcdfDecreasesAcrossBins) {
  Histogram h(0.0, 10.0, 10);
  util::Rng rng(7);
  for (int i = 0; i < 10000; ++i) h.add(rng.exponential(2.0));
  double prev = 1.1;
  for (std::size_t b = 0; b < h.num_bins(); ++b) {
    const double c = h.ccdf_at_bin(b);
    EXPECT_LE(c, prev);
    prev = c;
  }
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(5.0, 5.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, TextRenderingNonEmpty) {
  Histogram h(0.0, 10.0, 5);
  for (double x : {1.0, 1.5, 6.0}) h.add(x);
  EXPECT_FALSE(h.to_text().empty());
}

}  // namespace
}  // namespace forktail::stats
