// ScenarioSpec JSON contract tests.
//
// Two properties the declarative layer stands on:
//   1. Round-trip identity: parse(to_json(spec)) == spec for every valid
//      spec (serialization is total, parsing is its exact inverse), so a
//      spec can move through files, reports, and registries losslessly.
//   2. Malformed documents are rejected loudly with a typed ConfigError
//      naming the offending field -- a typo or an out-of-range value must
//      never silently run the default configuration.
#include <gtest/gtest.h>

#include <string>

#include "fjsim/config.hpp"
#include "scenario/spec.hpp"
#include "util/json.hpp"

namespace forktail {
namespace {

using fjsim::ConfigError;
using scenario::KSpec;
using scenario::ScenarioSpec;
using scenario::ServiceSpec;
using scenario::StageSpec;
using scenario::Topology;

// Non-default specs, one per topology, exercising every section of the
// document.
ScenarioSpec homogeneous_spec() {
  ScenarioSpec spec;
  spec.name = "round-trip-homogeneous";
  spec.topology = Topology::kHomogeneous;
  spec.nodes = 48;
  spec.group.replicas = 3;
  spec.group.policy = fjsim::Policy::kRedundant;
  spec.group.redundant_delay = 7.5;
  spec.service = ServiceSpec{"Weibull", 6.25};
  spec.load = 0.85;
  spec.requests = 12345;
  spec.warmup_fraction = 0.3;
  spec.seed = 0xDEADBEEF;
  spec.max_parallelism = 4;
  spec.batch = 512;
  return spec;
}

ScenarioSpec heterogeneous_spec() {
  ScenarioSpec spec;
  spec.name = "round-trip-heterogeneous";
  spec.topology = Topology::kHeterogeneous;
  spec.nodes = 3;
  spec.services = {ServiceSpec{"Exponential", 1.0}, ServiceSpec{"Erlang-2", 2.0},
                   ServiceSpec{"Exponential", 4.0}};
  spec.heterogeneity.spread = 10.0;
  spec.heterogeneity.seed = 99;
  spec.load = 0.7;
  return spec;
}

ScenarioSpec subset_spec() {
  ScenarioSpec spec;
  spec.name = "round-trip-subset";
  spec.topology = Topology::kSubset;
  spec.nodes = 1000;
  spec.service = ServiceSpec{"TruncPareto", 0.0};
  spec.k.mode = KSpec::Mode::kUniform;
  spec.k.lo = 80;
  spec.k.hi = 120;
  spec.load = 0.9;
  spec.group_by_k = true;
  return spec;
}

ScenarioSpec consolidated_spec() {
  ScenarioSpec spec;
  spec.name = "round-trip-consolidated";
  spec.topology = Topology::kConsolidated;
  spec.nodes = 500;
  spec.group.replicas = 3;
  spec.group.policy = fjsim::Policy::kRoundRobin;
  spec.workload.min_mean_ms = 2.0;
  spec.workload.max_mean_ms = 800.0;
  spec.workload.target_fraction = 0.2;
  spec.workload.target_tasks = 250;
  spec.workload.target_mean_ms = 40.0;
  spec.workload.service_floor = 0.1;
  spec.load = 0.8;
  return spec;
}

ScenarioSpec pipeline_spec() {
  ScenarioSpec spec;
  spec.name = "round-trip-pipeline";
  spec.topology = Topology::kPipeline;
  spec.stages = {StageSpec{16, ServiceSpec{"Exponential", 2.0}},
                 StageSpec{64, ServiceSpec{"HyperExp2", 0.0}}};
  spec.load = 0.75;
  return spec;
}

// --------------------------------------------------------- round trips

TEST(ScenarioSpec, RoundTripIsIdentityForEveryTopology) {
  for (const ScenarioSpec& spec :
       {homogeneous_spec(), heterogeneous_spec(), subset_spec(),
        consolidated_spec(), pipeline_spec()}) {
    EXPECT_NO_THROW(scenario::validate(spec)) << spec.name;
    const util::Json doc = scenario::to_json(spec);
    EXPECT_EQ(scenario::parse_scenario(doc), spec) << spec.name;
    // Through text as well: serialize -> parse -> serialize is a fixpoint.
    const std::string text = doc.dump();
    EXPECT_EQ(scenario::parse_scenario_text(text), spec) << spec.name;
    EXPECT_EQ(scenario::to_json(scenario::parse_scenario_text(text)).dump(), text)
        << spec.name;
  }
}

TEST(ScenarioSpec, SerializedDocumentCarriesSchemaTag) {
  const util::Json doc = scenario::to_json(homogeneous_spec());
  EXPECT_EQ(doc.at("schema").as_string(), scenario::kScenarioSchema);
}

TEST(ScenarioSpec, MissingKeysTakeDefaults) {
  const ScenarioSpec parsed =
      scenario::parse_scenario_text(R"({"topology": "homogeneous"})");
  EXPECT_EQ(parsed, ScenarioSpec{});  // defaults are a homogeneous spec
}

// ---------------------------------------------------------- rejections

// Expect `fn` to throw ConfigError whose field() is exactly `field`.
template <typename Fn>
void expect_config_error(const std::string& field, Fn&& fn) {
  try {
    fn();
    FAIL() << "expected ConfigError on field " << field;
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.field(), field) << e.what();
  }
}

TEST(ScenarioSpec, RejectsUnknownTopology) {
  expect_config_error("topology", [] {
    scenario::parse_scenario_text(R"({"topology": "mesh"})");
  });
}

TEST(ScenarioSpec, RejectsMissingTopology) {
  expect_config_error("topology",
                      [] { scenario::parse_scenario_text(R"({"nodes": 4})"); });
}

TEST(ScenarioSpec, RejectsUnknownSchema) {
  expect_config_error("schema", [] {
    scenario::parse_scenario_text(
        R"({"schema": "forktail.scenario.v999", "topology": "homogeneous"})");
  });
}

TEST(ScenarioSpec, RejectsUnknownTopLevelKey) {
  expect_config_error("noodles", [] {
    scenario::parse_scenario_text(R"({"topology": "homogeneous", "noodles": 4})");
  });
}

TEST(ScenarioSpec, RejectsTypoInNestedSection) {
  // "replica" (singular) must not silently leave replicas at the default.
  expect_config_error("group.replica", [] {
    scenario::parse_scenario_text(
        R"({"topology": "homogeneous", "group": {"replica": 3}})");
  });
}

TEST(ScenarioSpec, RejectsUnknownDistribution) {
  ScenarioSpec spec = homogeneous_spec();
  spec.service.dist = "Zipf";
  expect_config_error("service.dist", [&] { scenario::validate(spec); });
}

TEST(ScenarioSpec, RejectsEmpiricalMeanOverride) {
  ScenarioSpec spec;
  spec.service = ServiceSpec{"Empirical", 9.0};  // Empirical mean is fixed
  expect_config_error("service.mean", [&] { scenario::validate(spec); });
}

TEST(ScenarioSpec, RejectsRhoAtOrAboveOne) {
  ScenarioSpec spec;
  spec.load = 1.0;
  expect_config_error("load", [&] { scenario::validate(spec); });
  spec.load = 1.5;
  expect_config_error("load", [&] { scenario::validate(spec); });
}

TEST(ScenarioSpec, RejectsZeroRequests) {
  ScenarioSpec spec;
  spec.requests = 0;
  expect_config_error("samples.requests", [&] { scenario::validate(spec); });
}

TEST(ScenarioSpec, RejectsFixedKAboveN) {
  ScenarioSpec spec = subset_spec();
  spec.k.mode = KSpec::Mode::kFixed;
  spec.k.fixed = static_cast<int>(spec.nodes) + 1;
  expect_config_error("SubsetConfig.k_fixed", [&] { scenario::validate(spec); });
}

TEST(ScenarioSpec, RejectsUniformKDefaultsOfZero) {
  // The old silent-default failure mode: KMode::kUniformInt with the
  // default k_lo = k_hi = 0 used to simulate k = 0 requests; it must now
  // fail up front.
  ScenarioSpec spec = subset_spec();
  spec.k.lo = 0;
  spec.k.hi = 0;
  expect_config_error("SubsetConfig.k_lo", [&] { scenario::validate(spec); });
}

TEST(ScenarioSpec, RejectsInvertedUniformKRange) {
  ScenarioSpec spec = subset_spec();
  spec.k.lo = 120;
  spec.k.hi = 80;
  expect_config_error("SubsetConfig.k_hi", [&] { scenario::validate(spec); });
}

TEST(ScenarioSpec, RejectsUniformKHiAboveN) {
  ScenarioSpec spec = subset_spec();
  spec.k.hi = static_cast<int>(spec.nodes) + 5;
  expect_config_error("SubsetConfig.k_hi", [&] { scenario::validate(spec); });
}

TEST(ScenarioSpec, RejectsSubsetWithoutKMode) {
  ScenarioSpec spec = subset_spec();
  spec.k = KSpec{};  // mode = kAll
  expect_config_error("k.mode", [&] { scenario::validate(spec); });
}

TEST(ScenarioSpec, RejectsHomogeneousWithSubsetK) {
  ScenarioSpec spec;  // homogeneous forks to every node
  spec.k.mode = KSpec::Mode::kFixed;
  spec.k.fixed = 4;
  expect_config_error("k.mode", [&] { scenario::validate(spec); });
}

TEST(ScenarioSpec, RejectsHeterogeneousServiceCountMismatch) {
  ScenarioSpec spec = heterogeneous_spec();
  spec.nodes = 5;  // but only 3 explicit services
  expect_config_error("services", [&] { scenario::validate(spec); });
}

TEST(ScenarioSpec, RejectsConsolidatedTargetTasksAboveNodes) {
  ScenarioSpec spec = consolidated_spec();
  spec.workload.target_tasks = static_cast<std::uint32_t>(spec.nodes) + 1;
  expect_config_error("workload.target_tasks",
                      [&] { scenario::validate(spec); });
}

TEST(ScenarioSpec, RejectsEmptyPipeline) {
  ScenarioSpec spec = pipeline_spec();
  spec.stages.clear();
  expect_config_error("stages", [&] { scenario::validate(spec); });
}

TEST(ScenarioSpec, RejectsNonIntegerCounts) {
  EXPECT_THROW(scenario::parse_scenario_text(
                   R"({"topology": "homogeneous", "nodes": 3.5})"),
               ConfigError);
  EXPECT_THROW(scenario::parse_scenario_text(
                   R"({"topology": "homogeneous", "samples": {"requests": -1}})"),
               ConfigError);
}

// ------------------------------------------- heavy tails & redundancy-d

ScenarioSpec redundancy_spec() {
  ScenarioSpec spec;
  spec.name = "round-trip-redundancy";
  spec.topology = Topology::kSubset;
  spec.nodes = 100;
  spec.service = ServiceSpec{"Pareto", 4.22, 2.6};
  spec.k.mode = KSpec::Mode::kRedundant;
  spec.k.fixed = 3;
  spec.load = 0.6;
  return spec;
}

TEST(ScenarioSpec, HeavyTailRoundTripKeepsTailAndMode) {
  const ScenarioSpec spec = redundancy_spec();
  EXPECT_NO_THROW(scenario::validate(spec));
  const util::Json doc = scenario::to_json(spec);
  EXPECT_EQ(doc.at("service").at("tail").as_number(), 2.6);
  EXPECT_EQ(doc.at("k").at("mode").as_string(), "redundancy-d");
  EXPECT_EQ(scenario::parse_scenario(doc), spec);
}

TEST(ScenarioSpec, ParsesTheRedundancyDSugar) {
  const ScenarioSpec parsed = scenario::parse_scenario_text(R"({
    "topology": "subset", "nodes": 100, "load": 0.6,
    "service": {"dist": "Pareto", "mean": 4.22, "tail": 2.6},
    "k": {"mode": "redundancy-d", "d": 3}
  })");
  EXPECT_EQ(parsed.k.mode, KSpec::Mode::kRedundant);
  EXPECT_EQ(parsed.k.fixed, 3);
  EXPECT_NO_THROW(scenario::validate(parsed));
  // "d" agreeing with an explicit "fixed" is fine; disagreeing is not.
  EXPECT_NO_THROW(scenario::parse_scenario_text(
      R"({"topology": "subset", "k": {"mode": "redundancy-d", "fixed": 3, "d": 3}})"));
  expect_config_error("k.d", [] {
    scenario::parse_scenario_text(
        R"({"topology": "subset", "k": {"mode": "redundancy-d", "fixed": 4, "d": 3}})");
  });
}

TEST(ScenarioSpec, RejectsTailIndexOnNonHeavyFamilies) {
  ScenarioSpec spec;
  spec.service = ServiceSpec{"Exponential", 4.22, 2.6};
  expect_config_error("service.tail", [&] { scenario::validate(spec); });
}

TEST(ScenarioSpec, RejectsDivergentMeanTailIndex) {
  ScenarioSpec spec;
  spec.service = ServiceSpec{"Pareto", 4.22, 0.9};
  expect_config_error("service.tail", [&] { scenario::validate(spec); });
  spec.service.tail = -1.0;
  expect_config_error("service.tail", [&] { scenario::validate(spec); });
}

TEST(ScenarioSpec, RejectsRedundancyWithEarlyKMitigation) {
  ScenarioSpec spec = redundancy_spec();
  spec.faults.mitigation.early_k = 2;
  expect_config_error("faults.mitigation.early_k",
                      [&] { scenario::validate(spec); });
}

TEST(ScenarioSpec, PerfectSamplerRefusesHeavyTailByCapability) {
  // The refusal must come from the capability query (naming the tail
  // class), not from a hard-coded family list.
  ScenarioSpec spec;
  spec.topology = Topology::kHomogeneous;
  spec.sampler = scenario::Sampler::kPerfect;
  spec.load = 0.5;
  spec.service = ServiceSpec{"Pareto", 4.22, 2.6};
  try {
    scenario::validate(spec);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.field(), "sampler");
    EXPECT_NE(std::string(e.what()).find("regularly-varying"),
              std::string::npos)
        << e.what();
  }
}

// ------------------------------------------------------- serve section

TEST(ScenarioSpec, ServeSectionRoundTripsWithNonDefaultValues) {
  ScenarioSpec spec = homogeneous_spec();
  spec.serve.udp_port = 9464;
  spec.serve.tcp_port = 9465;
  spec.serve.service = 7;
  spec.serve.shards = 4;
  spec.serve.window_seconds = 5.0;
  spec.serve.min_samples = 12;
  spec.serve.skew_tolerance = 0.25;
  spec.serve.ring_capacity = 256;
  spec.serve.liveness_timeout = 8.0;
  spec.serve.sweep_interval = 0.1;
  spec.serve.stall_threshold = 3.0;
  EXPECT_NO_THROW(scenario::validate(spec));
  EXPECT_EQ(scenario::parse_scenario(scenario::to_json(spec)), spec);
}

TEST(ScenarioSpec, ServeSectionRejectsUnknownKey) {
  expect_config_error("serve.ringcapacity", [] {
    scenario::parse_scenario_text(
        R"({"topology": "homogeneous", "serve": {"ringcapacity": 8}})");
  });
}

TEST(ScenarioSpec, ServeSectionValidation) {
  const auto with = [](auto&& mutate) {
    ScenarioSpec spec = homogeneous_spec();
    mutate(spec.serve);
    return spec;
  };
  expect_config_error("serve.udp_port", [&] {
    scenario::validate(with([](auto& s) { s.udp_port = 70000; }));
  });
  expect_config_error("serve.tcp_port", [&] {
    scenario::validate(with([](auto& s) { s.udp_port = s.tcp_port = 9000; }));
  });
  expect_config_error("serve.shards", [&] {
    scenario::validate(with([](auto& s) { s.shards = 0; }));
  });
  expect_config_error("serve.window_seconds", [&] {
    scenario::validate(with([](auto& s) { s.window_seconds = 0.0; }));
  });
  expect_config_error("serve.min_samples", [&] {
    scenario::validate(with([](auto& s) { s.min_samples = 0; }));
  });
  expect_config_error("serve.skew_tolerance", [&] {
    scenario::validate(with([](auto& s) { s.skew_tolerance = -0.1; }));
  });
  expect_config_error("serve.ring_capacity", [&] {
    scenario::validate(with([](auto& s) { s.ring_capacity = 0; }));
  });
  expect_config_error("serve.liveness_timeout", [&] {
    scenario::validate(with([](auto& s) { s.liveness_timeout = 0.0; }));
  });
  expect_config_error("serve.sweep_interval", [&] {
    scenario::validate(with([](auto& s) { s.sweep_interval = -1.0; }));
  });
  expect_config_error("serve.stall_threshold", [&] {
    scenario::validate(with([](auto& s) { s.stall_threshold = 0.0; }));
  });
}

TEST(ScenarioSpec, MalformedJsonIsAConfigError) {
  // Truncated JSON surfaces the parser's typed error; an unreadable file is
  // wrapped into ConfigError so the CLI maps both to its config exit code.
  EXPECT_THROW(scenario::parse_scenario_text("{\"topology\": "),
               util::JsonParseError);
  EXPECT_THROW(scenario::load_scenario_file("/nonexistent/scenario.json"),
               ConfigError);
}

}  // namespace
}  // namespace forktail
