#include "baselines/eat.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "dist/basic.hpp"
#include "queueing/mm1.hpp"

namespace forktail::baselines {
namespace {

dist::DistPtr exp_service() { return std::make_shared<dist::Exponential>(1.0); }

TEST(EatPredictor, SingleNodeMatchesMm1Exactly) {
  // With one node there is no dependence correction: EAT's quantile is the
  // numerically inverted M/M/1 response percentile.
  const double lambda = 0.8;
  EatPredictor eat(lambda, exp_service(), 1);
  queueing::Mm1 q(lambda, 1.0);
  for (double p : {50.0, 90.0, 99.0}) {
    EXPECT_NEAR(eat.quantile(p), q.response_percentile(p),
                0.01 * q.response_percentile(p))
        << "p=" << p;
  }
}

TEST(EatPredictor, MarginalCdfMatchesMm1) {
  const double lambda = 0.7;
  EatPredictor eat(lambda, exp_service(), 8);
  queueing::Mm1 q(lambda, 1.0);
  for (double x : {1.0, 3.0, 10.0}) {
    EXPECT_NEAR(eat.marginal_cdf(x), 1.0 - q.response_ccdf(x), 1e-5);
  }
}

TEST(EatPredictor, CorrelationPositiveAndGrowsWithLoad) {
  EatPredictor low(0.3, exp_service(), 16);
  EatPredictor high(0.9, exp_service(), 16);
  EXPECT_GT(low.copula_correlation(), 0.0);
  EXPECT_GT(high.copula_correlation(), low.copula_correlation());
  EXPECT_LT(high.copula_correlation(), 1.0);
}

TEST(EatPredictor, CorrelationShrinksTheMaxVsIndependence) {
  // With positive correlation the max is stochastically smaller than under
  // independence, so the EAT quantile must not exceed the independent
  // order-statistics quantile (marginal^N).
  const double lambda = 0.9;
  const std::size_t n = 100;
  EatPredictor eat(lambda, exp_service(), n);
  queueing::Mm1 q(lambda, 1.0);
  // Independent-max p99: solve F(x)^n = 0.99 => F(x) = 0.99^{1/n}.
  const double level = std::pow(0.99, 1.0 / static_cast<double>(n));
  const double independent = q.response_percentile(100.0 * level);
  EXPECT_LE(eat.quantile(99.0), independent * 1.001);
}

TEST(EatPredictor, RequestCdfMonotone) {
  EatPredictor eat(0.8, exp_service(), 50);
  double prev = -1.0;
  for (double x = 0.5; x < 100.0; x *= 1.5) {
    const double c = eat.request_cdf(x);
    EXPECT_GE(c, prev);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
}

TEST(EatPredictor, QuantileInvertsRequestCdf) {
  EatPredictor eat(0.85, exp_service(), 100);
  const double x = eat.quantile(99.0);
  EXPECT_NEAR(eat.request_cdf(x), 0.99, 1e-4);
}

TEST(EatPredictor, QuantileGrowsWithNodes) {
  EatPredictor small(0.8, exp_service(), 10);
  EatPredictor large(0.8, exp_service(), 1000);
  EXPECT_GT(large.quantile(99.0), small.quantile(99.0));
}

TEST(EatPredictor, AccuracyKnobIsDeterministic) {
  EatPredictor a(0.8, exp_service(), 100, {.accuracy = 100});
  EatPredictor b(0.8, exp_service(), 100, {.accuracy = 100});
  EXPECT_DOUBLE_EQ(a.quantile(99.0), b.quantile(99.0));
}

TEST(EatPredictor, HigherAccuracyStaysClose) {
  EatPredictor coarse(0.8, exp_service(), 100, {.accuracy = 60});
  EatPredictor fine(0.8, exp_service(), 100, {.accuracy = 400});
  const double qc = coarse.quantile(99.0);
  const double qf = fine.quantile(99.0);
  EXPECT_NEAR(qc, qf, 0.02 * qf);
}

TEST(EatPredictor, Validation) {
  EXPECT_THROW(EatPredictor(0.8, nullptr, 10), std::invalid_argument);
  EXPECT_THROW(EatPredictor(0.8, exp_service(), 0), std::invalid_argument);
  EXPECT_THROW(EatPredictor(0.8, exp_service(), 10, {.accuracy = 5}),
               std::invalid_argument);
  EatPredictor eat(0.8, exp_service(), 10);
  EXPECT_THROW(eat.quantile(0.0), std::invalid_argument);
}

TEST(EatPredictor, ErlangServiceSupported) {
  const auto service = std::make_shared<dist::Erlang>(2, 1.0);
  EatPredictor eat(0.8, service, 64);
  const double x = eat.quantile(99.0);
  EXPECT_GT(x, 0.0);
  EXPECT_TRUE(std::isfinite(x));
}

}  // namespace
}  // namespace forktail::baselines
