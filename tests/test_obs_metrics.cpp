// Unit tests for the observability layer (src/obs): metric primitives,
// registry semantics, histogram quantile accuracy, and report rendering.
//
// These run against whatever FORKTAIL_OBS the build selected; assertions
// that only hold for live instrumentation are gated on obs::enabled().
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/report.hpp"

namespace forktail::obs {
namespace {

TEST(ObsCounter, AccumulatesAcrossThreads) {
  Registry registry;
  Counter& c = registry.counter("test.counter");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (auto& w : workers) w.join();
  if (enabled()) {
    EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  } else {
    EXPECT_EQ(c.value(), 0u);
  }
}

TEST(ObsGauge, SetAddAndSetMax) {
  Registry registry;
  Gauge& g = registry.gauge("test.gauge");
  g.set(2.5);
  g.add(1.5);
  g.set_max(3.0);  // below current 4.0: no effect
  if (enabled()) {
    EXPECT_DOUBLE_EQ(g.value(), 4.0);
    g.set_max(10.0);
    EXPECT_DOUBLE_EQ(g.value(), 10.0);
  } else {
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
  }
}

TEST(ObsRegistry, SameNameSameMetric) {
  Registry registry;
  Counter& a = registry.counter("dup");
  Counter& b = registry.counter("dup");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = registry.histogram("h");
  Histogram& h2 = registry.histogram("h");
  EXPECT_EQ(&h1, &h2);
}

TEST(ObsRegistry, SnapshotSortedByName) {
  if (!enabled()) GTEST_SKIP() << "observability compiled out";
  Registry registry;
  registry.counter("zebra").add(1);
  registry.counter("apple").add(2);
  registry.counter("mango").add(3);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "apple");
  EXPECT_EQ(snap.counters[1].first, "mango");
  EXPECT_EQ(snap.counters[2].first, "zebra");
}

TEST(ObsHistogram, CountSumMinMaxExact) {
  if (!enabled()) GTEST_SKIP() << "observability compiled out";
  Registry registry;
  Histogram& h = registry.histogram("lat");
  for (double v : {0.5, 1.5, 2.5, 8.0}) h.record(v);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 12.5);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 8.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 3.125);
}

TEST(ObsHistogram, QuantileWithinBucketResolution) {
  if (!enabled()) GTEST_SKIP() << "observability compiled out";
  Registry registry;
  Histogram& h = registry.histogram("q");
  // 1..1000: true p50 = ~500.5, p99 = ~990.  Bucket resolution is ~9%
  // relative (8 sub-buckets per octave), so assert within 10%.
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_NEAR(snap.quantile(0.5), 500.5, 0.10 * 500.5);
  EXPECT_NEAR(snap.quantile(0.99), 990.0, 0.10 * 990.0);
  // Quantiles are clamped into the observed range and monotone in q.
  EXPECT_GE(snap.quantile(0.0), snap.min);
  EXPECT_LE(snap.quantile(1.0), snap.max);
  EXPECT_LE(snap.quantile(0.5), snap.quantile(0.95));
  EXPECT_LE(snap.quantile(0.95), snap.quantile(0.999));
}

TEST(ObsHistogram, ExtremeValuesLandInOverflowBuckets) {
  if (!enabled()) GTEST_SKIP() << "observability compiled out";
  Registry registry;
  Histogram& h = registry.histogram("x");
  h.record(0.0);     // at-or-below-range: underflow bucket
  h.record(-3.0);    // negative: underflow bucket
  h.record(1e300);   // far above range: overflow bucket
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.min, -3.0);
  EXPECT_DOUBLE_EQ(snap.max, 1e300);
  // Quantiles stay inside [min, max] even for out-of-range mass.
  EXPECT_GE(snap.quantile(0.5), snap.min);
  EXPECT_LE(snap.quantile(0.999), snap.max);
}

TEST(ObsHistogram, ResetClearsEverything) {
  if (!enabled()) GTEST_SKIP() << "observability compiled out";
  Registry registry;
  registry.counter("c").add(7);
  registry.gauge("g").set(1.0);
  registry.histogram("h").record(2.0);
  registry.reset();
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters[0].second, 0u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 0.0);
  EXPECT_EQ(snap.histograms[0].second.count, 0u);
}

TEST(ObsScopedSpan, RecordsNonNegativeDuration) {
  if (!enabled()) GTEST_SKIP() << "observability compiled out";
  Registry registry;
  Histogram& h = registry.histogram("span");
  { const ScopedSpan span(h); }
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GE(snap.min, 0.0);
}

TEST(ObsReport, JsonContainsRegisteredMetrics) {
  if (!enabled()) GTEST_SKIP() << "observability compiled out";
  Registry registry;
  registry.counter("events").add(3);
  registry.gauge("depth").set(5.0);
  registry.histogram("seconds").record(0.25);
  const RunReport report = RunReport::capture(registry, "unit-test");
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"schema\": \"forktail.run_report.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"tool\": \"unit-test\""), std::string::npos);
  EXPECT_NE(json.find("\"events\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"depth\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"seconds\""), std::string::npos);
}

TEST(ObsReport, PrometheusExposition) {
  if (!enabled()) GTEST_SKIP() << "observability compiled out";
  Registry registry;
  registry.counter("fjsim.runs").add(2);
  registry.histogram("run.seconds").record(0.5);
  const std::string prom =
      RunReport::capture(registry, "unit-test").to_prometheus();
  EXPECT_NE(prom.find("# TYPE forktail_fjsim_runs counter"),
            std::string::npos);
  EXPECT_NE(prom.find("forktail_fjsim_runs 2"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE forktail_run_seconds histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("forktail_run_seconds_count 1"), std::string::npos);
}

TEST(ObsReport, WriteDispatchesOnExtension) {
  if (!enabled()) GTEST_SKIP() << "observability compiled out";
  Registry registry;
  registry.counter("c").add(1);
  const RunReport report = RunReport::capture(registry, "t");
  const std::string dir = ::testing::TempDir();
  report.write(dir + "obs_report_test.json");
  report.write(dir + "obs_report_test.prom");
  EXPECT_THROW(report.write("/nonexistent-dir/x.json"), std::runtime_error);
}

}  // namespace
}  // namespace forktail::obs
