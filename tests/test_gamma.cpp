#include "dist/gamma.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dist/basic.hpp"
#include "stats/ecdf.hpp"
#include "stats/welford.hpp"
#include "util/rng.hpp"

namespace forktail::dist {
namespace {

TEST(RegularizedGammaP, KnownValues) {
  // P(1, x) = 1 - e^{-x}.
  for (double x : {0.5, 1.0, 3.0}) {
    EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
  // P(a, a) ~ 0.5 for large a (median near the mean).
  EXPECT_NEAR(regularized_gamma_p(100.0, 100.0), 0.5133, 1e-3);
  // Chi-square(2k) relation: P(0.5, 0.5) = erf(1/sqrt(2))... spot value.
  EXPECT_NEAR(regularized_gamma_p(0.5, 0.5), 0.6826894921, 1e-9);
}

TEST(RegularizedGammaP, BoundariesAndMonotone) {
  EXPECT_DOUBLE_EQ(regularized_gamma_p(2.0, 0.0), 0.0);
  EXPECT_NEAR(regularized_gamma_p(2.0, 100.0), 1.0, 1e-12);
  double prev = 0.0;
  for (double x = 0.1; x < 20.0; x += 0.1) {
    const double p = regularized_gamma_p(3.0, x);
    EXPECT_GE(p, prev);
    prev = p;
  }
  EXPECT_THROW(regularized_gamma_p(0.0, 1.0), std::invalid_argument);
}

TEST(Gamma, MomentsClosedForm) {
  Gamma g(3.0, 2.0);
  EXPECT_DOUBLE_EQ(g.mean(), 6.0);
  EXPECT_DOUBLE_EQ(g.variance(), 12.0);
  EXPECT_DOUBLE_EQ(g.moment(3), 2.0 * 2.0 * 2.0 * 3.0 * 4.0 * 5.0);
}

TEST(Gamma, FromMeanCvRoundTrip) {
  for (double cv : {0.3, 0.7, 1.0, 1.8}) {
    const Gamma g = Gamma::from_mean_cv(4.22, cv);
    EXPECT_NEAR(g.mean(), 4.22, 1e-12) << "cv=" << cv;
    EXPECT_NEAR(g.cv(), cv, 1e-12) << "cv=" << cv;
  }
}

TEST(Gamma, ShapeOneIsExponential) {
  Gamma g(1.0, 4.22);
  Exponential e(4.22);
  for (double x : {1.0, 4.22, 20.0}) {
    EXPECT_NEAR(g.cdf(x), e.cdf(x), 1e-12);
  }
  EXPECT_NEAR(g.moment(3), e.moment(3), 1e-9);
}

class GammaSampling : public ::testing::TestWithParam<double> {};

TEST_P(GammaSampling, MatchesAnalyticMomentsAndCdf) {
  const double cv = GetParam();
  const Gamma g = Gamma::from_mean_cv(1.0, cv);
  util::Rng rng(17);
  stats::RawMoments m;
  std::vector<double> samples;
  samples.reserve(200000);
  for (int i = 0; i < 200000; ++i) {
    const double x = g.sample(rng);
    ASSERT_GT(x, 0.0);
    m.add(x);
    samples.push_back(x);
  }
  EXPECT_NEAR(m.moment(1), g.moment(1), 0.02 * g.moment(1));
  EXPECT_NEAR(m.moment(2), g.moment(2), 0.05 * g.moment(2));
  stats::Ecdf e(samples);
  EXPECT_LT(e.ks_distance([&](double x) { return g.cdf(x); }), 0.01);
}

INSTANTIATE_TEST_SUITE_P(CvGrid, GammaSampling,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0));

TEST(Gamma, LstMatchesClosedFormAndMoments) {
  const Gamma g(2.5, 1.3);
  EXPECT_TRUE(g.has_lst());
  EXPECT_NEAR(g.lst({0.0, 0.0}).real(), 1.0, 1e-12);
  // -d/ds LST at 0 = mean (finite difference).
  const double h = 1e-7;
  EXPECT_NEAR((1.0 - g.lst({h, 0.0}).real()) / h, g.mean(), 1e-4);
  // Closed form at a real point.
  EXPECT_NEAR(g.lst({0.7, 0.0}).real(), std::pow(1.0 + 1.3 * 0.7, -2.5), 1e-12);
}

TEST(Gamma, Validation) {
  EXPECT_THROW(Gamma(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Gamma(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Gamma::from_mean_cv(-1.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace forktail::dist
