#include "cloud/spark_cluster.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/predictor.hpp"
#include "stats/percentile.hpp"

namespace forktail::cloud {
namespace {

CloudConfig base(double lambda) {
  CloudConfig c;
  c.num_workers = 32;
  c.lambda = lambda;
  c.num_requests = 30000;
  c.seed = 91;
  return c;
}

TEST(Table1, ReproducesPaperLoadEstimates) {
  // Table 1 of the paper, first/last columns for both cluster sizes.
  EXPECT_NEAR(table1_load_percent(3.0, 32), 48.33, 0.01);
  EXPECT_NEAR(table1_load_percent(5.5, 32), 88.61, 0.02);
  EXPECT_NEAR(table1_load_percent(3.0, 64), 50.04, 0.01);
  EXPECT_NEAR(table1_load_percent(5.5, 64), 91.74, 0.02);
}

TEST(CloudCaseStudy, ProducesExpectedShapes) {
  const auto r = run_cloud_case_study(base(3.0));
  EXPECT_EQ(r.responses.size(), 30000u);
  EXPECT_EQ(r.worker_task_stats.size(), 32u);
  EXPECT_EQ(r.worker_service_stats.size(), 32u);
  EXPECT_NEAR(r.estimated_load, 3.0 * 0.1611, 1e-9);
}

TEST(CloudCaseStudy, MaxServiceMeanMatchesTable1Basis) {
  const auto r = run_cloud_case_study(base(3.0));
  double max_mean = 0.0;
  for (const auto& w : r.worker_service_stats) {
    max_mean = std::max(max_mean, w.mean());
  }
  // At low load (no locality misses) the max measured mean scan time must
  // sit at the calibrated 161.1 ms.
  EXPECT_NEAR(max_mean, 0.1611, 0.01);
}

TEST(CloudCaseStudy, LatencyGrowsWithArrivalRate) {
  const auto lo = run_cloud_case_study(base(3.0));
  const auto hi = run_cloud_case_study(base(5.5));
  EXPECT_LT(stats::percentile(lo.responses, 99.0),
            stats::percentile(hi.responses, 99.0));
}

TEST(CloudCaseStudy, InhomogeneityGrowsWithLoad) {
  // The paper's key observation: worker response-time statistics diverge
  // at high load (locality misses).  Measure the spread of worker means.
  auto spread = [](const CloudResult& r) {
    double lo = 1e300;
    double hi = 0.0;
    for (const auto& w : r.worker_task_stats) {
      lo = std::min(lo, w.mean());
      hi = std::max(hi, w.mean());
    }
    return hi / lo;
  };
  const auto low_load = run_cloud_case_study(base(3.0));
  const auto high_load = run_cloud_case_study(base(5.5));
  EXPECT_GT(spread(high_load), spread(low_load));
}

TEST(CloudCaseStudy, InhomogeneousModelTracksBetterAtHighLoad) {
  // Fig. 9's conclusion: the inhomogeneous prediction (Eq. 4) stays
  // accurate across the load range while the homogeneous one (Eq. 6)
  // degrades as load grows (pooled statistics hide the slow workers).
  auto signed_errors = [](double lambda) {
    const auto r = run_cloud_case_study(base(lambda));
    const double measured = stats::percentile(r.responses, 99.0);
    std::vector<core::TaskStats> nodes;
    for (const auto& w : r.worker_task_stats) {
      nodes.push_back({w.mean(), w.variance()});
    }
    const double inhom = core::inhomogeneous_quantile(nodes, 99.0);
    const double hom = core::homogeneous_quantile(
        {r.pooled_task_stats.mean(), r.pooled_task_stats.variance()},
        static_cast<double>(r.worker_task_stats.size()), 99.0);
    return std::pair{(inhom - measured) / measured, (hom - measured) / measured};
  };
  const auto [inhom_low, hom_low] = signed_errors(3.5);
  const auto [inhom_high, hom_high] = signed_errors(5.5);
  // Inhomogeneous: bounded error at both load levels.
  EXPECT_LT(std::fabs(inhom_low), 0.20);
  EXPECT_LT(std::fabs(inhom_high), 0.20);
  // Homogeneous: drifts downward (underestimates) as load rises.
  EXPECT_LT(hom_high, hom_low - 0.02);
  EXPECT_LT(hom_high, inhom_high);
}

TEST(CloudCaseStudy, DeterministicUnderSeed) {
  const auto a = run_cloud_case_study(base(4.0));
  const auto b = run_cloud_case_study(base(4.0));
  EXPECT_DOUBLE_EQ(a.responses[17], b.responses[17]);
}

TEST(CloudCaseStudy, Validation) {
  auto c = base(3.0);
  c.num_workers = 0;
  EXPECT_THROW(run_cloud_case_study(c), std::invalid_argument);
  c = base(0.0);
  EXPECT_THROW(run_cloud_case_study(c), std::invalid_argument);
}

}  // namespace
}  // namespace forktail::cloud
