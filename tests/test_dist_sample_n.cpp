// sample_n contract (dist/distribution.hpp): drawing a block must consume
// the RNG stream exactly as the same number of successive sample() calls,
// bit for bit.  The batched replay engine relies on this to stay
// bit-identical to the scalar path, so every concrete distribution's
// devirtualized loop is checked here -- including across block boundaries
// that fall mid-stream.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "dist/basic.hpp"
#include "dist/distribution.hpp"
#include "dist/empirical.hpp"
#include "dist/factory.hpp"
#include "dist/gamma.hpp"
#include "dist/google_leaf.hpp"
#include "dist/heavy.hpp"
#include "util/rng.hpp"

namespace forktail::dist {
namespace {

// Exact (bitwise) comparison: EXPECT_EQ on doubles would conflate 0.0 with
// -0.0; comparing the bit patterns asserts the streams are the same stream.
void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b, const char* name) {
  ASSERT_EQ(a.size(), b.size()) << name;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << name << " diverges at draw " << i;
  }
}

void check_sample_n(const Distribution& d, const char* name) {
  constexpr std::size_t kN = 2000;
  util::Rng scalar_rng(42);
  util::Rng block_rng(42);

  std::vector<double> scalar(kN);
  for (double& x : scalar) x = d.sample(scalar_rng);

  // Uneven block sizes (including 1) so boundaries land mid-stream; the
  // tail call covers a block larger than any earlier one.
  std::vector<double> blocked(kN);
  const std::size_t chunks[] = {1, 2, 3, 5, 125, 256, 1000};
  std::span<double> out(blocked);
  std::size_t off = 0;
  for (const std::size_t c : chunks) {
    d.sample_n(block_rng, out.subspan(off, c));
    off += c;
  }
  d.sample_n(block_rng, out.subspan(off));

  expect_bitwise_equal(scalar, blocked, name);
  // The generators must also END in the same state: equal outputs with a
  // desynchronized stream would break the next consumer.
  EXPECT_EQ(scalar_rng.uniform(), block_rng.uniform()) << name << " state";
}

TEST(SampleN, Exponential) { check_sample_n(Exponential(4.22), "Exponential"); }

TEST(SampleN, Erlang) { check_sample_n(Erlang(3, 2.0), "Erlang"); }

TEST(SampleN, HyperExp2) {
  check_sample_n(HyperExp2(0.6, 1.0, 0.125), "HyperExp2");
}

TEST(SampleN, Deterministic) {
  check_sample_n(Deterministic(3.5), "Deterministic");
}

TEST(SampleN, UniformReal) {
  check_sample_n(UniformReal(1.0, 5.0), "UniformReal");
}

TEST(SampleN, Weibull) {
  check_sample_n(Weibull::from_mean_cv(4.22, 1.5), "Weibull");
}

TEST(SampleN, TruncatedPareto) {
  check_sample_n(TruncatedPareto(2.0119, 2.14, 276.6), "TruncPareto");
}

TEST(SampleN, LogNormal) {
  // Box-Muller caches one normal inside the Rng, so odd/even block
  // boundaries exercise the carried-cache case.
  check_sample_n(LogNormal::from_mean_cv(4.22, 1.2), "LogNormal");
}

TEST(SampleN, TruncatedNormal) {
  // Rejection sampling consumes a data-dependent number of uniforms per
  // draw; the contract must hold regardless.
  check_sample_n(TruncatedNormal(4.0, 8.0, 0.0), "TruncNormal");
}

TEST(SampleN, Gamma) {
  // Marsaglia-Tsang is also rejection-based, and switches algorithm at
  // shape < 1; cover both regimes.
  check_sample_n(Gamma(0.7, 2.0), "Gamma(shape<1)");
  check_sample_n(Gamma(3.4, 0.5), "Gamma(shape>1)");
}

TEST(SampleN, Empirical) {
  check_sample_n(Empirical({0.0, 0.25, 0.5, 0.9, 1.0},
                           {1.0, 2.0, 2.0, 7.5, 30.0}),
                 "Empirical");
}

TEST(SampleN, GoogleLeaf) { check_sample_n(google_leaf(), "GoogleLeaf"); }

// Every distribution reachable through the factory registry, by name: a new
// roster entry cannot ship without the block/scalar stream pin.
TEST(SampleN, FactoryRoster) {
  const auto names = named_distributions();
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    check_sample_n(*make_named(name), name.c_str());
  }
}

// A distribution that does NOT override sample_n gets the base-class loop,
// which must satisfy the same contract.
class BaseImplOnly final : public Distribution {
 public:
  double sample(util::Rng& rng) const override {
    const double u = rng.uniform();
    return u * u;  // any deterministic transform of the stream
  }
  double moment(int) const override { return 0.0; }
  double cdf(double) const override { return 0.0; }
  std::string name() const override { return "BaseImplOnly"; }
};

TEST(SampleN, BaseImplementation) {
  check_sample_n(BaseImplOnly(), "BaseImplOnly");
}

TEST(SampleN, EmptySpanIsANoOp) {
  const Exponential d(1.0);
  util::Rng a(7);
  util::Rng b(7);
  d.sample_n(a, std::span<double>{});
  EXPECT_EQ(a.uniform(), b.uniform());
}

}  // namespace
}  // namespace forktail::dist
