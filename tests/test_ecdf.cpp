#include "stats/ecdf.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace forktail::stats {
namespace {

TEST(Ecdf, StepFunctionValues) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  Ecdf e(v);
  EXPECT_DOUBLE_EQ(e.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e.cdf(99.0), 1.0);
}

TEST(Ecdf, MomentsMatchSample) {
  std::vector<double> v = {2.0, 4.0, 6.0};
  Ecdf e(v);
  EXPECT_DOUBLE_EQ(e.mean(), 4.0);
  EXPECT_NEAR(e.variance(), 8.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(e.min(), 2.0);
  EXPECT_DOUBLE_EQ(e.max(), 6.0);
}

TEST(Ecdf, QuantileInterpolates) {
  std::vector<double> v = {0.0, 10.0};
  Ecdf e(v);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 10.0);
}

TEST(Ecdf, RejectsEmptyAndBadQuantile) {
  std::vector<double> empty;
  EXPECT_THROW(Ecdf{empty}, std::invalid_argument);
  std::vector<double> v = {1.0};
  Ecdf e(v);
  EXPECT_THROW(e.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(e.quantile(1.1), std::invalid_argument);
}

TEST(Ecdf, KsDistanceToTrueModelIsSmall) {
  util::Rng rng(8);
  std::vector<double> v(50000);
  for (auto& x : v) x = rng.exponential(1.0);
  Ecdf e(v);
  const double ks = e.ks_distance(
      [](double x) { return x <= 0 ? 0.0 : 1.0 - std::exp(-x); });
  // DKW: with n = 5e4, KS distance ~ 1.36/sqrt(n) ~ 0.006 at 95%.
  EXPECT_LT(ks, 0.012);
}

TEST(Ecdf, KsDistanceToWrongModelIsLarge) {
  util::Rng rng(9);
  std::vector<double> v(20000);
  for (auto& x : v) x = rng.exponential(1.0);
  Ecdf e(v);
  // Compare against a uniform[0,1] CDF: grossly wrong.
  const double ks = e.ks_distance([](double x) {
    if (x <= 0) return 0.0;
    if (x >= 1) return 1.0;
    return x;
  });
  EXPECT_GT(ks, 0.2);
}

}  // namespace
}  // namespace forktail::stats
