#include "fjsim/node.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "dist/basic.hpp"

namespace forktail::fjsim {
namespace {

struct Completion {
  std::uint64_t id;
  double arrival;
  double done;
};

std::vector<Completion> drive(FastNode& node, const std::vector<double>& arrivals) {
  std::vector<Completion> out;
  auto cb = [&](std::uint64_t id, double arrival, double done) {
    out.push_back({id, arrival, done});
  };
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    node.submit_task(arrivals[i], i, cb);
  }
  node.flush(cb);
  return out;
}

TEST(FastNode, SingleServerLindley) {
  dist::Deterministic service(2.0);
  FastNode node(&service, 1, Policy::kSingle, util::Rng(1));
  const auto c = drive(node, {0.0, 1.0, 10.0});
  ASSERT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c[0].done, 2.0);
  EXPECT_DOUBLE_EQ(c[1].done, 4.0);
  EXPECT_DOUBLE_EQ(c[2].done, 12.0);
}

TEST(FastNode, RoundRobinUsesAllReplicas) {
  dist::Deterministic service(3.0);
  FastNode node(&service, 3, Policy::kRoundRobin, util::Rng(2));
  const auto c = drive(node, {0.0, 0.0, 0.0, 0.0});
  ASSERT_EQ(c.size(), 4u);
  // First three land on distinct idle servers; the fourth queues on server 0.
  EXPECT_DOUBLE_EQ(c[0].done, 3.0);
  EXPECT_DOUBLE_EQ(c[1].done, 3.0);
  EXPECT_DOUBLE_EQ(c[2].done, 3.0);
  EXPECT_DOUBLE_EQ(c[3].done, 6.0);
}

TEST(FastNode, CompletionNeverBeforeArrival) {
  dist::Exponential service(2.0);
  FastNode node(&service, 3, Policy::kRoundRobin, util::Rng(7));
  util::Rng arr(8);
  double t = 0.0;
  auto cb = [&](std::uint64_t, double arrival, double done) {
    ASSERT_GE(done, arrival);
  };
  for (std::uint64_t i = 0; i < 5000; ++i) {
    t += arr.exponential(1.0);
    node.submit_task(t, i, cb);
  }
  node.flush(cb);
}

TEST(FastNode, EveryTaskCompletesExactlyOnce) {
  dist::Exponential service(1.0);
  FastNode node(&service, 3, Policy::kRoundRobin, util::Rng(5));
  std::vector<int> seen(1000, 0);
  auto cb = [&](std::uint64_t id, double, double) { ++seen[id]; };
  util::Rng arr(6);
  double t = 0.0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    t += arr.exponential(0.5);
    node.submit_task(t, i, cb);
  }
  node.flush(cb);
  for (int s : seen) ASSERT_EQ(s, 1);
}

TEST(FastNode, ResetClearsState) {
  dist::Deterministic service(5.0);
  FastNode node(&service, 1, Policy::kSingle, util::Rng(9));
  (void)drive(node, {0.0, 0.0});
  node.reset();
  const auto c = drive(node, {0.0});
  ASSERT_EQ(c.size(), 1u);
  EXPECT_DOUBLE_EQ(c[0].done, 5.0);
}

TEST(FastNode, RedundantPolicyRejected) {
  dist::Deterministic service(1.0);
  EXPECT_THROW(FastNode(&service, 2, Policy::kRedundant, util::Rng(10)),
               std::invalid_argument);
}

TEST(FastNode, SinglePolicyRequiresOneReplica) {
  dist::Deterministic service(1.0);
  EXPECT_THROW(FastNode(&service, 2, Policy::kSingle, util::Rng(11)),
               std::invalid_argument);
}

TEST(FastNode, ExplicitServiceSubmission) {
  FastNode node(nullptr, 2, Policy::kRoundRobin, util::Rng(11));
  std::vector<Completion> out;
  auto cb = [&](std::uint64_t id, double arrival, double done) {
    out.push_back({id, arrival, done});
  };
  node.submit_task_explicit(0.0, 4.0, 0, cb);
  node.submit_task_explicit(0.0, 2.0, 1, cb);
  node.flush(cb);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].done, 4.0);
  EXPECT_DOUBLE_EQ(out[1].done, 2.0);
}

}  // namespace
}  // namespace forktail::fjsim
