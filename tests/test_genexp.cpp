#include "core/genexp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/welford.hpp"
#include "util/rng.hpp"

namespace forktail::core {
namespace {

TEST(GenExp, AlphaOneIsExponential) {
  GenExp g(1.0, 4.22);
  EXPECT_NEAR(g.mean(), 4.22, 1e-12);
  EXPECT_NEAR(g.variance(), 4.22 * 4.22, 1e-9);
  EXPECT_NEAR(g.cdf(4.22), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(g.quantile(0.99), -4.22 * std::log(0.01), 1e-9);
}

TEST(GenExp, RejectsBadParameters) {
  EXPECT_THROW(GenExp(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(GenExp(1.0, -1.0), std::invalid_argument);
}

// Fit round-trip: moments -> (alpha, beta) -> moments, across the whole
// practical (mean, CV) plane.
class GenExpFitRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(GenExpFitRoundTrip, RecoversMoments) {
  const auto [mean, cv] = GetParam();
  const double variance = (cv * mean) * (cv * mean);
  const GenExp g = GenExp::fit_moments(mean, variance);
  EXPECT_NEAR(g.mean(), mean, 1e-8 * mean);
  EXPECT_NEAR(g.variance(), variance, 1e-7 * variance);
}

INSTANTIATE_TEST_SUITE_P(
    MeanCvGrid, GenExpFitRoundTrip,
    ::testing::Combine(::testing::Values(0.01, 1.0, 42.0, 5000.0),
                       ::testing::Values(0.15, 0.5, 1.0, 1.5, 3.0, 8.0)));

TEST(GenExpFit, CvOneGivesAlphaOne) {
  const GenExp g = GenExp::fit_moments(10.0, 100.0);
  EXPECT_NEAR(g.alpha(), 1.0, 1e-8);
  EXPECT_NEAR(g.beta(), 10.0, 1e-7);
}

TEST(GenExpFit, LightTailGivesLargeAlpha) {
  // CV < 1 (light tail) requires alpha > 1.
  const GenExp g = GenExp::fit_moments(10.0, 25.0);
  EXPECT_GT(g.alpha(), 1.0);
}

TEST(GenExpFit, HeavyTailGivesSmallAlpha) {
  const GenExp g = GenExp::fit_moments(10.0, 400.0);
  EXPECT_LT(g.alpha(), 1.0);
}

TEST(GenExpFit, DegenerateLowCvClampsInsteadOfThrowing) {
  // Near-deterministic measurements (CV ~ 0.1%) exceed the fit's bracket;
  // the fit must clamp to the boundary alpha and still honour the mean.
  const GenExp g = GenExp::fit_moments(100.0, 0.01);  // CV = 0.1%
  EXPECT_NEAR(g.mean(), 100.0, 1e-6 * 100.0);
  EXPECT_GT(g.alpha(), 1e10);  // boundary fit
  // Quantiles remain finite and tightly concentrated around the mean.
  const double q99 = g.quantile(0.99);
  EXPECT_TRUE(std::isfinite(q99));
  EXPECT_NEAR(q99, 100.0, 25.0);
}

TEST(GenExpFit, DegenerateHighCvClampsInsteadOfThrowing) {
  const GenExp g = GenExp::fit_moments(1.0, 1e30);  // absurd variance
  EXPECT_TRUE(std::isfinite(g.quantile(0.99)));
  EXPECT_LT(g.alpha(), 1e-12);
  EXPECT_NEAR(g.mean(), 1.0, 1e-6);
}

TEST(GenExpFit, RejectsNonPositiveMoments) {
  EXPECT_THROW(GenExp::fit_moments(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(GenExp::fit_moments(1.0, 0.0), std::invalid_argument);
}

TEST(GenExp, QuantileInvertsCdf) {
  const GenExp g(2.5, 7.0);
  for (double q : {0.001, 0.1, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(g.cdf(g.quantile(q)), q, 1e-10) << "q=" << q;
  }
}

TEST(GenExp, MaxQuantileInvertsMaxCdf) {
  const GenExp g(0.8, 12.0);
  for (double k : {1.0, 10.0, 100.0, 1000.0}) {
    const double x = g.max_quantile(0.99, k);
    EXPECT_NEAR(g.max_cdf(x, k), 0.99, 1e-9) << "k=" << k;
  }
}

TEST(GenExp, MaxQuantileGrowsLogarithmicallyInK) {
  const GenExp g(1.0, 1.0);
  const double x10 = g.max_quantile(0.99, 10.0);
  const double x100 = g.max_quantile(0.99, 100.0);
  const double x1000 = g.max_quantile(0.99, 1000.0);
  EXPECT_LT(x10, x100);
  EXPECT_LT(x100, x1000);
  // Gumbel-like growth: roughly constant increments per decade of k.
  EXPECT_NEAR(x1000 - x100, x100 - x10, 0.15 * (x100 - x10));
}

TEST(GenExp, PdfIntegratesToCdf) {
  const GenExp g(3.0, 2.0);
  double acc = 0.0;
  const double dx = 1e-3;
  for (double x = dx / 2; x < 10.0; x += dx) acc += g.pdf(x) * dx;
  EXPECT_NEAR(acc, g.cdf(10.0), 1e-4);
}

TEST(GenExp, SamplingMatchesMoments) {
  const GenExp g = GenExp::fit_moments(5.0, 30.0);
  util::Rng rng(55);
  stats::Welford w;
  for (int i = 0; i < 300000; ++i) w.add(g.sample(rng));
  EXPECT_NEAR(w.mean(), 5.0, 0.05);
  EXPECT_NEAR(w.variance(), 30.0, 0.7);
}

TEST(GenExp, NumericallyStableAtHugeKAlpha) {
  // k alpha ~ 1e6: naive 1 - q^{1/(k a)} underflows; expm1 path must hold.
  const GenExp g(1.0, 1.0);
  const double x = g.max_quantile(0.99, 1e6);
  EXPECT_TRUE(std::isfinite(x));
  EXPECT_NEAR(g.max_cdf(x, 1e6), 0.99, 1e-6);
  // x ~ ln(k/ -ln q) for exponential: sanity of magnitude.
  EXPECT_GT(x, std::log(1e6));
  EXPECT_LT(x, std::log(1e6) + 10.0);
}

TEST(GenExp, ToStringContainsParameters) {
  const GenExp g(2.0, 3.0);
  const std::string s = g.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
}

}  // namespace
}  // namespace forktail::core
