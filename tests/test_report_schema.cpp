// Schema regression tests for the two JSON artifacts downstream tooling
// parses: the tracked BENCH_replay.json performance baseline and the
// observability RunReport (forktail.run_report.v1).  A key disappearing or
// being renamed is an API break for dashboards -- these tests pin the key
// sets so such a change has to be made deliberately (and versioned).
//
// The validation uses a minimal recursive-descent JSON reader local to
// this file: enough to walk objects/arrays and extract key sets, with no
// third-party dependency.
#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/report.hpp"

#ifndef FORKTAIL_SOURCE_DIR
#define FORKTAIL_SOURCE_DIR "."
#endif

namespace forktail {
namespace {

// ------------------------------------------------------- mini JSON reader

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  double number = 0.0;
  bool boolean = false;
  std::string text;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;

  std::set<std::string> keys() const {
    std::set<std::string> out;
    for (const auto& [k, v] : fields) out.insert(k);
    return out;
  }
  const JsonValue& at(const std::string& key) const {
    const auto it = fields.find(key);
    if (it == fields.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string text) : text_(std::move(text)) {}

  JsonValue parse() {
    const JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  std::string text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + why);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string_value();
      case 't':
      case 'f':
        return boolean();
      case 'n':
        return null();
      default:
        return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      const std::string key = raw_string();
      expect(':');
      v.fields.emplace(key, value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string raw_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) fail("bad escape");
      }
      out.push_back(text_[pos_++]);
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    v.text = raw_string();
    return v;
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue null() {
    if (text_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    return {};
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }
};

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

// ------------------------------------------------ BENCH_replay.json schema

TEST(ReportSchema, BenchReplayBaselineKeySet) {
  const JsonValue doc = JsonReader(read_file(std::string(FORKTAIL_SOURCE_DIR) +
                                             "/BENCH_replay.json"))
                            .parse();
  const std::set<std::string> expected_top = {
      "benchmark",       "scale",          "seed",
      "reps",            "threads",        "default_batch",
      "scalar_pipeline", "batched_pipeline", "peak_rss_kib",
      "workloads"};
  EXPECT_EQ(doc.keys(), expected_top);
  EXPECT_EQ(doc.at("benchmark").text, "bench_replay");

  const JsonValue& workloads = doc.at("workloads");
  ASSERT_EQ(workloads.kind, JsonValue::Kind::kArray);
  ASSERT_FALSE(workloads.items.empty());
  const std::set<std::string> expected_workload = {
      "name",   "kind",    "tasks_per_run", "p99_response",
      "paths_identical", "scalar", "batched",      "speedup_p50"};
  const std::set<std::string> expected_path = {
      "seconds_p50", "tasks_per_sec_p50", "tasks_per_sec_p95"};
  for (const JsonValue& w : workloads.items) {
    EXPECT_EQ(w.keys(), expected_workload) << "workload " << w.at("name").text;
    EXPECT_EQ(w.at("scalar").keys(), expected_path);
    EXPECT_EQ(w.at("batched").keys(), expected_path);
    // The contract the benchmark enforces at runtime must hold in the
    // tracked baseline too.
    EXPECT_TRUE(w.at("paths_identical").boolean)
        << "workload " << w.at("name").text;
    EXPECT_GT(w.at("speedup_p50").number, 0.0);
  }
}

// ------------------------------------------------- RunReport v1 schema

TEST(ReportSchema, RunReportV1KeySet) {
  obs::Registry registry;
  registry.counter("events").add(5);
  registry.gauge("depth").set(2.0);
  obs::Histogram& h = registry.histogram("latency");
  for (double v : {0.001, 0.002, 0.004, 0.1}) h.record(v);

  const obs::RunReport report = obs::RunReport::capture(registry, "schema-test");
  const JsonValue doc = JsonReader(report.to_json()).parse();

  const std::set<std::string> expected_top = {
      "schema",   "version", "tool",      "observability_enabled",
      "counters", "gauges",  "histograms"};
  EXPECT_EQ(doc.keys(), expected_top);
  EXPECT_EQ(doc.at("schema").text, "forktail.run_report.v1");
  EXPECT_EQ(doc.at("version").number, obs::kRunReportVersion);
  EXPECT_EQ(doc.at("tool").text, "schema-test");

  if (!obs::enabled()) {
    EXPECT_FALSE(doc.at("observability_enabled").boolean);
    return;  // stub registry carries no metrics
  }
  EXPECT_TRUE(doc.at("observability_enabled").boolean);
  EXPECT_EQ(doc.at("counters").at("events").number, 5.0);
  EXPECT_EQ(doc.at("gauges").at("depth").number, 2.0);

  const JsonValue& hist = doc.at("histograms").at("latency");
  const std::set<std::string> expected_hist = {
      "count", "sum", "mean", "min", "max", "p50", "p95", "p99", "p999",
      "buckets"};
  EXPECT_EQ(hist.keys(), expected_hist);
  EXPECT_EQ(hist.at("count").number, 4.0);
  const JsonValue& buckets = hist.at("buckets");
  ASSERT_EQ(buckets.kind, JsonValue::Kind::kArray);
  ASSERT_FALSE(buckets.items.empty());
  for (const JsonValue& b : buckets.items) {
    // Each bucket is a [lo, hi, count] triple with lo < hi.
    ASSERT_EQ(b.items.size(), 3u);
    EXPECT_LT(b.items[0].number, b.items[1].number);
    EXPECT_GE(b.items[2].number, 1.0);
  }
}

TEST(ReportSchema, RunReportJsonIsParseableAfterRealRun) {
  // End-to-end: snapshot the GLOBAL registry (whatever other tests have
  // recorded into it) and require the document to stay well-formed.
  const obs::RunReport report =
      obs::RunReport::capture(obs::Registry::global(), "forktail_tests");
  EXPECT_NO_THROW({
    const JsonValue doc = JsonReader(report.to_json()).parse();
    EXPECT_EQ(doc.at("schema").text, "forktail.run_report.v1");
  });
}

}  // namespace
}  // namespace forktail
