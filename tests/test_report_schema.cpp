// Schema regression tests for the two JSON artifacts downstream tooling
// parses: the tracked BENCH_replay.json performance baseline and the
// observability RunReport (forktail.run_report.v1).  A key disappearing or
// being renamed is an API break for dashboards -- these tests pin the key
// sets so such a change has to be made deliberately (and versioned).
//
// Documents are walked with util::Json via the shared test helper (the
// in-test reader this file used to carry was promoted to src/util/json).
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "support/json_test.hpp"
#include "util/json.hpp"

#ifndef FORKTAIL_SOURCE_DIR
#define FORKTAIL_SOURCE_DIR "."
#endif

namespace forktail {
namespace {

using test_support::parse_json_file;
using util::Json;

// ------------------------------------------------ BENCH_replay.json schema

TEST(ReportSchema, BenchReplayBaselineKeySet) {
  const Json doc = parse_json_file(std::string(FORKTAIL_SOURCE_DIR) +
                                   "/BENCH_replay.json");
  const std::set<std::string> expected_top = {
      "benchmark",       "scale",          "seed",
      "reps",            "threads",        "default_batch",
      "scalar_pipeline", "batched_pipeline", "vector_pipeline",
      "simd_dispatch",   "peak_rss_kib",   "workloads"};
  EXPECT_EQ(doc.keys(), expected_top);
  EXPECT_EQ(doc.at("benchmark").as_string(), "bench_replay");

  const Json& workloads = doc.at("workloads");
  ASSERT_TRUE(workloads.is_array());
  ASSERT_FALSE(workloads.items().empty());
  const std::set<std::string> expected_workload = {
      "name",
      "kind",
      "tasks_per_run",
      "p99_response",
      "paths_identical",
      "vector_paths_identical",
      "vector_vs_batched_p99_rel",
      "scalar",
      "batched",
      "vector",
      "vector_t2",
      "speedup_p50",
      "speedup_vector_p50",
      "speedup_vector_t2_p50"};
  const std::set<std::string> expected_path = {
      "seconds_p50", "tasks_per_sec_p50", "tasks_per_sec_p95"};
  for (const Json& w : workloads.items()) {
    EXPECT_EQ(w.keys(), expected_workload) << "workload " << w.at("name").as_string();
    EXPECT_EQ(w.at("scalar").keys(), expected_path);
    EXPECT_EQ(w.at("batched").keys(), expected_path);
    EXPECT_EQ(w.at("vector").keys(), expected_path);
    EXPECT_EQ(w.at("vector_t2").keys(), expected_path);
    // The contracts the benchmark enforces at runtime must hold in the
    // tracked baseline too: scalar == batched bitwise, vector threads=1 ==
    // threads=2 bitwise, and the vector tail within the golden-change band
    // of the batched tail.
    EXPECT_TRUE(w.at("paths_identical").as_bool())
        << "workload " << w.at("name").as_string();
    EXPECT_TRUE(w.at("vector_paths_identical").as_bool())
        << "workload " << w.at("name").as_string();
    EXPECT_LE(std::abs(w.at("vector_vs_batched_p99_rel").as_number()), 0.15)
        << "workload " << w.at("name").as_string();
    EXPECT_GT(w.at("speedup_p50").as_number(), 0.0);
    EXPECT_GT(w.at("speedup_vector_p50").as_number(), 0.0);
    EXPECT_GT(w.at("speedup_vector_t2_p50").as_number(), 0.0);
  }
}

// ------------------------------------------------- RunReport v1 schema

TEST(ReportSchema, RunReportV1KeySet) {
  obs::Registry registry;
  registry.counter("events").add(5);
  registry.gauge("depth").set(2.0);
  obs::Histogram& h = registry.histogram("latency");
  for (double v : {0.001, 0.002, 0.004, 0.1}) h.record(v);

  const obs::RunReport report = obs::RunReport::capture(registry, "schema-test");
  const Json doc = Json::parse(report.to_json());

  const std::set<std::string> expected_top = {
      "schema",   "version", "tool",      "observability_enabled",
      "counters", "gauges",  "histograms"};
  EXPECT_EQ(doc.keys(), expected_top);
  EXPECT_EQ(doc.at("schema").as_string(), "forktail.run_report.v1");
  EXPECT_EQ(doc.at("version").as_number(), obs::kRunReportVersion);
  EXPECT_EQ(doc.at("tool").as_string(), "schema-test");

  if (!obs::enabled()) {
    EXPECT_FALSE(doc.at("observability_enabled").as_bool());
    return;  // stub registry carries no metrics
  }
  EXPECT_TRUE(doc.at("observability_enabled").as_bool());
  EXPECT_EQ(doc.at("counters").at("events").as_number(), 5.0);
  EXPECT_EQ(doc.at("gauges").at("depth").as_number(), 2.0);

  const Json& hist = doc.at("histograms").at("latency");
  const std::set<std::string> expected_hist = {
      "count", "sum", "mean", "min", "max", "p50", "p95", "p99", "p999",
      "buckets"};
  EXPECT_EQ(hist.keys(), expected_hist);
  EXPECT_EQ(hist.at("count").as_number(), 4.0);
  const Json& buckets = hist.at("buckets");
  ASSERT_TRUE(buckets.is_array());
  ASSERT_FALSE(buckets.items().empty());
  for (const Json& b : buckets.items()) {
    // Each bucket is a [lo, hi, count] triple with lo < hi.
    ASSERT_EQ(b.items().size(), 3u);
    EXPECT_LT(b.items()[0].as_number(), b.items()[1].as_number());
    EXPECT_GE(b.items()[2].as_number(), 1.0);
  }
}

// A scenario-labeled report (what `forktail run` emits) adds exactly one
// key; an empty label keeps the v1 key set above, so documents from older
// tools stay schema-identical.
TEST(ReportSchema, RunReportScenarioLabel) {
  obs::Registry registry;
  const obs::RunReport labeled =
      obs::RunReport::capture(registry, "forktail run", "subset-fixed-k100");
  const Json doc = Json::parse(labeled.to_json());
  const std::set<std::string> expected_top = {
      "schema",   "version", "tool",      "observability_enabled",
      "scenario", "counters", "gauges",  "histograms"};
  EXPECT_EQ(doc.keys(), expected_top);
  EXPECT_EQ(doc.at("scenario").as_string(), "subset-fixed-k100");

  const obs::RunReport unlabeled =
      obs::RunReport::capture(registry, "forktail run");
  EXPECT_FALSE(Json::parse(unlabeled.to_json()).contains("scenario"));
}

// The degraded flag mirrors the scenario-label rule: a degraded run adds
// exactly one key, and clean runs keep the v1 key set byte-compatible.
TEST(ReportSchema, RunReportDegradedFlag) {
  obs::Registry registry;
  const obs::RunReport degraded = obs::RunReport::capture(
      registry, "forktail run", "faulty-homogeneous", /*degraded=*/true);
  const Json doc = Json::parse(degraded.to_json());
  const std::set<std::string> expected_top = {
      "schema",   "version",  "tool",     "observability_enabled",
      "scenario", "degraded", "counters", "gauges",
      "histograms"};
  EXPECT_EQ(doc.keys(), expected_top);
  EXPECT_TRUE(doc.at("degraded").as_bool());

  const obs::RunReport clean =
      obs::RunReport::capture(registry, "forktail run", "plain");
  EXPECT_FALSE(Json::parse(clean.to_json()).contains("degraded"));
}

TEST(ReportSchema, RunReportJsonIsParseableAfterRealRun) {
  // End-to-end: snapshot the GLOBAL registry (whatever other tests have
  // recorded into it) and require the document to stay well-formed.
  const obs::RunReport report =
      obs::RunReport::capture(obs::Registry::global(), "forktail_tests");
  EXPECT_NO_THROW({
    const Json doc = Json::parse(report.to_json());
    EXPECT_EQ(doc.at("schema").as_string(), "forktail.run_report.v1");
  });
}

}  // namespace
}  // namespace forktail
