#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace forktail::util {
namespace {

TEST(Table, RendersAlignedText) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta-long", "12345"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("beta-long"), std::string::npos);
  // All lines must have equal width (aligned table).
  std::istringstream is(text);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, RowArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"x"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, RowBuilderFormatsNumbers) {
  Table t({"s", "n", "i"});
  t.row().str("x").num(3.14159, 2).integer(42);
  EXPECT_EQ(t.num_rows(), 1u);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("3.14"), std::string::npos);
  EXPECT_NE(csv.find("42"), std::string::npos);
}

TEST(FormatFixed, RoundsToPrecision) {
  EXPECT_EQ(format_fixed(1.005, 1), "1.0");
  EXPECT_EQ(format_fixed(-2.5, 0), "-2");  // round-half-even via printf is ok
  EXPECT_EQ(format_fixed(123.456, 2), "123.46");
}

}  // namespace
}  // namespace forktail::util
