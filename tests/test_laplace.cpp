#include "queueing/laplace.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dist/basic.hpp"
#include "queueing/mg1.hpp"
#include "queueing/mm1.hpp"

namespace forktail::queueing {
namespace {

TEST(LaplaceInverter, InvertsExponentialCdf) {
  // f(t) = 1 - e^{-t} has transform F(s) = 1/(s(s+1)).
  LaplaceInverter inv(40);
  for (double t : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    const double got = inv.invert(
        [](std::complex<double> s) { return 1.0 / (s * (s + 1.0)); }, t);
    // Discretization error of the Euler method is ~e^{-A} = e^{-18.4} ~ 1e-8.
    EXPECT_NEAR(got, 1.0 - std::exp(-t), 5e-8) << "t=" << t;
  }
}

TEST(LaplaceInverter, InvertsRampFunction) {
  // f(t) = t has transform 1/s^2.
  LaplaceInverter inv(40);
  for (double t : {0.5, 1.0, 3.0}) {
    const double got =
        inv.invert([](std::complex<double> s) { return 1.0 / (s * s); }, t);
    EXPECT_NEAR(got, t, 1e-7 * t + 1e-8);
  }
}

TEST(LaplaceInverter, RejectsBadParameters) {
  EXPECT_THROW(LaplaceInverter(5), std::invalid_argument);
  LaplaceInverter inv(40);
  EXPECT_THROW(
      inv.invert([](std::complex<double> s) { return 1.0 / s; }, 0.0),
      std::invalid_argument);
}

TEST(PkResponseLst, AtZeroIsOne) {
  // s -> 0 is a 0/0 limit; evaluate at a small but not cancellation-prone
  // argument (the relative error scales with |s|).
  const dist::Exponential service(1.0);
  const auto v = pk_response_lst({1e-6, 0.0}, 0.8, service);
  EXPECT_NEAR(v.real(), 1.0, 1e-4);
}

TEST(Mg1ResponseCdf, MatchesMm1ClosedForm) {
  // M/M/1 response time is Exp(mu - lambda): exact CDF available.
  const dist::Exponential service(1.0);
  const double lambda = 0.8;
  Mm1 q(lambda, 1.0);
  LaplaceInverter inv(50);
  for (double x : {0.5, 2.0, 5.0, 15.0, 25.0}) {
    const double got = mg1_response_cdf(lambda, service, x, inv);
    const double expected = 1.0 - q.response_ccdf(x);
    EXPECT_NEAR(got, expected, 2e-7) << "x=" << x;
  }
}

TEST(Mg1ResponseCdf, MatchesErlangServiceMoments) {
  // Sanity: numerically integrate the inverted CDF's implied mean and
  // compare against the Takacs mean for Erlang-2 service.
  const dist::Erlang service(2, 1.0);
  const double lambda = 0.7;
  LaplaceInverter inv(50);
  const auto analytic = mg1_response(lambda, service);
  // E[T] = integral of (1 - F(x)) dx, trapezoid on a fine grid.
  double mean = 0.0;
  const double dx = 0.02;
  double prev = 1.0;  // 1 - F(0)
  for (double x = dx; x < 60.0; x += dx) {
    const double cur = 1.0 - mg1_response_cdf(lambda, service, x, inv);
    mean += 0.5 * (prev + cur) * dx;
    prev = cur;
    if (cur < 1e-10) break;
  }
  EXPECT_NEAR(mean, analytic.mean, 0.01 * analytic.mean);
}

TEST(Mg1ResponseCdf, RequiresLst) {
  // A distribution without LST must be rejected.
  const dist::UniformReal service(0.5, 1.5);
  LaplaceInverter inv(40);
  EXPECT_THROW(mg1_response_cdf(0.5, service, 1.0, inv), std::logic_error);
}

TEST(Mg1ResponseCdf, MonotoneNonDecreasing) {
  const auto service = dist::HyperExp2::from_mean_scv(1.0, 2.0);
  LaplaceInverter inv(50);
  double prev = 0.0;
  for (double x = 0.1; x < 250.0; x *= 1.4) {
    const double c = mg1_response_cdf(0.85, service, x, inv);
    EXPECT_GE(c, prev - 1e-9) << "x=" << x;
    prev = c;
  }
  EXPECT_GT(prev, 0.99);
}

}  // namespace
}  // namespace forktail::queueing
