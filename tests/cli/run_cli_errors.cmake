# CLI failure-path regression runner (invoked via `cmake -P` from ctest).
#
# Every failure mode of the forktail CLI must produce a one-line stderr
# diagnostic and a *distinct* exit code so shell pipelines and CI jobs can
# tell user error from bad configuration from runtime failure:
#   1 -- usage error      (missing/unknown command, bad flag combination)
#   2 -- config error     (malformed JSON, invalid scenario field)
#   3 -- runtime error    (valid request that fails while executing)
#
# Variables (all required, passed with -D):
#   CLI     -- the forktail executable
#   DATA    -- directory holding the malformed/invalid spec fixtures
#   SCRATCH -- writable scratch directory for output files
foreach(var CLI DATA SCRATCH)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_cli_errors.cmake: -D${var}=... is required")
  endif()
endforeach()
file(MAKE_DIRECTORY ${SCRATCH})

# expect(<label> <want_rc> <args...>): run the CLI, require the exact exit
# code and a non-empty single-line stderr diagnostic.
function(expect label want_rc)
  execute_process(
    COMMAND ${CLI} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL ${want_rc})
    message(FATAL_ERROR
      "${label}: expected exit ${want_rc}, got '${rc}'\nstderr: ${err}")
  endif()
  if(err STREQUAL "")
    message(FATAL_ERROR "${label}: no stderr diagnostic emitted")
  endif()
endfunction()

# --- exit 1: usage errors ------------------------------------------------
expect("no-command" 1)
expect("unknown-command" 1 frobnicate)
expect("run-without-file" 1 run)

# --- exit 2: configuration errors ---------------------------------------
expect("malformed-json" 2 run ${DATA}/malformed_scenario.json)
expect("invalid-field" 2 run ${DATA}/invalid_scenario.json)
expect("missing-file" 2 run ${DATA}/no_such_scenario.json)

# --- exit 3: runtime errors ---------------------------------------------
expect("unwritable-out" 3 run ${DATA}/tiny_scenario.json
  --out ${SCRATCH}/no-such-dir/report.json)

# Sanity: the happy path still exits 0 and writes its artifacts.
execute_process(
  COMMAND ${CLI} run ${DATA}/tiny_scenario.json
    --out ${SCRATCH}/tiny_report.json
    --metrics-out ${SCRATCH}/tiny_metrics.json
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "happy-path: expected exit 0, got '${rc}'\n${err}")
endif()
foreach(artifact tiny_report.json tiny_metrics.json)
  if(NOT EXISTS ${SCRATCH}/${artifact})
    message(FATAL_ERROR "happy-path: ${artifact} was not written")
  endif()
endforeach()
