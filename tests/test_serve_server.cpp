// End-to-end daemon tests over real loopback sockets: ingest -> windows ->
// served predictions, the socket-visible rejection matrix, dead-agent
// degradation, overload shedding, the HTTP scrape, slow-trickling framed
// clients, and clean stop/drain.  Slow tier: each test spins up a Server
// with ephemeral ports.
#include "serve/server.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/wire.hpp"
#include "util/json.hpp"

namespace forktail::serve {
namespace {

using namespace std::chrono_literals;

class UdpClient {
 public:
  explicit UdpClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  }
  ~UdpClient() { ::close(fd_); }

  void send_raw(const std::vector<std::uint8_t>& bytes) {
    (void)::send(fd_, bytes.data(), bytes.size(), 0);
  }
  void send_batch(const WireBatch& batch) { send_raw(encode(batch)); }

 private:
  int fd_ = -1;
};

/// Blocking framed-protocol client (tests want simple synchronous calls).
class TcpClient {
 public:
  explicit TcpClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~TcpClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  void send_all(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    while (len > 0) {
      const ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return;
      }
      p += n;
      len -= static_cast<std::size_t>(n);
    }
  }

  void send_frame(const std::string& body) {
    const auto len = static_cast<std::uint32_t>(body.size());
    std::uint8_t hdr[4] = {static_cast<std::uint8_t>(len >> 24),
                           static_cast<std::uint8_t>(len >> 16),
                           static_cast<std::uint8_t>(len >> 8),
                           static_cast<std::uint8_t>(len)};
    send_all(hdr, 4);
    send_all(body.data(), body.size());
  }

  bool recv_exact(void* data, std::size_t len) {
    auto* p = static_cast<std::uint8_t*>(data);
    while (len > 0) {
      const ssize_t n = ::recv(fd_, p, len, 0);
      if (n == 0) return false;
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      p += n;
      len -= static_cast<std::size_t>(n);
    }
    return true;
  }

  /// One framed response, or empty on close/error.
  std::string recv_frame() {
    std::uint8_t hdr[4];
    if (!recv_exact(hdr, 4)) return {};
    const std::uint32_t len = (static_cast<std::uint32_t>(hdr[0]) << 24) |
                              (static_cast<std::uint32_t>(hdr[1]) << 16) |
                              (static_cast<std::uint32_t>(hdr[2]) << 8) |
                              static_cast<std::uint32_t>(hdr[3]);
    std::string body(len, '\0');
    if (len > 0 && !recv_exact(body.data(), len)) return {};
    return body;
  }

  util::Json call(const std::string& request) {
    send_frame(request);
    const std::string resp = recv_frame();
    if (resp.empty()) return util::Json();
    return util::Json::parse(resp);
  }

  /// Read until the peer closes (HTTP mode).
  std::string recv_until_close() {
    std::string out;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        out.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return out;
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

ServeConfig test_config() {
  ServeConfig config;
  config.nodes = 4;
  config.shards = 2;
  config.window_seconds = 30.0;
  config.min_samples = 3;
  config.skew_tolerance = 0.5;
  config.ring_capacity = 64;
  config.liveness_timeout = 60.0;
  config.sweep_interval = 0.1;
  config.scenario_name = "serve_test";
  return config;
}

WireBatch batch_for(std::uint32_t node, double t_s,
                    std::initializer_list<double> samples) {
  WireBatch batch;
  batch.node = node;
  batch.timestamp_ns = static_cast<std::uint64_t>(t_s * 1e9);
  batch.count = static_cast<std::uint16_t>(samples.size());
  std::size_t i = 0;
  for (double v : samples) batch.samples[i++] = v;
  return batch;
}

/// Poll until `pred` holds or ~5 s pass (UDP delivery is asynchronous).
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds budget = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(10ms);
  }
  return pred();
}

std::uint64_t counter_value(const char* name) {
  return obs::Registry::global().counter(name).value();
}

TEST(ServeServer, IngestsAndServesPredictions) {
  Server server(test_config());
  server.start();
  ASSERT_NE(server.udp_port(), 0);
  ASSERT_NE(server.tcp_port(), 0);

  UdpClient udp(server.udp_port());
  for (std::uint32_t node = 0; node < 4; ++node) {
    for (int i = 0; i < 5; ++i) {
      udp.send_batch(
          batch_for(node, 1.0 + 0.1 * i, {10.0, 12.0, 14.0, 16.0}));
    }
  }
  ASSERT_TRUE(eventually([&] { return server.samples_ingested() >= 80; }));

  TcpClient tcp(server.tcp_port());
  ASSERT_TRUE(tcp.connected());
  const util::Json resp = tcp.call("{\"op\":\"predict\",\"p\":99,\"k\":4}");
  ASSERT_TRUE(resp.is_object());
  EXPECT_TRUE(resp.at("served").as_bool());
  EXPECT_GT(resp.at("quantile_ms").as_number(), 16.0);  // tail above max mean
  EXPECT_DOUBLE_EQ(resp.at("k").as_number(), 4.0);
  EXPECT_FALSE(resp.at("degraded").as_bool());
  EXPECT_LT(resp.at("staleness_ms").as_number(), 10000.0);
  EXPECT_EQ(resp.at("filled_nodes").as_number(), 4.0);

  server.stop();
}

TEST(ServeServer, EmptyDaemonDegradesWithNoData) {
  Server server(test_config());
  server.start();
  TcpClient tcp(server.tcp_port());
  const util::Json resp = tcp.call("{\"op\":\"predict\"}");
  ASSERT_TRUE(resp.is_object());
  EXPECT_FALSE(resp.at("served").as_bool());
  EXPECT_TRUE(resp.at("degraded").as_bool());
  ASSERT_GE(resp.at("reasons").size(), 1u);
  EXPECT_EQ(resp.at("reasons").items()[0].as_string(), "no_data");
  server.stop();
}

TEST(ServeServer, SocketLevelRejectionMatrix) {
  Server server(test_config());
  server.start();
  UdpClient udp(server.udp_port());

  const std::uint64_t before_truncated =
      counter_value("serve.wire.rejected.truncated");
  const std::uint64_t before_magic =
      counter_value("serve.wire.rejected.bad_magic");
  const std::uint64_t before_checksum =
      counter_value("serve.wire.rejected.checksum");
  const std::uint64_t before_node =
      counter_value("serve.wire.rejected.unknown_node");
  const std::uint64_t before_service =
      counter_value("serve.wire.rejected.unknown_service");

  auto valid = encode(batch_for(0, 1.0, {1.0, 2.0, 3.0}));

  auto truncated = valid;
  truncated.resize(10);
  udp.send_raw(truncated);

  auto bad_magic = valid;
  bad_magic[0] ^= 0xFF;
  udp.send_raw(bad_magic);

  auto bad_sum = valid;
  bad_sum.back() ^= 0x01;
  udp.send_raw(bad_sum);

  udp.send_batch(batch_for(99, 1.0, {1.0}));  // nodes = 4 -> unknown

  WireBatch wrong_service = batch_for(0, 1.0, {1.0});
  wrong_service.service = 31;
  udp.send_batch(wrong_service);

  udp.send_batch(batch_for(0, 2.0, {1.0, 2.0, 3.0}));  // control: accepted

  ASSERT_TRUE(eventually([&] { return server.samples_ingested() >= 3; }));
  EXPECT_TRUE(eventually([&] {
    return counter_value("serve.wire.rejected.truncated") > before_truncated &&
           counter_value("serve.wire.rejected.bad_magic") > before_magic &&
           counter_value("serve.wire.rejected.checksum") > before_checksum &&
           counter_value("serve.wire.rejected.unknown_node") > before_node &&
           counter_value("serve.wire.rejected.unknown_service") >
               before_service;
  }));
  server.stop();
}

TEST(ServeServer, DeadAgentDegradesPredictionsWithStatedReason) {
  ServeConfig config = test_config();
  config.nodes = 2;
  config.shards = 1;
  config.liveness_timeout = 0.4;
  config.sweep_interval = 0.05;
  Server server(config);
  server.start();
  UdpClient udp(server.udp_port());

  // Both agents report, then agent 1 "crashes" (stops sending).
  for (int i = 0; i < 3; ++i) {
    udp.send_batch(batch_for(0, 1.0 + i, {5.0, 5.0, 5.0}));
    udp.send_batch(batch_for(1, 1.0 + i, {50.0, 50.0, 50.0}));
  }
  ASSERT_TRUE(eventually([&] { return server.samples_ingested() >= 18; }));

  // Keep agent 0 alive past agent 1's liveness timeout.
  const auto deadline = std::chrono::steady_clock::now() + 1500ms;
  double t = 5.0;
  bool degraded_seen = false;
  TcpClient tcp(server.tcp_port());
  while (std::chrono::steady_clock::now() < deadline) {
    udp.send_batch(batch_for(0, t, {5.0, 5.0, 5.0}));
    t += 0.1;
    std::this_thread::sleep_for(100ms);
    const util::Json resp = tcp.call("{\"op\":\"predict\",\"p\":99}");
    if (!resp.is_object() || !resp.at("served").as_bool()) continue;
    if (resp.at("stale_nodes").as_number() >= 1.0 &&
        resp.at("degraded").as_bool()) {
      degraded_seen = true;
      bool has_stale_reason = false;
      for (const auto& reason : resp.at("reasons").items()) {
        if (reason.as_string() == "stale_agents") has_stale_reason = true;
      }
      EXPECT_TRUE(has_stale_reason);
      break;
    }
  }
  EXPECT_TRUE(degraded_seen);
  EXPECT_TRUE(server.any_degraded());
  server.stop();
}

TEST(ServeServer, OverloadShedsAndStatesIt) {
  ServeConfig config = test_config();
  config.nodes = 1;
  config.shards = 1;
  config.ring_capacity = 4;
  config.drain_throttle_us = 2000;  // slow consumer: 2 ms per batch
  Server server(config);
  server.start();
  UdpClient udp(server.udp_port());

  const std::uint64_t shed_before = counter_value("serve.shed");
  for (int i = 0; i < 3000; ++i) {
    udp.send_batch(batch_for(0, 1.0 + 0.001 * i, {1.0, 1.0, 1.0}));
  }
  ASSERT_TRUE(eventually([&] { return server.batches_shed() > 0; }));
  EXPECT_GT(counter_value("serve.shed"), shed_before);

  // The degradation must surface in served predictions.
  TcpClient tcp(server.tcp_port());
  const util::Json resp = tcp.call("{\"op\":\"predict\",\"p\":99}");
  ASSERT_TRUE(resp.is_object());
  bool has_shed_reason = false;
  for (const auto& reason : resp.at("reasons").items()) {
    if (reason.as_string() == "recent_shed") has_shed_reason = true;
  }
  EXPECT_TRUE(has_shed_reason);
  EXPECT_GT(resp.at("shed_batches").as_number(), 0.0);
  server.stop();
}

TEST(ServeServer, HttpScrapeServesPrometheusText) {
  Server server(test_config());
  server.start();
  UdpClient udp(server.udp_port());
  udp.send_batch(batch_for(0, 1.0, {1.0, 2.0, 3.0}));
  ASSERT_TRUE(eventually([&] { return server.samples_ingested() >= 3; }));

  TcpClient tcp(server.tcp_port());
  const std::string request = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  tcp.send_all(request.data(), request.size());
  const std::string page = tcp.recv_until_close();
  EXPECT_NE(page.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(page.find("forktail_serve_samples"), std::string::npos);
  EXPECT_NE(page.find("forktail_serve_datagrams"), std::string::npos);
  server.stop();
}

TEST(ServeServer, TricklingClientGetsCorrectFraming) {
  Server server(test_config());
  server.start();
  TcpClient tcp(server.tcp_port());
  ASSERT_TRUE(tcp.connected());

  // Send one request a byte at a time with delays: the server must
  // accumulate partial reads without corrupting framing.
  const std::string body = "{\"op\":\"ping\"}";
  const auto len = static_cast<std::uint32_t>(body.size());
  std::vector<std::uint8_t> stream = {static_cast<std::uint8_t>(len >> 24),
                                      static_cast<std::uint8_t>(len >> 16),
                                      static_cast<std::uint8_t>(len >> 8),
                                      static_cast<std::uint8_t>(len)};
  stream.insert(stream.end(), body.begin(), body.end());
  for (const std::uint8_t byte : stream) {
    tcp.send_all(&byte, 1);
    std::this_thread::sleep_for(5ms);
  }
  const std::string resp = tcp.recv_frame();
  ASSERT_FALSE(resp.empty());
  EXPECT_TRUE(util::Json::parse(resp).at("ok").as_bool());

  // The connection survives for a second, normally-paced request.
  const util::Json second = tcp.call("{\"op\":\"ping\"}");
  EXPECT_TRUE(second.at("ok").as_bool());
  server.stop();
}

TEST(ServeServer, MalformedFrameGetsTypedErrorThenClose) {
  Server server(test_config());
  server.start();
  TcpClient tcp(server.tcp_port());

  // Length prefix far over the cap: typed error response, then close.
  const std::uint8_t huge[4] = {0x7F, 0xFF, 0xFF, 0xFF};
  tcp.send_all(huge, 4);
  const std::string resp = tcp.recv_frame();
  ASSERT_FALSE(resp.empty());
  EXPECT_TRUE(util::Json::parse(resp).contains("error"));
  // Peer closes after the error flushes (resync = reconnect).
  std::uint8_t byte;
  EXPECT_FALSE(tcp.recv_exact(&byte, 1));

  // A fresh connection works fine.
  TcpClient again(server.tcp_port());
  EXPECT_TRUE(again.call("{\"op\":\"ping\"}").at("ok").as_bool());
  server.stop();
}

TEST(ServeServer, BadJsonInWellFramedRequestKeepsConnection) {
  Server server(test_config());
  server.start();
  TcpClient tcp(server.tcp_port());
  const util::Json err = tcp.call("{not json");
  ASSERT_TRUE(err.is_object());
  EXPECT_TRUE(err.contains("error"));
  // Framing was intact, so the connection still serves.
  EXPECT_TRUE(tcp.call("{\"op\":\"ping\"}").at("ok").as_bool());
  server.stop();
}

TEST(ServeServer, ReportOpReturnsRunReportJson) {
  Server server(test_config());
  server.start();
  TcpClient tcp(server.tcp_port());
  const util::Json report = tcp.call("{\"op\":\"report\"}");
  ASSERT_TRUE(report.is_object());
  EXPECT_EQ(report.at("schema").as_string(), "forktail.run_report.v1");
  EXPECT_EQ(report.at("tool").as_string(), "forktail serve");
  EXPECT_EQ(report.at("scenario").as_string(), "serve_test");
  server.stop();
}

TEST(ServeServer, StopDrainsQueuedBatches) {
  ServeConfig config = test_config();
  config.nodes = 1;
  config.shards = 1;
  config.drain_throttle_us = 500;  // ensure batches are still queued at stop
  Server server(config);
  server.start();
  UdpClient udp(server.udp_port());
  const int kBatches = 50;
  for (int i = 0; i < kBatches; ++i) {
    udp.send_batch(batch_for(0, 1.0 + 0.01 * i, {1.0, 2.0}));
  }
  // Give the kernel a beat to deliver everything to the reader...
  ASSERT_TRUE(eventually([&] {
    return counter_value("serve.datagrams") > 0 &&
           server.samples_ingested() > 0;
  }));
  std::this_thread::sleep_for(100ms);
  server.stop();  // ...then the drain must flush the ring before exit
  // Nothing the reader accepted may be lost: ingested + shed == accepted.
  EXPECT_EQ(server.batches_shed(), 0u);
  EXPECT_EQ(server.samples_ingested() % 2, 0u);
  EXPECT_GE(server.samples_ingested(), 2u);
}

TEST(ServeServer, StopIsIdempotentAndRestartable) {
  Server server(test_config());
  server.start();
  server.stop();
  server.stop();
  server.start();
  TcpClient tcp(server.tcp_port());
  EXPECT_TRUE(tcp.call("{\"op\":\"ping\"}").at("ok").as_bool());
  server.stop();
}

}  // namespace
}  // namespace forktail::serve
