#include "sim/forknode.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dist/basic.hpp"

namespace forktail::sim {
namespace {

TEST(FifoServer, LindleyRecursion) {
  FifoServer s;
  EXPECT_DOUBLE_EQ(s.submit(0.0, 2.0), 2.0);   // idle start
  EXPECT_DOUBLE_EQ(s.submit(1.0, 2.0), 4.0);   // queues behind first
  EXPECT_DOUBLE_EQ(s.submit(10.0, 1.0), 11.0); // idle again
  s.reset();
  EXPECT_DOUBLE_EQ(s.next_free(), 0.0);
}

TEST(ForkNode, SingleServerCompletesInOrder) {
  Engine e;
  auto service = std::make_shared<dist::Deterministic>(1.0);
  ForkNode node(e, service, 1, DispatchPolicy::kSingle, 10.0, util::Rng(1));
  std::vector<double> completions;
  auto submit_at = [&](double t) {
    e.schedule(t, [&] {
      node.submit([&](double, double done) { completions.push_back(done); });
    });
  };
  submit_at(0.0);
  submit_at(0.5);  // queues: starts at 1.0, done 2.0
  submit_at(5.0);  // idle: done 6.0
  e.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_DOUBLE_EQ(completions[0], 1.0);
  EXPECT_DOUBLE_EQ(completions[1], 2.0);
  EXPECT_DOUBLE_EQ(completions[2], 6.0);
}

TEST(ForkNode, RoundRobinSpreadsAcrossReplicas) {
  Engine e;
  auto service = std::make_shared<dist::Deterministic>(2.0);
  ForkNode node(e, service, 3, DispatchPolicy::kRoundRobin, 10.0, util::Rng(2));
  std::vector<double> completions;
  e.schedule(0.0, [&] {
    for (int i = 0; i < 3; ++i) {
      node.submit([&](double, double done) { completions.push_back(done); });
    }
  });
  e.run();
  // Three tasks, three replicas: all finish at 2.0 (no queueing).
  ASSERT_EQ(completions.size(), 3u);
  for (double c : completions) EXPECT_DOUBLE_EQ(c, 2.0);
}

TEST(ForkNode, RedundantIssueDoesNotDelayTheStraggler) {
  Engine e;
  // Deterministic 30 time-unit task, delay 5: the replica fires at t = 5 on
  // the idle second server and would finish at 35, so the primary wins at
  // 30 and the replica is killed there.
  auto service = std::make_shared<dist::Deterministic>(30.0);
  ForkNode node(e, service, 2, DispatchPolicy::kRedundant, 5.0, util::Rng(3));
  double completion = -1.0;
  e.schedule(0.0, [&] {
    node.submit([&](double, double done) { completion = done; });
  });
  e.run();
  node.flush();
  EXPECT_DOUBLE_EQ(completion, 30.0);
  EXPECT_EQ(node.redundant_issues(), 1u);
}

TEST(ForkNode, RedundantQueuedReplicasAreDropped) {
  Engine e;
  auto service = std::make_shared<dist::Deterministic>(10.0);
  ForkNode node(e, service, 2, DispatchPolicy::kRedundant, 3.0, util::Rng(4));
  std::vector<double> completions;
  auto cb = [&](double, double done) { completions.push_back(done); };
  // Task 0 (t=0) runs on server 0 until 10; its replica (t=3) queues on
  // server 1 behind task 1's primary and is dropped when task 0 finishes.
  // Symmetrically for task 1 (t=1, done 11).
  e.schedule(0.0, [&] { node.submit(cb); });
  e.schedule(1.0, [&] { node.submit(cb); });
  e.run();
  node.flush();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_DOUBLE_EQ(completions[0], 10.0);
  EXPECT_DOUBLE_EQ(completions[1], 11.0);
  EXPECT_EQ(node.redundant_issues(), 2u);
}

TEST(ForkNode, RedundantKillFreesTheStragglersServer) {
  Engine e;
  // Hyperexponential-free deterministic check of kill-on-win through the
  // event-driven wrapper: task 0 is a straggler (S=30) whose replica (S=30
  // as well) starts at t=5 on the idle server 1 and loses; but a SECOND
  // task arriving at t=40 on server 0 must start immediately (server idle
  // again after 30), completing at 70.
  auto service = std::make_shared<dist::Deterministic>(30.0);
  ForkNode node(e, service, 2, DispatchPolicy::kRedundant, 5.0, util::Rng(5));
  std::vector<double> completions;
  auto cb = [&](double, double done) { completions.push_back(done); };
  e.schedule(0.0, [&] { node.submit(cb); });
  e.schedule(40.0, [&] { node.submit(cb); });
  e.run();
  node.flush();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_DOUBLE_EQ(completions[0], 30.0);
  EXPECT_DOUBLE_EQ(completions[1], 70.0);
}

TEST(ForkNode, ValidatesConfiguration) {
  Engine e;
  auto service = std::make_shared<dist::Deterministic>(1.0);
  EXPECT_THROW(ForkNode(e, nullptr, 1, DispatchPolicy::kSingle, 1.0, util::Rng(5)),
               std::invalid_argument);
  EXPECT_THROW(
      ForkNode(e, service, 0, DispatchPolicy::kSingle, 1.0, util::Rng(5)),
      std::invalid_argument);
  EXPECT_THROW(
      ForkNode(e, service, 2, DispatchPolicy::kSingle, 1.0, util::Rng(5)),
      std::invalid_argument);
  EXPECT_THROW(
      ForkNode(e, service, 2, DispatchPolicy::kRedundant, 0.0, util::Rng(5)),
      std::invalid_argument);
}

}  // namespace
}  // namespace forktail::sim
