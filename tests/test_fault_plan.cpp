// FaultPlan value type: validation discipline, JSON round-trip, and the
// scenario-layer integration ("faults" section of forktail.scenario.v1).
#include "fault/plan.hpp"

#include <gtest/gtest.h>

#include <string>

#include "scenario/spec.hpp"

namespace forktail::fault {
namespace {

using fjsim::ConfigError;

FaultPlan sample_plan() {
  FaultPlan plan;
  plan.inject.crash_rate = 0.001;
  plan.inject.crash_mean_duration = 50.0;
  plan.inject.slowdown_rate = 0.01;
  plan.inject.slowdown_mean_duration = 200.0;
  plan.inject.slowdown_factor = 3.0;
  plan.inject.blip_rate = 0.005;
  plan.inject.blip_duration = 25.0;
  plan.mitigation.timeout = 400.0;
  plan.mitigation.max_retries = 2;
  plan.mitigation.backoff_base = 10.0;
  plan.mitigation.backoff_mult = 2.0;
  plan.mitigation.hedge_quantile = 0.95;
  plan.mitigation.early_k = 0;
  return plan;
}

TEST(FaultPlan, DefaultIsInert) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.inert());
  EXPECT_TRUE(plan.inject.inert());
  EXPECT_TRUE(plan.mitigation.inert());
  EXPECT_NO_THROW(validate(plan, "faults"));
}

TEST(FaultPlan, JsonRoundTripIsIdentity) {
  const FaultPlan plan = sample_plan();
  EXPECT_EQ(parse_fault_plan(to_json(plan), "faults"), plan);
  EXPECT_EQ(parse_fault_plan(to_json(FaultPlan{}), "faults"), FaultPlan{});
}

TEST(FaultPlan, UnknownKeysRejected) {
  util::Json doc = to_json(sample_plan());
  doc.set("typo", 1.0);
  EXPECT_THROW(parse_fault_plan(doc, "faults"), ConfigError);

  util::Json doc2 = to_json(sample_plan());
  util::Json inject = doc2.at("inject");
  inject.set("crashrate", 1.0);
  doc2.set("inject", std::move(inject));
  EXPECT_THROW(parse_fault_plan(doc2, "faults"), ConfigError);
}

TEST(FaultPlan, ValidationNamesTheField) {
  FaultPlan plan = sample_plan();
  plan.inject.crash_rate = -1.0;
  try {
    validate(plan, "faults");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("faults.inject.crash_rate"),
              std::string::npos)
        << e.what();
  }
}

TEST(FaultPlan, ValidationRejectsEachBadField) {
  const auto rejects = [](auto&& mutate) {
    FaultPlan plan = sample_plan();
    mutate(plan);
    EXPECT_THROW(validate(plan, "faults"), ConfigError);
  };
  rejects([](FaultPlan& p) { p.inject.crash_rate = -0.1; });
  rejects([](FaultPlan& p) { p.inject.crash_mean_duration = 0.0; });  // rate>0
  rejects([](FaultPlan& p) { p.inject.slowdown_factor = 0.5; });
  rejects([](FaultPlan& p) { p.inject.blip_duration = -1.0; });
  rejects([](FaultPlan& p) { p.mitigation.timeout = -1.0; });
  rejects([](FaultPlan& p) {
    p.mitigation.timeout = 0.0;  // retries require a timeout
    p.mitigation.max_retries = 1;
  });
  rejects([](FaultPlan& p) { p.mitigation.max_retries = -1; });
  rejects([](FaultPlan& p) { p.mitigation.backoff_base = -1.0; });
  rejects([](FaultPlan& p) { p.mitigation.backoff_mult = 0.5; });
  rejects([](FaultPlan& p) { p.mitigation.hedge_quantile = 1.0; });
  rejects([](FaultPlan& p) { p.mitigation.hedge_quantile = -0.5; });
  rejects([](FaultPlan& p) { p.mitigation.early_k = -2; });
}

TEST(FaultPlan, ZeroRateIgnoresDuration) {
  // An all-zero-rate process is inert regardless of the duration knobs.
  FaultPlan plan;
  plan.inject.crash_mean_duration = 100.0;
  EXPECT_TRUE(plan.inert());
  EXPECT_NO_THROW(validate(plan, "faults"));
}

TEST(FaultPlanScenario, SpecWithoutFaultsKeyIsInert) {
  const auto spec = scenario::parse_scenario_text(
      "{\"schema\": \"forktail.scenario.v1\", \"name\": \"plain\","
      " \"topology\": \"homogeneous\"}");
  EXPECT_TRUE(spec.faults.inert());
}

TEST(FaultPlanScenario, FaultsSectionRoundTripsThroughSpec) {
  scenario::ScenarioSpec spec;
  spec.name = "faulty";
  spec.faults = sample_plan();
  const auto reparsed = scenario::parse_scenario(scenario::to_json(spec));
  EXPECT_EQ(reparsed.faults, spec.faults);
  EXPECT_EQ(reparsed, spec);
}

TEST(FaultPlanScenario, ValidateGatesUnsupportedTopologies) {
  scenario::ScenarioSpec spec;
  spec.topology = scenario::Topology::kPipeline;
  scenario::StageSpec stage;
  spec.stages = {stage};
  spec.faults.mitigation.hedge_quantile = 0.9;
  EXPECT_THROW(scenario::validate(spec), ConfigError);
}

TEST(FaultPlanScenario, HomogeneousRequiresSingleServerNodes) {
  scenario::ScenarioSpec spec;
  spec.faults.inject.blip_rate = 0.01;
  spec.faults.inject.blip_duration = 10.0;
  spec.group.replicas = 3;
  EXPECT_THROW(scenario::validate(spec), ConfigError);
  spec.group.replicas = 1;
  EXPECT_NO_THROW(scenario::validate(spec));
}

TEST(FaultPlanScenario, SubsetAllowsOnlyEarlyReturn) {
  scenario::ScenarioSpec spec;
  spec.topology = scenario::Topology::kSubset;
  spec.k.mode = scenario::KSpec::Mode::kFixed;
  spec.k.fixed = 4;
  spec.faults.mitigation.early_k = 2;
  EXPECT_NO_THROW(scenario::validate(spec));

  spec.faults.mitigation.early_k = 8;  // > fan-out
  EXPECT_THROW(scenario::validate(spec), ConfigError);

  spec.faults.mitigation.early_k = 2;
  spec.faults.inject.crash_rate = 0.1;  // injection unsupported on subset
  spec.faults.inject.crash_mean_duration = 10.0;
  EXPECT_THROW(scenario::validate(spec), ConfigError);
}

}  // namespace
}  // namespace forktail::fault
