#include "stats/special_functions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace forktail::stats {
namespace {

// Reference values computed with mpmath at 50 digits.
TEST(Digamma, KnownValues) {
  EXPECT_NEAR(digamma(1.0), -0.5772156649015328606, 1e-13);
  EXPECT_NEAR(digamma(2.0), 0.4227843350984671394, 1e-13);
  EXPECT_NEAR(digamma(0.5), -1.9635100260214234794, 1e-12);
  EXPECT_NEAR(digamma(10.0), 2.2517525890667211076, 1e-13);
  // psi(100.5) = psi(0.5) + sum_{k=0}^{99} 1/(k + 0.5), exact by recurrence.
  double psi_100_5 = -1.9635100260214234794;
  for (int k = 0; k < 100; ++k) psi_100_5 += 1.0 / (k + 0.5);
  EXPECT_NEAR(digamma(100.5), psi_100_5, 1e-11);
}

TEST(Digamma, RecurrenceHolds) {
  // psi(x+1) = psi(x) + 1/x for arbitrary x.
  for (double x : {0.1, 0.7, 1.3, 5.9, 33.3}) {
    EXPECT_NEAR(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-12) << "x=" << x;
  }
}

TEST(Digamma, LargeArgumentMatchesLog) {
  // psi(x) ~ ln x - 1/(2x) for large x.
  const double x = 1e8;
  EXPECT_NEAR(digamma(x), std::log(x) - 0.5 / x, 1e-12);
}

TEST(Digamma, RejectsNonPositive) {
  EXPECT_THROW(digamma(0.0), std::domain_error);
  EXPECT_THROW(digamma(-1.0), std::domain_error);
}

TEST(Trigamma, KnownValues) {
  EXPECT_NEAR(trigamma(1.0), 1.6449340668482264365, 1e-13);  // pi^2/6
  EXPECT_NEAR(trigamma(2.0), 0.6449340668482264365, 1e-13);
  EXPECT_NEAR(trigamma(0.5), 4.9348022005446793094, 1e-11);  // pi^2/2
  EXPECT_NEAR(trigamma(10.0), 0.1051663356816857461, 1e-13);
}

TEST(Trigamma, RecurrenceHolds) {
  for (double x : {0.2, 0.9, 3.4, 7.7}) {
    EXPECT_NEAR(trigamma(x + 1.0), trigamma(x) - 1.0 / (x * x), 1e-12)
        << "x=" << x;
  }
}

TEST(Trigamma, PositiveAndDecreasing) {
  double prev = trigamma(0.5);
  for (double x = 1.0; x < 50.0; x += 0.5) {
    const double t = trigamma(x);
    EXPECT_GT(t, 0.0);
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(Tetragamma, KnownValues) {
  EXPECT_NEAR(tetragamma(1.0), -2.4041138063191885708, 1e-10);  // -2 zeta(3)
  EXPECT_NEAR(tetragamma(2.0), -0.4041138063191885708, 1e-10);
}

TEST(Tetragamma, RecurrenceHolds) {
  for (double x : {0.6, 1.5, 4.2}) {
    EXPECT_NEAR(tetragamma(x + 1.0), tetragamma(x) + 2.0 / (x * x * x), 1e-10)
        << "x=" << x;
  }
}

TEST(GeUnitMoments, AlphaOneIsExponential) {
  // GE with alpha = 1 is Exp(1/beta): unit mean 1, unit variance 1.
  EXPECT_NEAR(ge_unit_mean(1.0), 1.0, 1e-13);
  EXPECT_NEAR(ge_unit_variance(1.0), 1.0, 1e-13);
}

TEST(GeUnitMoments, MonotoneInAlpha) {
  double prev_mean = 0.0;
  double prev_ratio = 0.0;
  for (double a = 0.1; a < 100.0; a *= 1.7) {
    const double m = ge_unit_mean(a);
    const double v = ge_unit_variance(a);
    EXPECT_GT(m, prev_mean);
    EXPECT_GT(v, 0.0);
    const double ratio = m * m / v;  // the fit target; must increase
    EXPECT_GT(ratio, prev_ratio);
    prev_mean = m;
    prev_ratio = ratio;
  }
}

TEST(GeUnitMoments, SmallAlphaLimits) {
  // As alpha -> 0: mean -> alpha * pi^2/6, variance -> alpha * 2 zeta(3)
  // to first order.
  const double a = 1e-6;
  EXPECT_NEAR(ge_unit_mean(a) / a, kTrigammaAtOne, 1e-4);
  EXPECT_NEAR(ge_unit_variance(a) / a, 2.4041138063191886, 1e-4);
}

}  // namespace
}  // namespace forktail::stats
