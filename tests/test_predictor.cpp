#include "core/predictor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "dist/basic.hpp"
#include "dist/factory.hpp"
#include "dist/heavy.hpp"

namespace forktail::core {
namespace {

constexpr double kLn100 = 4.605170185988091;

TEST(TaskCountMixture, FixedDegenerates) {
  const auto m = TaskCountMixture::fixed(100.0);
  EXPECT_EQ(m.groups().size(), 1u);
  EXPECT_DOUBLE_EQ(m.mean_tasks(), 100.0);
}

TEST(TaskCountMixture, UniformIntExact) {
  const auto m = TaskCountMixture::uniform_int(3, 7);
  EXPECT_EQ(m.groups().size(), 5u);
  EXPECT_DOUBLE_EQ(m.mean_tasks(), 5.0);
  for (const auto& g : m.groups()) EXPECT_DOUBLE_EQ(g.probability, 0.2);
}

TEST(TaskCountMixture, UniformIntBinnedKeepsMean) {
  const auto m = TaskCountMixture::uniform_int(10, 990, 64);
  EXPECT_EQ(m.groups().size(), 64u);
  EXPECT_NEAR(m.mean_tasks(), 500.0, 1e-9);
}

TEST(TaskCountMixture, Validation) {
  EXPECT_THROW(TaskCountMixture({}), std::invalid_argument);
  EXPECT_THROW(TaskCountMixture({{10.0, 0.5}}), std::invalid_argument);
  EXPECT_THROW(TaskCountMixture({{0.5, 1.0}}), std::invalid_argument);
  EXPECT_THROW(TaskCountMixture::uniform_int(5, 4), std::invalid_argument);
}

TEST(HomogeneousQuantile, ExponentialClosedForm) {
  // Exponential task stats: x_p = -mean ln(1 - 0.99^{1/k}).
  const TaskStats stats{10.0, 100.0};
  const double k = 100.0;
  const double expected = -10.0 * std::log(1.0 - std::pow(0.99, 1.0 / k));
  EXPECT_NEAR(homogeneous_quantile(stats, k, 99.0), expected, 1e-6);
}

TEST(HomogeneousQuantile, MonotoneInPercentile) {
  const TaskStats stats{5.0, 40.0};
  double prev = 0.0;
  for (double p : {50.0, 90.0, 95.0, 99.0, 99.9}) {
    const double x = homogeneous_quantile(stats, 64.0, p);
    EXPECT_GT(x, prev);
    prev = x;
  }
}

TEST(HomogeneousQuantile, MonotoneInK) {
  const TaskStats stats{5.0, 40.0};
  double prev = 0.0;
  for (double k : {1.0, 10.0, 100.0, 1000.0}) {
    const double x = homogeneous_quantile(stats, k, 99.0);
    EXPECT_GT(x, prev);
    prev = x;
  }
}

TEST(HomogeneousQuantile, RejectsBadPercentile) {
  const TaskStats stats{1.0, 1.0};
  EXPECT_THROW(homogeneous_quantile(stats, 10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(homogeneous_quantile(stats, 10.0, 100.0), std::invalid_argument);
}

TEST(InhomogeneousQuantile, IdenticalNodesMatchHomogeneous) {
  const TaskStats stats{8.0, 50.0};
  std::vector<TaskStats> nodes(32, stats);
  const double inhom = inhomogeneous_quantile(nodes, 99.0);
  const double hom = homogeneous_quantile(stats, 32.0, 99.0);
  EXPECT_NEAR(inhom, hom, 1e-6 * hom);
}

TEST(InhomogeneousQuantile, DominatedByTheSlowNode) {
  std::vector<TaskStats> nodes(9, TaskStats{1.0, 1.0});
  nodes.push_back({100.0, 10000.0});  // one node 100x slower
  const double x = inhomogeneous_quantile(nodes, 99.0);
  // Must land near the slow node's own 99th percentile (exp: mean*ln 100).
  EXPECT_GT(x, 0.9 * 100.0 * kLn100);
}

TEST(InhomogeneousQuantile, AtLeastMaxOfSingles) {
  std::vector<TaskStats> nodes = {{2.0, 4.0}, {5.0, 30.0}, {3.0, 10.0}};
  double max_single = 0.0;
  for (const auto& n : nodes) {
    max_single = std::max(max_single, homogeneous_quantile(n, 1.0, 99.0));
  }
  EXPECT_GE(inhomogeneous_quantile(nodes, 99.0), max_single - 1e-9);
}

TEST(InhomogeneousCdf, ProductForm) {
  std::vector<TaskStats> nodes = {{2.0, 4.0}, {6.0, 36.0}};
  const double x = 10.0;
  const double f1 = homogeneous_cdf(nodes[0], 1.0, x);
  const double f2 = homogeneous_cdf(nodes[1], 1.0, x);
  EXPECT_NEAR(inhomogeneous_cdf(nodes, x), f1 * f2, 1e-12);
}

TEST(MixtureQuantile, DegenerateMatchesFixedK) {
  const TaskStats stats{4.0, 20.0};
  const auto m = TaskCountMixture::fixed(50.0);
  EXPECT_NEAR(mixture_quantile(stats, m, 99.0),
              homogeneous_quantile(stats, 50.0, 99.0), 1e-7);
}

TEST(MixtureQuantile, BetweenExtremeKs) {
  const TaskStats stats{4.0, 20.0};
  const auto m = TaskCountMixture::uniform_int(10, 990);
  const double x = mixture_quantile(stats, m, 99.0);
  EXPECT_GT(x, homogeneous_quantile(stats, 10.0, 99.0));
  EXPECT_LT(x, homogeneous_quantile(stats, 990.0, 99.0));
}

TEST(MixtureCdf, IsConvexCombination) {
  const TaskStats stats{4.0, 20.0};
  const TaskCountMixture m({{10.0, 0.5}, {100.0, 0.5}});
  const double x = 30.0;
  const double expected = 0.5 * homogeneous_cdf(stats, 10.0, x) +
                          0.5 * homogeneous_cdf(stats, 100.0, x);
  EXPECT_NEAR(mixture_cdf(stats, m, x), expected, 1e-12);
}

TEST(WhiteboxMg1, Table2ExponentialColumn) {
  // Table 2 of the paper: N = 1000, load 90%, exponential service with
  // mean 4.22 ms.  These five numbers are analytic and must match exactly.
  const auto service = dist::make_named("Exponential");
  const double lambda = 0.9 / 4.22;
  const struct {
    double k;
    double expected;
  } rows[] = {{10, 291.32}, {400, 446.97}, {500, 456.38},
              {600, 464.08}, {900, 481.19}};
  for (const auto& row : rows) {
    EXPECT_NEAR(whitebox_mg1_quantile(lambda, *service, row.k, 99.0),
                row.expected, 0.01)
        << "k=" << row.k;
  }
}

TEST(WhiteboxMg1, TaskStatsMatchTakacs) {
  const dist::Exponential service(1.0);
  const auto s = whitebox_mg1_task_stats(0.9, service);
  EXPECT_NEAR(s.mean, 10.0, 1e-9);
  EXPECT_NEAR(s.variance, 100.0, 1e-6);
}

TEST(WhiteboxMg1, FiniteThirdMomentTakesTheFullTakacsPath) {
  // Pareto alpha 3.5 keeps E[S^3] finite: no degradation, and the stats
  // agree with the undegraded closed form.
  const auto service = dist::Pareto::from_mean_tail(4.22, 3.5);
  const double lambda = 0.5 / 4.22;
  const auto model = whitebox_mg1_task_model(lambda, service);
  EXPECT_FALSE(model.degraded);
  EXPECT_TRUE(model.reasons.empty());
  const auto stats = whitebox_mg1_task_stats(lambda, service);
  EXPECT_DOUBLE_EQ(model.stats.mean, stats.mean);
  EXPECT_DOUBLE_EQ(model.stats.variance, stats.variance);
}

TEST(WhiteboxMg1, InfiniteThirdMomentDegradesWithExactPkMean) {
  // Pareto alpha 2.5: E[S^2] finite, E[S^3] infinite.  The model must keep
  // the exact Pollaczek-Khinchine mean, substitute variance = mean^2, and
  // say why.
  const auto service = dist::Pareto::from_mean_tail(4.22, 2.5);
  const double lambda = 0.5 / 4.22;
  const auto model = whitebox_mg1_task_model(lambda, service);
  EXPECT_TRUE(model.degraded);
  ASSERT_FALSE(model.reasons.empty());
  EXPECT_NE(model.reasons.front().find("E[S^3]"), std::string::npos);

  const double es = service.moment(1);
  const double m2 = service.moment(2);
  const double rho = lambda * es;
  const double pk_mean = es + lambda * m2 / (2.0 * (1.0 - rho));
  EXPECT_NEAR(model.stats.mean, pk_mean, 1e-12 * pk_mean);
  EXPECT_DOUBLE_EQ(model.stats.variance,
                   model.stats.mean * model.stats.mean);
}

TEST(WhiteboxMg1, InfiniteSecondMomentRefusesWithTailDiagnostics) {
  // Pareto alpha 1.8: even the sojourn MEAN diverges -- no moment model
  // exists, and the error must name the tail class.
  const auto service = dist::Pareto::from_mean_tail(4.22, 1.8);
  try {
    whitebox_mg1_task_model(0.1, service);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("regularly-varying"), std::string::npos) << what;
    EXPECT_NE(what.find("Pareto"), std::string::npos) << what;
  }
}

TEST(GenExpFit, RejectsNonFiniteVariance) {
  EXPECT_THROW(
      GenExp::fit_moments(1.0, std::numeric_limits<double>::infinity()),
      std::invalid_argument);
  EXPECT_THROW(GenExp::fit_moments(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(GenExp::fit_moments(1.0, -1.0), std::invalid_argument);
}

TEST(RedundancyQuantile, DegenerateDIsThePerTaskQuantile) {
  const TaskStats stats{10.0, 100.0};
  EXPECT_NEAR(redundancy_quantile(stats, 1.0, 99.0),
              homogeneous_quantile(stats, 1.0, 99.0), 1e-9);
}

TEST(RedundancyQuantile, ExponentialClosedForm) {
  // Exponential stats fit to GE alpha = 1; the min of d exponentials is
  // exponential at d times the rate: x_p = -(mean/d) ln(1 - q).
  const TaskStats stats{10.0, 100.0};
  for (double d : {1.0, 2.0, 4.0, 8.0}) {
    const double expected = -(10.0 / d) * std::log(1.0 - 0.99);
    EXPECT_NEAR(redundancy_quantile(stats, d, 99.0), expected, 1e-6)
        << "d=" << d;
  }
}

TEST(RedundancyQuantile, MonotoneDecreasingInD) {
  const TaskStats stats{5.0, 40.0};
  double prev = std::numeric_limits<double>::infinity();
  for (double d : {1.0, 2.0, 4.0, 16.0}) {
    const double x = redundancy_quantile(stats, d, 99.0);
    EXPECT_LT(x, prev) << "d=" << d;
    prev = x;
  }
}

TEST(RedundancyQuantile, RejectsBadArguments) {
  const TaskStats stats{1.0, 1.0};
  EXPECT_THROW(redundancy_quantile(stats, 0.5, 99.0), std::invalid_argument);
  EXPECT_THROW(redundancy_quantile(stats, 2.0, 0.0), std::invalid_argument);
}

TEST(ForkTailPredictor, HomogeneousQuantileAndCdfAgree) {
  const ForkTailPredictor p(TaskStats{3.0, 12.0});
  const double x = p.quantile(99.0, 128.0);
  EXPECT_NEAR(p.cdf(x, 128.0), 0.99, 1e-9);
}

TEST(ForkTailPredictor, InhomogeneousQuantileAndCdfAgree) {
  std::vector<TaskStats> nodes = {{2.0, 4.0}, {3.0, 12.0}, {5.0, 50.0}};
  const ForkTailPredictor p(nodes);
  const double x = p.quantile(95.0);
  EXPECT_NEAR(p.cdf(x), 0.95, 1e-9);
}

TEST(ForkTailPredictor, InhomogeneousRejectsMismatchedK) {
  std::vector<TaskStats> nodes = {{2.0, 4.0}, {3.0, 12.0}};
  const ForkTailPredictor p(nodes);
  EXPECT_THROW(p.quantile(99.0, 5.0), std::invalid_argument);
}

TEST(ForkTailPredictor, MixtureRequiresHomogeneous) {
  std::vector<TaskStats> nodes = {{2.0, 4.0}, {3.0, 12.0}};
  const ForkTailPredictor p(nodes);
  EXPECT_THROW(p.quantile(99.0, TaskCountMixture::fixed(2.0)),
               std::invalid_argument);
}

TEST(ForkTailPredictor, EmptyNodeListRejected) {
  std::vector<TaskStats> none;
  EXPECT_THROW(ForkTailPredictor{std::span<const TaskStats>(none)},
               std::invalid_argument);
}

}  // namespace
}  // namespace forktail::core
