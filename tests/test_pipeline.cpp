#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "dist/factory.hpp"
#include "fjsim/homogeneous.hpp"
#include "fjsim/pipeline.hpp"
#include "stats/percentile.hpp"
#include "stats/summary.hpp"

namespace forktail {
namespace {

core::StageSpec stage(const char* name, double mean, double var, double k) {
  return {name, {mean, var}, k};
}

TEST(PipelinePredictor, SingleStageMatchesHomogeneousPredictor) {
  const core::TaskStats stats{10.0, 120.0};
  const core::PipelinePredictor pipeline({stage("only", 10.0, 120.0, 64.0)});
  for (double p : {90.0, 99.0, 99.9}) {
    EXPECT_NEAR(pipeline.quantile(p),
                core::homogeneous_quantile(stats, 64.0, p), 1e-9)
        << "p=" << p;
  }
}

TEST(PipelinePredictor, StageLatencyLawIsGeOfScaledShape) {
  // Max of k iid GE(a, b) is GE(k a, b): the stage model must carry exactly
  // that shape.
  const core::PipelinePredictor pipeline({stage("s", 5.0, 25.0, 100.0)});
  const core::GenExp task = core::GenExp::fit_moments(5.0, 25.0);
  const auto& lat = pipeline.stage_latencies().front();
  EXPECT_NEAR(lat.model.alpha(), 100.0 * task.alpha(), 1e-9);
  EXPECT_NEAR(lat.model.beta(), task.beta(), 1e-12);
}

TEST(PipelinePredictor, TotalsAreSumsOfStageMoments) {
  const core::PipelinePredictor pipeline(
      {stage("a", 5.0, 25.0, 32.0), stage("b", 2.0, 8.0, 8.0),
       stage("c", 1.0, 1.0, 1.0)});
  double mean = 0.0;
  double var = 0.0;
  for (const auto& lat : pipeline.stage_latencies()) {
    mean += lat.mean;
    var += lat.variance;
  }
  EXPECT_NEAR(pipeline.total_mean(), mean, 1e-12);
  EXPECT_NEAR(pipeline.total_variance(), var, 1e-12);
}

TEST(PipelinePredictor, QuantileInvertsCdfAndOrdersInP) {
  const core::PipelinePredictor pipeline(
      {stage("a", 5.0, 60.0, 50.0), stage("b", 3.0, 9.0, 10.0)});
  double prev = 0.0;
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    const double x = pipeline.quantile(p);
    EXPECT_GT(x, prev);
    prev = x;
    EXPECT_NEAR(pipeline.cdf(x), p / 100.0, 1e-6);
  }
}

TEST(PipelinePredictor, BottleneckIdentifiesTheSlowStage) {
  const core::PipelinePredictor pipeline(
      {stage("fast", 1.0, 1.0, 8.0), stage("slow", 50.0, 5000.0, 64.0),
       stage("mid", 5.0, 25.0, 16.0)});
  EXPECT_EQ(pipeline.bottleneck_stage(99.0), 1u);
  const auto breakdown = pipeline.mean_breakdown();
  EXPECT_EQ(breakdown.size(), 3u);
  EXPECT_NEAR(std::accumulate(breakdown.begin(), breakdown.end(), 0.0), 1.0,
              1e-12);
  EXPECT_GT(breakdown[1], 0.5);  // the slow stage dominates the mean
}

TEST(PipelinePredictor, Validation) {
  EXPECT_THROW(core::PipelinePredictor({}), std::invalid_argument);
  EXPECT_THROW(core::PipelinePredictor({stage("x", 1.0, 1.0, 0.5)}),
               std::invalid_argument);
  const core::PipelinePredictor ok({stage("x", 1.0, 1.0, 2.0)});
  EXPECT_THROW(ok.quantile(0.0), std::invalid_argument);
}

// ---------------------------------------------------------------- simulator

fjsim::PipelineConfig sim_config(double load) {
  fjsim::PipelineConfig cfg;
  cfg.stages = {{32, dist::make_named("Empirical")},
                {8, dist::make_named("Exponential")}};
  cfg.load = load;
  cfg.num_requests = 40000;
  cfg.seed = 5;
  return cfg;
}

TEST(PipelineSim, ShapesAndCausality) {
  const auto r = fjsim::run_pipeline(sim_config(0.7));
  EXPECT_EQ(r.responses.size(), 40000u);
  EXPECT_EQ(r.stage_task_stats.size(), 2u);
  EXPECT_EQ(r.stage_latency_stats.size(), 2u);
  // End-to-end latency is at least the sum of per-stage minima; every
  // response is positive and finite.
  for (double x : r.responses) {
    ASSERT_TRUE(std::isfinite(x));
    ASSERT_GT(x, 0.0);
  }
  // The mean end-to-end latency equals the sum of mean stage latencies
  // (exactly, by construction of the decomposition).
  stats::Welford total;
  for (double x : r.responses) total.add(x);
  EXPECT_NEAR(total.mean(),
              r.stage_latency_stats[0].mean() + r.stage_latency_stats[1].mean(),
              1e-6 * total.mean());
}

TEST(PipelineSim, SingleStageMatchesHomogeneousRunner) {
  fjsim::PipelineConfig cfg;
  cfg.stages = {{8, dist::make_named("Exponential")}};
  cfg.load = 0.8;
  cfg.num_requests = 30000;
  cfg.seed = 7;
  const auto pipe = fjsim::run_pipeline(cfg);
  // Statistical match against the homogeneous runner (different stream
  // layout, so compare distributions, not bits).
  fjsim::HomogeneousConfig hom;
  hom.num_nodes = 8;
  hom.service = cfg.stages[0].service;
  hom.load = 0.8;
  hom.num_requests = 30000;
  hom.seed = 8;
  const auto ref = fjsim::run_homogeneous(hom);
  EXPECT_NEAR(stats::percentile(pipe.responses, 99.0),
              stats::percentile(ref.responses, 99.0),
              0.1 * stats::percentile(ref.responses, 99.0));
}

TEST(PipelineSim, DeterministicUnderSeed) {
  const auto a = fjsim::run_pipeline(sim_config(0.6));
  const auto b = fjsim::run_pipeline(sim_config(0.6));
  ASSERT_EQ(a.responses.size(), b.responses.size());
  EXPECT_DOUBLE_EQ(a.responses[11], b.responses[11]);
}

TEST(PipelineSim, Validation) {
  fjsim::PipelineConfig cfg;
  EXPECT_THROW(fjsim::run_pipeline(cfg), std::invalid_argument);
  cfg = sim_config(1.2);
  EXPECT_THROW(fjsim::run_pipeline(cfg), std::invalid_argument);
  cfg = sim_config(0.5);
  cfg.stages[0].service = nullptr;
  EXPECT_THROW(fjsim::run_pipeline(cfg), std::invalid_argument);
}

// End-to-end: the paper-style claim lifted to workflows -- prediction from
// measured stage statistics tracks the simulated end-to-end p99 at high
// load within the single-stage error bands.
TEST(PipelineIntegration, PredictionTracksSimulationAtHighLoad) {
  const auto sim = fjsim::run_pipeline(sim_config(0.9));
  std::vector<core::StageSpec> specs;
  specs.push_back({"retrieval",
                   {sim.stage_task_stats[0].mean(),
                    sim.stage_task_stats[0].variance()},
                   32.0});
  specs.push_back({"ranking",
                   {sim.stage_task_stats[1].mean(),
                    sim.stage_task_stats[1].variance()},
                   8.0});
  const core::PipelinePredictor predictor(specs);
  const double measured = stats::percentile(sim.responses, 99.0);
  const double predicted = predictor.quantile(99.0);
  EXPECT_LE(std::fabs(stats::relative_error_pct(predicted, measured)), 20.0);
}

}  // namespace
}  // namespace forktail
