#include "core/online.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/welford.hpp"
#include "util/rng.hpp"

namespace forktail::core {
namespace {

TEST(OnlineTailPredictor, RequiresMinSamples) {
  OnlineTailPredictor p(2, 20.0, 10);
  for (int i = 0; i < 9; ++i) {
    p.record(0, i * 0.1, 1.0 + 0.01 * i);
    p.record(1, i * 0.1, 1.0 + 0.01 * i);
  }
  EXPECT_FALSE(p.node_stats(0).has_value());
  EXPECT_FALSE(p.predict_homogeneous(99.0).has_value());
  p.record(0, 1.0, 1.5);
  p.record(1, 1.0, 1.5);
  EXPECT_TRUE(p.node_stats(0).has_value());
  EXPECT_TRUE(p.predict_homogeneous(99.0).has_value());
}

TEST(OnlineTailPredictor, HomogeneousMatchesOfflineFit) {
  util::Rng rng(60);
  OnlineTailPredictor p(4, 1e9, 10);
  stats::Welford all;
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.exponential(5.0);
    p.record(static_cast<std::size_t>(i % 4), i * 0.01, x);
    all.add(x);
  }
  const auto predicted = p.predict_homogeneous(99.0);
  ASSERT_TRUE(predicted.has_value());
  const double offline =
      homogeneous_quantile({all.mean(), all.variance()}, 4.0, 99.0);
  EXPECT_NEAR(*predicted, offline, 1e-6 * offline);
}

TEST(OnlineTailPredictor, WindowForgetsOldRegime) {
  OnlineTailPredictor p(1, 10.0, 5);
  // Old regime: slow responses.
  for (int i = 0; i < 100; ++i) p.record(0, i * 0.05, 100.0 + i % 3);
  const auto before = p.node_stats(0);
  ASSERT_TRUE(before.has_value());
  EXPECT_GT(before->mean, 50.0);
  // New regime 30 s later: fast responses; the window must have rolled.
  for (int i = 0; i < 100; ++i) p.record(0, 35.0 + i * 0.05, 1.0 + (i % 3) * 0.1);
  const auto after = p.node_stats(0);
  ASSERT_TRUE(after.has_value());
  EXPECT_LT(after->mean, 2.0);
}

TEST(OnlineTailPredictor, InhomogeneousSeesSlowNode) {
  util::Rng rng(61);
  OnlineTailPredictor p(3, 1e9, 20);
  for (int i = 0; i < 600; ++i) {
    p.record(0, i * 0.01, rng.exponential(1.0));
    p.record(1, i * 0.01, rng.exponential(1.0));
    p.record(2, i * 0.01, rng.exponential(20.0));  // slow node
  }
  const auto inhom = p.predict_inhomogeneous(99.0);
  ASSERT_TRUE(inhom.has_value());
  // The slow node alone needs ~ 20 ln(100) ~ 92 at p99.
  EXPECT_GT(*inhom, 80.0);
}

TEST(OnlineTailPredictor, SubsetUsesOnlyChosenNodes) {
  util::Rng rng(62);
  OnlineTailPredictor p(3, 1e9, 20);
  for (int i = 0; i < 600; ++i) {
    p.record(0, i * 0.01, rng.exponential(1.0));
    p.record(1, i * 0.01, rng.exponential(1.0));
    p.record(2, i * 0.01, rng.exponential(50.0));
  }
  const std::size_t fast[] = {0, 1};
  const auto fast_pred = p.predict_subset(fast, 99.0);
  ASSERT_TRUE(fast_pred.has_value());
  EXPECT_LT(*fast_pred, 10.0);
  const std::size_t with_slow[] = {0, 2};
  const auto slow_pred = p.predict_subset(with_slow, 99.0);
  ASSERT_TRUE(slow_pred.has_value());
  EXPECT_GT(*slow_pred, 10.0 * *fast_pred);
}

TEST(OnlineTailPredictor, SubsetValidation) {
  OnlineTailPredictor p(2, 10.0, 5);
  std::vector<std::size_t> empty;
  EXPECT_THROW(p.predict_subset(empty, 99.0), std::invalid_argument);
  const std::size_t bad[] = {5};
  EXPECT_THROW(p.predict_subset(bad, 99.0), std::out_of_range);
}

TEST(OnlineTailPredictor, MixturePrediction) {
  util::Rng rng(63);
  OnlineTailPredictor p(2, 1e9, 20);
  for (int i = 0; i < 1000; ++i) {
    p.record(static_cast<std::size_t>(i % 2), i * 0.01, rng.exponential(3.0));
  }
  const auto m = TaskCountMixture::uniform_int(10, 100);
  const auto pred = p.predict_mixture(m, 99.0);
  ASSERT_TRUE(pred.has_value());
  const auto lo = p.predict_homogeneous(99.0, 10.0);
  const auto hi = p.predict_homogeneous(99.0, 100.0);
  ASSERT_TRUE(lo && hi);
  EXPECT_GT(*pred, *lo);
  EXPECT_LT(*pred, *hi);
}

TEST(OnlineTailPredictor, ZeroNodesRejected) {
  EXPECT_THROW(OnlineTailPredictor(0, 10.0), std::invalid_argument);
}

TEST(OnlineTailPredictor, NegativeSkewToleranceRejected) {
  EXPECT_THROW(OnlineTailPredictor(1, 10.0, 5, -0.1), std::invalid_argument);
}

// Regression: a backwards-jumping agent clock (NTP step, restarted agent)
// must never corrupt window eviction or throw out of record().  Jumps
// within the skew tolerance are clamped onto the high-water mark; larger
// jumps are rejected and leave the window untouched.
TEST(OnlineTailPredictor, BackwardsClockClampedWithinTolerance) {
  OnlineTailPredictor p(1, 100.0, 1, /*skew_tolerance=*/0.5);
  EXPECT_EQ(p.record(0, 10.0, 1.0), RecordOutcome::kAccepted);
  // 0.3 s backwards: clamped, sample kept.
  EXPECT_EQ(p.record(0, 9.7, 3.0), RecordOutcome::kClamped);
  const auto s = p.node_stats(0);
  ASSERT_TRUE(s.has_value());
  EXPECT_DOUBLE_EQ(s->mean, 2.0);
  // The high-water mark did not move backwards.
  ASSERT_TRUE(p.last_timestamp(0).has_value());
  EXPECT_DOUBLE_EQ(*p.last_timestamp(0), 10.0);
}

TEST(OnlineTailPredictor, BackwardsClockRejectedBeyondTolerance) {
  OnlineTailPredictor p(1, 100.0, 1, /*skew_tolerance=*/0.5);
  EXPECT_EQ(p.record(0, 9.0, 3.0), RecordOutcome::kAccepted);
  EXPECT_EQ(p.record(0, 10.0, 1.0), RecordOutcome::kAccepted);
  // 9 s backwards: rejected, window unchanged.
  EXPECT_EQ(p.record(0, 1.0, 100.0), RecordOutcome::kRejected);
  const auto s = p.node_stats(0);
  ASSERT_TRUE(s.has_value());
  EXPECT_DOUBLE_EQ(s->mean, 2.0);
  EXPECT_DOUBLE_EQ(*p.last_timestamp(0), 10.0);
  // Forward progress resumes normally afterwards.
  EXPECT_EQ(p.record(0, 11.0, 2.0), RecordOutcome::kAccepted);
  EXPECT_DOUBLE_EQ(*p.last_timestamp(0), 11.0);
}

TEST(OnlineTailPredictor, ZeroToleranceRejectsAnyBackwardsJump) {
  OnlineTailPredictor p(1, 100.0, 1);  // default tolerance 0
  EXPECT_EQ(p.record(0, 5.0, 1.0), RecordOutcome::kAccepted);
  EXPECT_EQ(p.record(0, 5.0, 1.0), RecordOutcome::kAccepted);  // equal is fine
  EXPECT_EQ(p.record(0, 4.999, 1.0), RecordOutcome::kRejected);
}

TEST(OnlineTailPredictor, NanTimestampRejected) {
  OnlineTailPredictor p(1, 100.0, 1, 1.0);
  EXPECT_EQ(p.record(0, std::nan(""), 1.0), RecordOutcome::kRejected);
  EXPECT_EQ(p.record(0, 1.0, 1.0), RecordOutcome::kAccepted);
  EXPECT_EQ(p.record(0, std::nan(""), 1.0), RecordOutcome::kRejected);
  EXPECT_DOUBLE_EQ(*p.last_timestamp(0), 1.0);
}

TEST(OnlineTailPredictor, AdvanceMovesHighWaterMark) {
  OnlineTailPredictor p(1, 10.0, 1, /*skew_tolerance=*/0.5);
  p.record(0, 1.0, 1.0);
  p.advance(0, 50.0);
  // The idle sweep advanced the node's clock; a sample time-stamped before
  // the sweep (minus tolerance) must now be rejected, not resurrect an
  // already-evicted window region.
  EXPECT_EQ(p.record(0, 20.0, 1.0), RecordOutcome::kRejected);
  EXPECT_EQ(p.record(0, 49.8, 2.0), RecordOutcome::kClamped);
  EXPECT_DOUBLE_EQ(*p.last_timestamp(0), 50.0);
}

// The eviction-path regression the clamp exists for: interleave backwards
// jumps with normal traffic and the window must hold exactly the samples a
// monotone clock would have kept.
TEST(OnlineTailPredictor, SkewedStreamMatchesMonotoneStream) {
  OnlineTailPredictor skewed(1, 5.0, 1, /*skew_tolerance=*/1.0);
  OnlineTailPredictor clean(1, 5.0, 1);
  util::Rng rng(99);
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += 0.05;
    const double v = rng.exponential(2.0);
    // Every 7th sample arrives with a small backwards-skewed timestamp.
    const double skewed_t = (i % 7 == 6) ? t - 0.8 : t;
    EXPECT_NE(skewed.record(0, skewed_t, v), RecordOutcome::kRejected);
    clean.record(0, t, v);
  }
  const auto a = skewed.node_stats(0);
  const auto b = clean.node_stats(0);
  ASSERT_TRUE(a && b);
  // Clamped samples land at the mark instead of t, which can only shift
  // membership at the window edge by < tolerance; moments must agree
  // closely (identical here because no clamp landed on an eviction edge).
  EXPECT_NEAR(a->mean, b->mean, 1e-9);
  EXPECT_NEAR(a->variance, b->variance, 1e-9);
}

TEST(OnlineTailPredictor, PooledStatsSkipsUnderfilledWindows) {
  OnlineTailPredictor p(3, 1e9, 10);
  for (int i = 0; i < 20; ++i) p.record(0, i * 0.1, 2.0 + (i % 2));
  for (int i = 0; i < 20; ++i) p.record(1, i * 0.1, 4.0 + (i % 2));
  p.record(2, 0.0, 1000.0);  // underfilled: must not pollute the pool
  const auto pooled = p.pooled_stats();
  EXPECT_EQ(pooled.filled_nodes, 2u);
  EXPECT_EQ(pooled.total_nodes, 3u);
  EXPECT_DOUBLE_EQ(pooled.count, 40.0);
  EXPECT_NEAR(pooled.mean, 3.5, 1e-12);
  EXPECT_GT(pooled.variance, 0.0);
}

TEST(OnlineTailPredictor, PooledStatsEmptyWhenNothingFilled) {
  OnlineTailPredictor p(2, 10.0, 5);
  p.record(0, 0.0, 1.0);
  const auto pooled = p.pooled_stats();
  EXPECT_EQ(pooled.filled_nodes, 0u);
  EXPECT_EQ(pooled.total_nodes, 2u);
  EXPECT_DOUBLE_EQ(pooled.count, 0.0);
}

TEST(OnlineTailPredictor, PooledStatsMatchesHomogeneousPath) {
  util::Rng rng(64);
  OnlineTailPredictor p(4, 1e9, 10);
  for (int i = 0; i < 2000; ++i) {
    p.record(static_cast<std::size_t>(i % 4), i * 0.01, rng.exponential(5.0));
  }
  const auto pooled = p.pooled_stats();
  ASSERT_EQ(pooled.filled_nodes, 4u);
  const auto direct = p.predict_homogeneous(99.0);
  ASSERT_TRUE(direct.has_value());
  const double via_pooled =
      homogeneous_quantile({pooled.mean, pooled.variance}, 4.0, 99.0);
  EXPECT_NEAR(via_pooled, *direct, 1e-9 * *direct);
}

}  // namespace
}  // namespace forktail::core
