#include "core/online.hpp"

#include <gtest/gtest.h>

#include "stats/welford.hpp"
#include "util/rng.hpp"

namespace forktail::core {
namespace {

TEST(OnlineTailPredictor, RequiresMinSamples) {
  OnlineTailPredictor p(2, 20.0, 10);
  for (int i = 0; i < 9; ++i) {
    p.record(0, i * 0.1, 1.0 + 0.01 * i);
    p.record(1, i * 0.1, 1.0 + 0.01 * i);
  }
  EXPECT_FALSE(p.node_stats(0).has_value());
  EXPECT_FALSE(p.predict_homogeneous(99.0).has_value());
  p.record(0, 1.0, 1.5);
  p.record(1, 1.0, 1.5);
  EXPECT_TRUE(p.node_stats(0).has_value());
  EXPECT_TRUE(p.predict_homogeneous(99.0).has_value());
}

TEST(OnlineTailPredictor, HomogeneousMatchesOfflineFit) {
  util::Rng rng(60);
  OnlineTailPredictor p(4, 1e9, 10);
  stats::Welford all;
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.exponential(5.0);
    p.record(static_cast<std::size_t>(i % 4), i * 0.01, x);
    all.add(x);
  }
  const auto predicted = p.predict_homogeneous(99.0);
  ASSERT_TRUE(predicted.has_value());
  const double offline =
      homogeneous_quantile({all.mean(), all.variance()}, 4.0, 99.0);
  EXPECT_NEAR(*predicted, offline, 1e-6 * offline);
}

TEST(OnlineTailPredictor, WindowForgetsOldRegime) {
  OnlineTailPredictor p(1, 10.0, 5);
  // Old regime: slow responses.
  for (int i = 0; i < 100; ++i) p.record(0, i * 0.05, 100.0 + i % 3);
  const auto before = p.node_stats(0);
  ASSERT_TRUE(before.has_value());
  EXPECT_GT(before->mean, 50.0);
  // New regime 30 s later: fast responses; the window must have rolled.
  for (int i = 0; i < 100; ++i) p.record(0, 35.0 + i * 0.05, 1.0 + (i % 3) * 0.1);
  const auto after = p.node_stats(0);
  ASSERT_TRUE(after.has_value());
  EXPECT_LT(after->mean, 2.0);
}

TEST(OnlineTailPredictor, InhomogeneousSeesSlowNode) {
  util::Rng rng(61);
  OnlineTailPredictor p(3, 1e9, 20);
  for (int i = 0; i < 600; ++i) {
    p.record(0, i * 0.01, rng.exponential(1.0));
    p.record(1, i * 0.01, rng.exponential(1.0));
    p.record(2, i * 0.01, rng.exponential(20.0));  // slow node
  }
  const auto inhom = p.predict_inhomogeneous(99.0);
  ASSERT_TRUE(inhom.has_value());
  // The slow node alone needs ~ 20 ln(100) ~ 92 at p99.
  EXPECT_GT(*inhom, 80.0);
}

TEST(OnlineTailPredictor, SubsetUsesOnlyChosenNodes) {
  util::Rng rng(62);
  OnlineTailPredictor p(3, 1e9, 20);
  for (int i = 0; i < 600; ++i) {
    p.record(0, i * 0.01, rng.exponential(1.0));
    p.record(1, i * 0.01, rng.exponential(1.0));
    p.record(2, i * 0.01, rng.exponential(50.0));
  }
  const std::size_t fast[] = {0, 1};
  const auto fast_pred = p.predict_subset(fast, 99.0);
  ASSERT_TRUE(fast_pred.has_value());
  EXPECT_LT(*fast_pred, 10.0);
  const std::size_t with_slow[] = {0, 2};
  const auto slow_pred = p.predict_subset(with_slow, 99.0);
  ASSERT_TRUE(slow_pred.has_value());
  EXPECT_GT(*slow_pred, 10.0 * *fast_pred);
}

TEST(OnlineTailPredictor, SubsetValidation) {
  OnlineTailPredictor p(2, 10.0, 5);
  std::vector<std::size_t> empty;
  EXPECT_THROW(p.predict_subset(empty, 99.0), std::invalid_argument);
  const std::size_t bad[] = {5};
  EXPECT_THROW(p.predict_subset(bad, 99.0), std::out_of_range);
}

TEST(OnlineTailPredictor, MixturePrediction) {
  util::Rng rng(63);
  OnlineTailPredictor p(2, 1e9, 20);
  for (int i = 0; i < 1000; ++i) {
    p.record(static_cast<std::size_t>(i % 2), i * 0.01, rng.exponential(3.0));
  }
  const auto m = TaskCountMixture::uniform_int(10, 100);
  const auto pred = p.predict_mixture(m, 99.0);
  ASSERT_TRUE(pred.has_value());
  const auto lo = p.predict_homogeneous(99.0, 10.0);
  const auto hi = p.predict_homogeneous(99.0, 100.0);
  ASSERT_TRUE(lo && hi);
  EXPECT_GT(*pred, *lo);
  EXPECT_LT(*pred, *hi);
}

TEST(OnlineTailPredictor, ZeroNodesRejected) {
  EXPECT_THROW(OnlineTailPredictor(0, 10.0), std::invalid_argument);
}

}  // namespace
}  // namespace forktail::core
