// Scenario execution tests: the declarative path must be the hand-wired
// path, exactly.
//
// The scenario layer moves construction and dispatch, not math -- so a
// spec run through SimulatorRegistry must produce bit-identical responses
// to the equivalent hand-assembled fjsim config, and run_scenario's
// predictions must equal calling the core predictors directly.  These
// tests pin that contract, plus the health of every tracked example
// scenario in examples/.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/evt.hpp"
#include "core/predictor.hpp"
#include "dist/factory.hpp"
#include "fjsim/homogeneous.hpp"
#include "fjsim/subset.hpp"
#include "scenario/registry.hpp"
#include "scenario/run.hpp"
#include "scenario/spec.hpp"
#include "stats/percentile.hpp"
#include "util/json.hpp"

#ifndef FORKTAIL_SOURCE_DIR
#define FORKTAIL_SOURCE_DIR "."
#endif

namespace forktail {
namespace {

using scenario::KSpec;
using scenario::ScenarioSpec;
using scenario::Topology;

// ------------------------------------------- spec path == hand-wired path

TEST(ScenarioRun, HomogeneousSpecIsBitIdenticalToHandWiredConfig) {
  ScenarioSpec spec;
  spec.topology = Topology::kHomogeneous;
  spec.nodes = 16;
  spec.service.dist = "Weibull";
  spec.load = 0.8;
  spec.requests = 2000;
  spec.warmup_fraction = 0.25;
  spec.seed = 7;

  fjsim::HomogeneousConfig config;
  config.num_nodes = 16;
  config.service = dist::make_named("Weibull");
  config.load = 0.8;
  config.num_requests = 2000;
  config.warmup_fraction = 0.25;
  config.seed = 7;
  const fjsim::HomogeneousResult direct = fjsim::run_homogeneous(config);

  const scenario::Outcome outcome =
      scenario::SimulatorRegistry::global().run(spec);
  EXPECT_EQ(outcome.responses, direct.responses);  // bitwise, not approximate
  EXPECT_EQ(outcome.lambda, direct.lambda);
  EXPECT_EQ(outcome.total_tasks, direct.total_tasks);
  EXPECT_EQ(outcome.task_stats.mean, direct.task_stats.mean());
  EXPECT_EQ(outcome.task_stats.variance, direct.task_stats.variance());
}

TEST(ScenarioRun, SubsetSpecIsBitIdenticalToHandWiredConfig) {
  ScenarioSpec spec;
  spec.topology = Topology::kSubset;
  spec.nodes = 64;
  spec.service.dist = "Exponential";
  spec.k.mode = KSpec::Mode::kUniform;
  spec.k.lo = 8;
  spec.k.hi = 32;
  spec.load = 0.75;
  spec.requests = 1500;
  spec.warmup_fraction = 0.25;
  spec.seed = 21;

  fjsim::SubsetConfig config;
  config.num_nodes = 64;
  config.service = dist::make_named("Exponential");
  config.k_mode = fjsim::KMode::kUniformInt;
  config.k_lo = 8;
  config.k_hi = 32;
  config.load = 0.75;
  config.num_requests = 1500;
  config.warmup_fraction = 0.25;
  config.seed = 21;
  const fjsim::SubsetResult direct = fjsim::run_subset(config);

  const scenario::Outcome outcome =
      scenario::SimulatorRegistry::global().run(spec);
  EXPECT_EQ(outcome.responses, direct.responses);
  EXPECT_EQ(outcome.lambda, direct.lambda);
  EXPECT_EQ(outcome.mean_k, direct.mean_k);
}

TEST(ScenarioRun, PredictionsMatchDirectPredictorCalls) {
  ScenarioSpec spec;
  spec.topology = Topology::kHomogeneous;
  spec.nodes = 32;
  spec.load = 0.8;
  spec.requests = 2000;
  spec.seed = 3;

  const scenario::ScenarioReport report =
      scenario::run_scenario(spec, {"homogeneous"}, {95.0, 99.0});
  ASSERT_EQ(report.predictions.size(), 1u);
  ASSERT_EQ(report.predictions[0].predicted_ms.size(), 2u);

  // Measured percentiles come from the outcome's response sample ...
  const std::vector<double> ps = {95.0, 99.0};
  EXPECT_EQ(report.measured_ms, stats::percentiles(report.outcome.responses, ps));
  // ... and the prediction is exactly the core model on the outcome's
  // pooled moments (what the hand-wired benches compute).
  EXPECT_EQ(report.predictions[0].predicted_ms[1],
            core::homogeneous_quantile(report.outcome.task_stats, 32.0, 99.0));
}

TEST(ScenarioRun, PredictAllSelectsOnlyApplicableModels) {
  ScenarioSpec spec;
  spec.topology = Topology::kHomogeneous;
  spec.nodes = 8;
  spec.requests = 500;

  const scenario::ScenarioReport report =
      scenario::run_scenario(spec, {"all"}, {99.0});
  ASSERT_FALSE(report.predictions.empty());
  for (const scenario::PredictionRow& row : report.predictions) {
    // "mixture" and "pipeline" never apply to a homogeneous outcome.
    EXPECT_NE(row.predictor, "mixture");
    EXPECT_NE(row.predictor, "pipeline");
  }
}

TEST(ScenarioRun, UnknownOrInapplicablePredictorNamesThrow) {
  ScenarioSpec spec;
  spec.requests = 200;
  EXPECT_THROW(scenario::run_scenario(spec, {"nonsense"}, {99.0}),
               std::invalid_argument);
  // "mixture" exists but needs a uniform-k subset outcome.
  EXPECT_THROW(scenario::run_scenario(spec, {"mixture"}, {99.0}),
               std::invalid_argument);
  EXPECT_THROW(scenario::run_scenario(spec, {"homogeneous"}, {0.0}),
               std::invalid_argument);
}

TEST(ScenarioRun, ReportSerializesWithStableSchema) {
  ScenarioSpec spec;
  spec.name = "report-schema";
  spec.requests = 300;
  const scenario::ScenarioReport report =
      scenario::run_scenario(spec, {"forktail"}, {99.0});
  const util::Json doc = scenario::to_json(report);
  EXPECT_EQ(doc.at("schema").as_string(), "forktail.scenario_report.v1");
  EXPECT_EQ(doc.at("scenario").at("name").as_string(), "report-schema");
  EXPECT_EQ(doc.at("measured").size(), 1u);
  EXPECT_EQ(doc.at("predictions").items()[0].at("predictor").as_string(),
            "forktail");
  // The embedded scenario is itself a loadable spec.
  EXPECT_EQ(scenario::parse_scenario(doc.at("scenario")), spec);
}

// -------------------------------------------- redundancy-d & EVT dispatch

TEST(ScenarioRun, RedundancyDIsFirstFinisherBitIdentical) {
  // redundancy-d = subset topology with d replicas per request and early
  // return at the FIRST completion; the declarative path must hit the
  // plain subset engine with early_k = 1, bit-identically.
  ScenarioSpec spec;
  spec.topology = Topology::kSubset;
  spec.nodes = 32;
  spec.service.dist = "Exponential";
  spec.k.mode = KSpec::Mode::kRedundant;
  spec.k.fixed = 3;
  spec.load = 0.6;
  spec.requests = 1500;
  spec.seed = 11;

  fjsim::SubsetConfig config;
  config.num_nodes = 32;
  config.service = dist::make_named("Exponential");
  config.k_mode = fjsim::KMode::kFixed;
  config.k_fixed = 3;
  config.early_k = 1;
  config.load = 0.6;
  config.num_requests = 1500;
  config.warmup_fraction = spec.warmup_fraction;
  config.seed = 11;
  const fjsim::SubsetResult direct = fjsim::run_subset(config);

  const scenario::Outcome outcome =
      scenario::SimulatorRegistry::global().run(spec);
  EXPECT_EQ(outcome.responses, direct.responses);

  // The forktail predictor answers with the min-of-d quantile, and the
  // min of 3 replicas must beat a single task's latency.
  const scenario::ScenarioReport report =
      scenario::run_scenario(spec, {"forktail"}, {99.0});
  EXPECT_EQ(report.predictions[0].predicted_ms[0],
            core::redundancy_quantile(report.outcome.task_stats, 3.0, 99.0));
  EXPECT_LT(report.predictions[0].predicted_ms[0],
            core::homogeneous_quantile(report.outcome.task_stats, 1.0, 99.0));
}

TEST(ScenarioRun, EvtPredictorMatchesTheCoreCall) {
  ScenarioSpec spec;
  spec.topology = Topology::kHomogeneous;
  spec.nodes = 16;
  spec.service = scenario::ServiceSpec{"Pareto", 4.22, 2.2};
  spec.load = 0.7;
  spec.requests = 3000;
  spec.seed = 5;

  const scenario::ScenarioReport report =
      scenario::run_scenario(spec, {"forktail", "evt"}, {99.0});
  ASSERT_EQ(report.predictions.size(), 2u);
  const scenario::Outcome& outcome = report.outcome;
  const double node_lambda =
      outcome.lambda * outcome.mean_k / static_cast<double>(spec.nodes);
  const auto direct = core::evt_max_quantile(
      outcome.task_stats, outcome.mean_k, 99.0, node_lambda,
      *outcome.service);
  EXPECT_TRUE(direct.frechet);
  EXPECT_EQ(report.predictions[1].predicted_ms[0], direct.value);
  // On the Frechet branch the correction can only raise the GE answer.
  EXPECT_GE(report.predictions[1].predicted_ms[0],
            report.predictions[0].predicted_ms[0]);
}

TEST(ScenarioRun, EvtDegradesToForkTailOnLightTails) {
  ScenarioSpec spec;
  spec.topology = Topology::kHomogeneous;
  spec.nodes = 16;
  spec.requests = 1000;
  spec.seed = 9;

  const scenario::ScenarioReport report =
      scenario::run_scenario(spec, {"forktail", "evt"}, {99.0});
  ASSERT_EQ(report.predictions.size(), 2u);
  EXPECT_EQ(report.predictions[0].predicted_ms[0],
            report.predictions[1].predicted_ms[0]);
}

// ------------------------------------------------- tracked example files

TEST(ScenarioRun, EveryTrackedExampleParsesValidatesAndRoundTrips) {
  const std::filesystem::path dir =
      std::filesystem::path(FORKTAIL_SOURCE_DIR) / "examples";
  std::size_t found = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".json") continue;
    ++found;
    SCOPED_TRACE(entry.path().filename().string());
    ScenarioSpec spec;
    ASSERT_NO_THROW(spec = scenario::load_scenario_file(entry.path().string()));
    EXPECT_NO_THROW(scenario::validate(spec));
    EXPECT_EQ(scenario::parse_scenario(scenario::to_json(spec)), spec);
  }
  // The issue pins at least the homogeneous, heterogeneous, subset
  // (fixed + uniform k), and consolidated cases; pipeline rides along.
  EXPECT_GE(found, 6u);
}

TEST(ScenarioRun, ExampleTopologyCoverageIsComplete) {
  const std::filesystem::path dir =
      std::filesystem::path(FORKTAIL_SOURCE_DIR) / "examples";
  std::vector<bool> seen(5, false);
  bool fixed_k = false;
  bool uniform_k = false;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".json") continue;
    const ScenarioSpec spec =
        scenario::load_scenario_file(entry.path().string());
    seen[static_cast<std::size_t>(spec.topology)] = true;
    if (spec.topology == Topology::kSubset) {
      fixed_k = fixed_k || spec.k.mode == KSpec::Mode::kFixed;
      uniform_k = uniform_k || spec.k.mode == KSpec::Mode::kUniform;
    }
  }
  for (std::size_t t = 0; t < seen.size(); ++t) {
    EXPECT_TRUE(seen[t]) << "no example covers topology "
                         << scenario::topology_name(static_cast<Topology>(t));
  }
  EXPECT_TRUE(fixed_k) << "no fixed-k subset example";
  EXPECT_TRUE(uniform_k) << "no uniform-k subset example";
}

}  // namespace
}  // namespace forktail
