// End-to-end validation of the paper's headline claims at test scale:
// ForkTail's predicted 99th percentile stays within the published error
// bands (20% at 80% load, 15% at 90% load) against simulation, for both the
// white-box and black-box pipelines and for k <= N mixtures.
#include <gtest/gtest.h>

#include "baselines/expfit.hpp"
#include "core/forktail.hpp"
#include "dist/factory.hpp"
#include "fjsim/homogeneous.hpp"
#include "fjsim/subset.hpp"
#include "stats/percentile.hpp"
#include "stats/summary.hpp"

namespace forktail {
namespace {

struct Band {
  const char* dist;
  double load;
  double max_error_pct;  // paper band plus Monte-Carlo slack
};

class HeadlineClaim : public ::testing::TestWithParam<Band> {};

TEST_P(HeadlineClaim, BlackBoxErrorWithinBand) {
  const Band band = GetParam();
  fjsim::HomogeneousConfig cfg;
  cfg.num_nodes = 100;
  cfg.service = dist::make_named(band.dist);
  cfg.load = band.load;
  cfg.num_requests = 60000;
  cfg.warmup_fraction = 0.25;
  cfg.seed = 2024;
  const auto sim = fjsim::run_homogeneous(cfg);
  const double measured = stats::percentile(sim.responses, 99.0);
  // Black-box: fit from the simulator's own measured task moments.
  const double predicted = core::homogeneous_quantile(
      {sim.task_stats.mean(), sim.task_stats.variance()},
      static_cast<double>(cfg.num_nodes), 99.0);
  const double err = stats::relative_error_pct(predicted, measured);
  EXPECT_LE(std::fabs(err), band.max_error_pct)
      << band.dist << " @ " << band.load << ": predicted " << predicted
      << " measured " << measured;
}

INSTANTIATE_TEST_SUITE_P(
    PaperBands, HeadlineClaim,
    ::testing::Values(Band{"Exponential", 0.80, 22.0},
                      Band{"Exponential", 0.90, 17.0},
                      Band{"Weibull", 0.80, 22.0},
                      Band{"Weibull", 0.90, 17.0},
                      Band{"Empirical", 0.80, 25.0},
                      Band{"Empirical", 0.90, 20.0},
                      Band{"TruncPareto", 0.90, 20.0}));

TEST(HeadlineClaims, WhiteBoxMatchesBlackBoxAtHighLoad) {
  // Fig. 4 vs Fig. 5: the white-box (Takacs) and black-box (measured)
  // pipelines must produce nearly the same prediction.
  const auto service = dist::make_named("Empirical");
  fjsim::HomogeneousConfig cfg;
  cfg.num_nodes = 50;
  cfg.service = service;
  cfg.load = 0.9;
  cfg.num_requests = 60000;
  cfg.warmup_fraction = 0.3;
  cfg.seed = 7;
  const auto sim = fjsim::run_homogeneous(cfg);
  const double whitebox =
      core::whitebox_mg1_quantile(sim.lambda, *service, 50.0, 99.0);
  const double blackbox = core::homogeneous_quantile(
      {sim.task_stats.mean(), sim.task_stats.variance()}, 50.0, 99.0);
  EXPECT_NEAR(whitebox, blackbox, 0.1 * whitebox);
}

TEST(HeadlineClaims, GeFitBeatsExponentialFitOnHeavyTails) {
  // The paper's claim vs [30]: with a heavy-tailed service distribution the
  // GE fit's p99 prediction error is smaller than the exponential fit's.
  fjsim::HomogeneousConfig cfg;
  cfg.num_nodes = 50;
  cfg.service = dist::make_named("TruncPareto");
  cfg.load = 0.75;
  cfg.num_requests = 60000;
  cfg.warmup_fraction = 0.25;
  cfg.seed = 9;
  const auto sim = fjsim::run_homogeneous(cfg);
  const double measured = stats::percentile(sim.responses, 99.0);
  const core::TaskStats stats{sim.task_stats.mean(), sim.task_stats.variance()};
  const double ge_err = std::fabs(
      stats::relative_error_pct(core::homogeneous_quantile(stats, 50.0, 99.0),
                                measured));
  const double exp_err = std::fabs(stats::relative_error_pct(
      baselines::exponential_fit_quantile(stats, 50.0, 99.0), measured));
  EXPECT_LT(ge_err, exp_err);
}

TEST(HeadlineClaims, MixturePredictionAtHighLoad) {
  // Case 2 (Section 4.2) at test scale: k ~ U[8, 24] on 32 nodes, 90% load.
  fjsim::SubsetConfig cfg;
  cfg.num_nodes = 32;
  cfg.service = dist::make_named("Exponential");
  cfg.load = 0.9;
  cfg.k_mode = fjsim::KMode::kUniformInt;
  cfg.k_lo = 8;
  cfg.k_hi = 24;
  cfg.num_requests = 60000;
  cfg.warmup_fraction = 0.25;
  cfg.seed = 10;
  const auto sim = fjsim::run_subset(cfg);
  const double measured = stats::percentile(sim.responses, 99.0);
  const auto mixture = core::TaskCountMixture::uniform_int(8, 24);
  const double predicted = core::mixture_quantile(
      {sim.task_stats.mean(), sim.task_stats.variance()}, mixture, 99.0);
  EXPECT_LE(std::fabs(stats::relative_error_pct(predicted, measured)), 15.0);
}

TEST(HeadlineClaims, RedundancyCutsTheTailAndStaysPredictable) {
  // Fig. 7's observation at the 90% load point: speculative execution
  // shortens the measured tail versus plain round-robin, and the black-box
  // prediction stays within the paper's high-load band.
  fjsim::HomogeneousConfig rr;
  rr.num_nodes = 100;
  rr.replicas = 3;
  rr.policy = fjsim::Policy::kRoundRobin;
  rr.service = dist::make_named("Empirical");
  rr.load = 0.9;
  rr.num_requests = 40000;
  rr.warmup_fraction = 0.25;
  rr.seed = 11;
  auto red = rr;
  red.policy = fjsim::Policy::kRedundant;
  red.redundant_delay = 10.0;  // ~p95 of the service distribution
  const auto sim_rr = fjsim::run_homogeneous(rr);
  const auto sim_red = fjsim::run_homogeneous(red);
  EXPECT_LT(stats::percentile(sim_red.responses, 99.0),
            stats::percentile(sim_rr.responses, 99.0));
  const auto err_of = [](const fjsim::HomogeneousResult& sim, double k) {
    const double measured = stats::percentile(sim.responses, 99.0);
    const double predicted = core::homogeneous_quantile(
        {sim.task_stats.mean(), sim.task_stats.variance()}, k, 99.0);
    return std::fabs(stats::relative_error_pct(predicted, measured));
  };
  // The residual tail after cancellation is rare-event driven, so the
  // measured p99 carries seed-level noise of several percent; the band
  // here is the paper's high-load bound plus that slack.
  EXPECT_LE(err_of(sim_red, 100.0), 30.0);
}

TEST(HeadlineClaims, SchedulerAdmitsWhatItPredicts) {
  // Close the loop: measure a simulated cluster, publish stats into the
  // registry, and verify the admission decision against the same cluster's
  // measured tail.
  fjsim::HomogeneousConfig cfg;
  cfg.num_nodes = 16;
  cfg.service = dist::make_named("Exponential");
  cfg.load = 0.85;
  cfg.num_requests = 50000;
  cfg.warmup_fraction = 0.25;
  cfg.seed = 12;
  const auto sim = fjsim::run_homogeneous(cfg);
  const double measured_p99 = stats::percentile(sim.responses, 99.0);

  core::NodeStatsRegistry registry(16, 60.0);
  for (std::size_t i = 0; i < 16; ++i) {
    registry.report(i, 0.0,
                    {sim.task_stats.mean(), sim.task_stats.variance()});
  }
  core::AdmissionController ctl(registry);
  // SLO at 1.3x the measured tail must be admitted; at 0.5x rejected.
  EXPECT_TRUE(ctl.admit(16, {99.0, 1.3 * measured_p99}, 1.0).admitted);
  EXPECT_FALSE(ctl.admit(16, {99.0, 0.5 * measured_p99}, 1.0).admitted);
}

}  // namespace
}  // namespace forktail
