#include <gtest/gtest.h>

#include <cmath>

#include "dist/basic.hpp"
#include "dist/factory.hpp"
#include "fjsim/homogeneous.hpp"
#include "queueing/heavy_traffic.hpp"
#include "queueing/mg1.hpp"
#include "queueing/mm1.hpp"
#include "queueing/mmc.hpp"
#include "stats/welford.hpp"

namespace forktail::queueing {
namespace {

TEST(Mm1, ClosedForms) {
  Mm1 q(0.9, 1.0);  // rho = 0.9
  EXPECT_NEAR(q.utilization(), 0.9, 1e-12);
  EXPECT_NEAR(q.mean_response(), 10.0, 1e-12);
  EXPECT_NEAR(q.mean_wait(), 9.0, 1e-12);
  EXPECT_NEAR(q.response_variance(), 100.0, 1e-12);
  EXPECT_NEAR(q.response_ccdf(10.0 * std::log(100.0)), 0.01, 1e-12);
  EXPECT_NEAR(q.response_percentile(99.0), 10.0 * std::log(100.0), 1e-9);
}

TEST(Mm1, RejectsUnstable) {
  EXPECT_THROW(Mm1(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Mm1(-1.0, 1.0), std::invalid_argument);
}

TEST(Mg1, ReducesToMm1ForExponentialService) {
  const dist::Exponential service(1.0);
  const auto r = mg1_response(0.8, service);
  Mm1 q(0.8, 1.0);
  EXPECT_NEAR(r.mean, q.mean_response(), 1e-12);
  // M/M/1 response is Exp(mu - lambda): variance = mean^2.
  EXPECT_NEAR(r.variance, q.response_variance(), 1e-9);
}

TEST(Mg1, DeterministicServiceHalvesWaiting) {
  // M/D/1 mean wait is half of M/M/1's at the same rho.
  const dist::Deterministic det(1.0);
  const dist::Exponential expo(1.0);
  const auto rd = mg1_response(0.8, det);
  const auto re = mg1_response(0.8, expo);
  EXPECT_NEAR(rd.mean_wait, 0.5 * re.mean_wait, 1e-12);
}

TEST(Mg1, RejectsUnstableAndBadInput) {
  const dist::Exponential service(1.0);
  EXPECT_THROW(mg1_response(1.0, service), std::invalid_argument);
  EXPECT_THROW(mg1_response(0.0, service), std::invalid_argument);
}

TEST(Mg1, LambdaForLoadInverse) {
  EXPECT_NEAR(lambda_for_load(0.9, 4.22), 0.9 / 4.22, 1e-12);
  EXPECT_THROW(lambda_for_load(1.0, 4.22), std::invalid_argument);
}

// White-box Eq. (10)-(11) validated against a single-queue simulation for
// every named service distribution of the paper.
class Mg1SimValidation : public ::testing::TestWithParam<const char*> {};

TEST_P(Mg1SimValidation, MomentsMatchSimulation) {
  const dist::DistPtr service = dist::make_named(GetParam());
  const double rho = 0.8;
  const double lambda = rho / service->mean();
  const auto analytic = mg1_response(lambda, *service);

  // A one-node "fork-join" IS an M/G/1 queue; reuse the fast simulator.
  fjsim::HomogeneousConfig cfg;
  cfg.num_nodes = 1;
  cfg.service = service;
  cfg.load = rho;
  // Heavy-tailed service makes E[W] and especially V[W] converge slowly
  // (both are driven by rare huge jobs); use a long run and a wide band on
  // the variance.
  cfg.num_requests = 1500000;
  cfg.warmup_fraction = 0.3;
  cfg.seed = 777;
  const auto result = fjsim::run_homogeneous(cfg);

  EXPECT_NEAR(result.task_stats.mean(), analytic.mean, 0.05 * analytic.mean)
      << GetParam();
  EXPECT_NEAR(result.task_stats.variance(), analytic.variance,
              0.25 * analytic.variance)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllServiceDistributions, Mg1SimValidation,
                         ::testing::Values("Exponential", "Erlang-2",
                                           "HyperExp2", "Weibull",
                                           "TruncPareto", "Empirical"));

TEST(Mmc, ErlangCKnownValue) {
  // M/M/2, lambda = 1.5, mu = 1: rho = 0.75, Erlang-C = 0.6428571...
  Mmc q(1.5, 1.0, 2);
  EXPECT_NEAR(q.prob_wait(), 0.642857142857, 1e-9);
  EXPECT_NEAR(q.mean_wait(), 0.642857142857 / 0.5, 1e-9);
}

TEST(Mmc, SingleServerReducesToMm1) {
  Mmc q(0.7, 1.0, 1);
  Mm1 m(0.7, 1.0);
  EXPECT_NEAR(q.prob_wait(), 0.7, 1e-12);  // P(wait) = rho in M/M/1
  EXPECT_NEAR(q.mean_response(), m.mean_response(), 1e-12);
}

TEST(Mmc, PoolingBeatsPartitioning) {
  // Classic result: one M/M/3 at rho outperforms three M/M/1 at the same
  // per-server rho -- relevant to replicated fork nodes.
  Mmc pooled(2.4, 1.0, 3);
  Mm1 partitioned(0.8, 1.0);
  EXPECT_LT(pooled.mean_response(), partitioned.mean_response());
}

TEST(Kingman, MatchesMm1AtExponential) {
  GG1Inputs in{0.9, 1.0, 1.0, 1.0};
  Mm1 q(0.9, 1.0);
  EXPECT_NEAR(kingman_mean_wait(in), q.mean_wait(), 1e-9);
}

TEST(Kingman, ScalesWithVariability) {
  GG1Inputs low{0.9, 1.0, 1.0, 0.5};
  GG1Inputs high{0.9, 1.0, 1.0, 2.0};
  EXPECT_LT(kingman_mean_wait(low), kingman_mean_wait(high));
}

TEST(Kingman, PercentileConsistentWithCcdf) {
  GG1Inputs in{0.9, 1.0, 1.0, 1.5};
  const double x = kingman_wait_percentile(in, 99.0);
  EXPECT_NEAR(kingman_wait_ccdf(in, x), 0.01, 1e-9);
}

TEST(Kingman, LowPercentileInAtom) {
  GG1Inputs in{0.5, 1.0, 1.0, 1.0};
  // P(W = 0) ~ 0.5, so the 40th percentile of waiting time is 0.
  EXPECT_DOUBLE_EQ(kingman_wait_percentile(in, 40.0), 0.0);
}

}  // namespace
}  // namespace forktail::queueing
