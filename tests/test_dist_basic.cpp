#include "dist/basic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "dist/factory.hpp"
#include "stats/ecdf.hpp"
#include "stats/welford.hpp"
#include "util/rng.hpp"

namespace forktail::dist {
namespace {

// Shared property checks: sampled moments match analytic moments; the
// empirical CDF of samples matches the analytic CDF.
void check_distribution(const Distribution& d, double moment_tol_rel,
                        std::uint64_t seed, int n = 200000) {
  util::Rng rng(seed);
  stats::RawMoments m;
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double x = d.sample(rng);
    ASSERT_GE(x, 0.0);
    m.add(x);
    samples.push_back(x);
  }
  EXPECT_NEAR(m.moment(1), d.moment(1), moment_tol_rel * d.moment(1))
      << d.name() << " mean";
  EXPECT_NEAR(m.moment(2), d.moment(2), 3 * moment_tol_rel * d.moment(2))
      << d.name() << " m2";
  stats::Ecdf ecdf(samples);
  const double ks = ecdf.ks_distance([&](double x) { return d.cdf(x); });
  EXPECT_LT(ks, 0.01) << d.name() << " KS";
}

TEST(Exponential, MomentsAndCdf) {
  Exponential d(4.22);
  EXPECT_DOUBLE_EQ(d.mean(), 4.22);
  EXPECT_NEAR(d.variance(), 4.22 * 4.22, 1e-12);
  EXPECT_NEAR(d.scv(), 1.0, 1e-12);
  EXPECT_NEAR(d.moment(3), 6 * std::pow(4.22, 3), 1e-9);
  check_distribution(d, 0.01, 100);
}

TEST(Exponential, LstAtZeroIsOne) {
  Exponential d(2.0);
  EXPECT_TRUE(d.has_lst());
  EXPECT_NEAR(d.lst({0.0, 0.0}).real(), 1.0, 1e-12);
  // LST derivative at 0 gives -mean: finite difference check.
  const double h = 1e-6;
  const double deriv = (d.lst({h, 0.0}).real() - 1.0) / h;
  EXPECT_NEAR(deriv, -2.0, 1e-4);
}

TEST(Exponential, RejectsBadMean) {
  EXPECT_THROW(Exponential(0.0), std::invalid_argument);
  EXPECT_THROW(Exponential(-1.0), std::invalid_argument);
}

TEST(Erlang, ScvIsInverseStages) {
  for (int k : {1, 2, 4, 8}) {
    Erlang d(k, 4.22);
    EXPECT_NEAR(d.mean(), 4.22, 1e-12);
    EXPECT_NEAR(d.scv(), 1.0 / k, 1e-12) << "k=" << k;
  }
}

TEST(Erlang, SamplingMatchesAnalytic) {
  Erlang d(2, 4.22);
  check_distribution(d, 0.01, 101);
}

TEST(Erlang, CdfMatchesPoissonSum) {
  Erlang d(3, 3.0);  // stage rate 1
  // P(X <= x) = 1 - e^-x (1 + x + x^2/2) for unit stage rate.
  const double x = 2.5;
  const double expected = 1.0 - std::exp(-x) * (1.0 + x + x * x / 2.0);
  EXPECT_NEAR(d.cdf(x), expected, 1e-12);
}

TEST(Erlang, OneStageEqualsExponential) {
  Erlang e1(1, 5.0);
  Exponential ex(5.0);
  for (double x : {0.5, 2.0, 10.0}) {
    EXPECT_NEAR(e1.cdf(x), ex.cdf(x), 1e-12);
  }
  EXPECT_NEAR(e1.moment(3), ex.moment(3), 1e-9);
}

TEST(HyperExp2, FromMeanScvHitsTargets) {
  const auto d = HyperExp2::from_mean_scv(4.22, 2.0);
  EXPECT_NEAR(d.mean(), 4.22, 1e-12);
  EXPECT_NEAR(d.scv(), 2.0, 1e-12);
}

TEST(HyperExp2, SamplingMatchesAnalytic) {
  const auto d = HyperExp2::from_mean_scv(4.22, 2.0);
  check_distribution(d, 0.02, 102);
}

TEST(HyperExp2, RequiresScvAtLeastOne) {
  EXPECT_THROW(HyperExp2::from_mean_scv(1.0, 0.5), std::invalid_argument);
}

TEST(HyperExp2, LstMatchesMixture) {
  const auto d = HyperExp2::from_mean_scv(2.0, 3.0);
  const std::complex<double> s{0.7, 0.0};
  const std::complex<double> expected =
      d.p1() * (d.rate1() / (d.rate1() + s)) +
      (1.0 - d.p1()) * (d.rate2() / (d.rate2() + s));
  EXPECT_NEAR(d.lst(s).real(), expected.real(), 1e-14);
}

TEST(Deterministic, AllMassAtValue) {
  Deterministic d(3.5);
  util::Rng rng(5);
  EXPECT_DOUBLE_EQ(d.sample(rng), 3.5);
  EXPECT_DOUBLE_EQ(d.mean(), 3.5);
  EXPECT_NEAR(d.variance(), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(d.cdf(3.4), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(3.5), 1.0);
  EXPECT_NEAR(d.lst({1.0, 0.0}).real(), std::exp(-3.5), 1e-12);
}

TEST(UniformReal, MomentsAndCdf) {
  UniformReal d(2.0, 6.0);
  EXPECT_DOUBLE_EQ(d.mean(), 4.0);
  EXPECT_NEAR(d.variance(), 16.0 / 12.0, 1e-12);
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(4.0), 0.5);
  EXPECT_DOUBLE_EQ(d.cdf(7.0), 1.0);
  check_distribution(d, 0.01, 103);
}

TEST(Factory, BuildsAllNamedDistributionsAtPaperMean) {
  for (const auto& name : named_distributions()) {
    const DistPtr d = make_named(name);
    ASSERT_TRUE(d) << name;
    EXPECT_NEAR(d->mean(), kPaperMeanServiceMs, 1e-6) << name;
  }
}

TEST(Factory, UnknownNameThrows) {
  EXPECT_THROW(make_named("Zipf"), std::invalid_argument);
}

TEST(Factory, CvRosterMatchesPaper) {
  EXPECT_NEAR(make_named("Erlang-2")->scv(), 0.5, 1e-9);
  EXPECT_NEAR(make_named("Exponential")->scv(), 1.0, 1e-9);
  EXPECT_NEAR(make_named("HyperExp2")->scv(), 2.0, 1e-9);
  EXPECT_NEAR(make_named("Weibull")->cv(), 1.5, 1e-6);
  EXPECT_NEAR(make_named("TruncPareto")->cv(), 1.2, 1e-6);
  EXPECT_NEAR(make_named("Empirical")->cv(), 1.12, 0.01);
}

}  // namespace
}  // namespace forktail::dist
