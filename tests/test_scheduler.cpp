#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace forktail::core {
namespace {

TEST(NodeStatsRegistry, ReportAndFetch) {
  NodeStatsRegistry reg(4, 60.0);
  reg.report(2, 10.0, {5.0, 25.0});
  const auto s = reg.fresh_stats(2, 20.0);
  ASSERT_TRUE(s.has_value());
  EXPECT_DOUBLE_EQ(s->mean, 5.0);
  EXPECT_FALSE(reg.fresh_stats(0, 20.0).has_value());
}

TEST(NodeStatsRegistry, StalenessExpires) {
  NodeStatsRegistry reg(2, 30.0);
  reg.report(0, 0.0, {1.0, 1.0});
  EXPECT_TRUE(reg.fresh_stats(0, 29.0).has_value());
  EXPECT_FALSE(reg.fresh_stats(0, 31.0).has_value());
}

TEST(NodeStatsRegistry, FreshCount) {
  NodeStatsRegistry reg(3, 10.0);
  reg.report(0, 0.0, {1.0, 1.0});
  reg.report(1, 8.0, {1.0, 1.0});
  EXPECT_EQ(reg.fresh_count(9.0), 2u);
  EXPECT_EQ(reg.fresh_count(15.0), 1u);
}

TEST(NodeStatsRegistry, Validation) {
  EXPECT_THROW(NodeStatsRegistry(0), std::invalid_argument);
  NodeStatsRegistry reg(2);
  EXPECT_THROW(reg.report(0, 0.0, {0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(reg.report(5, 0.0, {1.0, 1.0}), std::out_of_range);
}

NodeStatsRegistry make_cluster(double slow_mean = 0.0) {
  NodeStatsRegistry reg(8, 100.0);
  for (std::size_t i = 0; i < 8; ++i) {
    reg.report(i, 0.0, {2.0 + 0.1 * static_cast<double>(i),
                        4.0 + 0.1 * static_cast<double>(i)});
  }
  if (slow_mean > 0.0) reg.report(7, 0.0, {slow_mean, slow_mean * slow_mean});
  return reg;
}

TEST(AdmissionController, AdmitsFeasibleRequest) {
  const auto reg = make_cluster();
  AdmissionController ctl(reg);
  const auto d = ctl.admit(4, {99.0, 100.0}, 1.0);
  EXPECT_TRUE(d.admitted);
  EXPECT_EQ(d.chosen_nodes.size(), 4u);
  EXPECT_LE(d.predicted_latency, 100.0);
}

TEST(AdmissionController, RejectsInfeasibleSlo) {
  const auto reg = make_cluster();
  AdmissionController ctl(reg);
  const auto d = ctl.admit(4, {99.0, 0.5}, 1.0);
  EXPECT_FALSE(d.admitted);
  EXPECT_TRUE(d.chosen_nodes.empty());
  EXPECT_GT(d.predicted_latency, 0.5);
}

TEST(AdmissionController, AvoidsTheSlowNode) {
  const auto reg = make_cluster(/*slow_mean=*/50.0);
  AdmissionController ctl(reg);
  const auto d = ctl.admit(7, {99.0, 1000.0}, 1.0);
  ASSERT_TRUE(d.admitted);
  EXPECT_EQ(std::count(d.chosen_nodes.begin(), d.chosen_nodes.end(), 7u), 0);
}

TEST(AdmissionController, PredictionMatchesChosenSubset) {
  const auto reg = make_cluster();
  AdmissionController ctl(reg);
  const auto d = ctl.admit(3, {99.0, 500.0}, 1.0);
  ASSERT_TRUE(d.admitted);
  std::vector<TaskStats> chosen;
  for (std::size_t n : d.chosen_nodes) {
    chosen.push_back(*reg.fresh_stats(n, 1.0));
  }
  EXPECT_NEAR(d.predicted_latency, inhomogeneous_quantile(chosen, 99.0),
              1e-9);
}

TEST(AdmissionController, NotEnoughFreshNodes) {
  NodeStatsRegistry reg(4, 10.0);
  reg.report(0, 0.0, {1.0, 1.0});
  AdmissionController ctl(reg);
  const auto d = ctl.admit(2, {99.0, 100.0}, 1.0);
  EXPECT_FALSE(d.admitted);
}

TEST(AdmissionController, BadKRejected) {
  const auto reg = make_cluster();
  AdmissionController ctl(reg);
  EXPECT_THROW(ctl.admit(0, {99.0, 1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(ctl.admit(9, {99.0, 1.0}, 0.0), std::invalid_argument);
}

TEST(AdmissionController, GreedyBeatsWorstSubset) {
  // The controller's k-best subset must predict no worse than the k-worst.
  const auto reg = make_cluster(/*slow_mean=*/40.0);
  AdmissionController ctl(reg);
  const auto d = ctl.admit(3, {99.0, 1e9}, 1.0);
  ASSERT_TRUE(d.admitted);
  std::vector<TaskStats> worst = {{40.0, 1600.0},
                                  {2.6, 4.6},
                                  {2.5, 4.5}};
  EXPECT_LT(d.predicted_latency, inhomogeneous_quantile(worst, 99.0));
}

}  // namespace
}  // namespace forktail::core
