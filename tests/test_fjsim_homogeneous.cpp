#include "fjsim/homogeneous.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "dist/basic.hpp"
#include "dist/factory.hpp"
#include "queueing/mg1.hpp"
#include "queueing/mm1.hpp"
#include "stats/percentile.hpp"

namespace forktail::fjsim {
namespace {

HomogeneousConfig base(std::size_t nodes, double load) {
  HomogeneousConfig c;
  c.num_nodes = nodes;
  c.service = std::make_shared<dist::Exponential>(1.0);
  c.load = load;
  c.num_requests = 50000;
  c.warmup_fraction = 0.25;
  c.seed = 31;
  return c;
}

TEST(Homogeneous, BitIdenticalAcrossParallelismLevels) {
  auto c = base(16, 0.7);
  c.num_requests = 5000;
  c.max_parallelism = 1;  // inline, no pool
  const auto serial = run_homogeneous(c);
  for (std::size_t parallelism : {0u, 3u, 16u}) {
    c.max_parallelism = parallelism;
    const auto r = run_homogeneous(c);
    ASSERT_EQ(r.responses.size(), serial.responses.size());
    for (std::size_t i = 0; i < r.responses.size(); ++i) {
      ASSERT_EQ(r.responses[i], serial.responses[i]);
    }
    EXPECT_EQ(r.task_stats.count(), serial.task_stats.count());
    EXPECT_EQ(r.task_stats.mean(), serial.task_stats.mean());
    EXPECT_EQ(r.task_stats.variance(), serial.task_stats.variance());
    EXPECT_EQ(r.redundant_issues, serial.redundant_issues);
  }
}

TEST(Homogeneous, SingleNodeIsMm1) {
  auto c = base(1, 0.8);
  // The response-variance estimator is long-range dependent at 80% load;
  // 500k requests keep its seed noise safely inside the 12% band.
  c.num_requests = 500000;
  const auto r = run_homogeneous(c);
  queueing::Mm1 q(0.8, 1.0);
  EXPECT_NEAR(r.task_stats.mean(), q.mean_response(), 0.04 * q.mean_response());
  EXPECT_NEAR(r.task_stats.variance(), q.response_variance(),
              0.12 * q.response_variance());
  EXPECT_NEAR(stats::percentile(r.responses, 99.0), q.response_percentile(99.0),
              0.08 * q.response_percentile(99.0));
}

TEST(Homogeneous, TaskMomentsMatchTakacsForHeavyTail) {
  HomogeneousConfig c;
  c.num_nodes = 4;
  c.service = dist::make_named("TruncPareto");
  c.load = 0.8;
  c.num_requests = 150000;
  c.warmup_fraction = 0.3;
  c.seed = 32;
  const auto r = run_homogeneous(c);
  const auto analytic = queueing::mg1_response(r.lambda, *c.service);
  EXPECT_NEAR(r.task_stats.mean(), analytic.mean, 0.05 * analytic.mean);
  EXPECT_NEAR(r.task_stats.variance(), analytic.variance,
              0.2 * analytic.variance);
}

TEST(Homogeneous, ResponseGrowsWithN) {
  const auto r8 = run_homogeneous(base(8, 0.8));
  const auto r64 = run_homogeneous(base(64, 0.8));
  EXPECT_LT(stats::percentile(r8.responses, 99.0),
            stats::percentile(r64.responses, 99.0));
}

TEST(Homogeneous, ResponseGrowsWithLoad) {
  const auto lo = run_homogeneous(base(16, 0.5));
  const auto hi = run_homogeneous(base(16, 0.9));
  EXPECT_LT(stats::percentile(lo.responses, 99.0),
            stats::percentile(hi.responses, 99.0));
}

TEST(Homogeneous, LambdaAccountsForReplicas) {
  auto c = base(4, 0.6);
  c.replicas = 3;
  c.policy = Policy::kRoundRobin;
  const auto r = run_homogeneous(c);
  // lambda = rho * replicas / E[S].
  EXPECT_NEAR(r.lambda, 0.6 * 3.0, 1e-12);
}

TEST(Homogeneous, RedundantPolicyCountsIssues) {
  HomogeneousConfig c;
  c.num_nodes = 4;
  c.replicas = 3;
  c.policy = Policy::kRedundant;
  c.redundant_delay = 10.0;  // ms; ~p95 of the empirical distribution
  c.service = dist::make_named("Empirical");
  c.load = 0.5;
  c.num_requests = 20000;
  c.seed = 33;
  const auto r = run_homogeneous(c);
  EXPECT_GT(r.redundant_issues, 0u);
  // Issue fraction should be modest (tail-only), well under 30%.
  const double frac = static_cast<double>(r.redundant_issues) /
                      static_cast<double>(r.total_tasks);
  EXPECT_LT(frac, 0.3);
  EXPECT_GT(frac, 0.005);
}

TEST(Homogeneous, DeterministicUnderSeed) {
  const auto a = run_homogeneous(base(4, 0.7));
  const auto b = run_homogeneous(base(4, 0.7));
  ASSERT_EQ(a.responses.size(), b.responses.size());
  EXPECT_DOUBLE_EQ(a.responses[123], b.responses[123]);
  EXPECT_DOUBLE_EQ(a.task_stats.mean(), b.task_stats.mean());
}

TEST(Homogeneous, Validation) {
  auto c = base(4, 0.7);
  c.load = 1.2;
  EXPECT_THROW(run_homogeneous(c), std::invalid_argument);
  c = base(0, 0.7);
  EXPECT_THROW(run_homogeneous(c), std::invalid_argument);
  c = base(4, 0.7);
  c.service = nullptr;
  EXPECT_THROW(run_homogeneous(c), std::invalid_argument);
  c = base(4, 0.7);
  c.replicas = 2;  // kSingle requires 1 replica
  EXPECT_THROW(run_homogeneous(c), std::invalid_argument);
}

}  // namespace
}  // namespace forktail::fjsim
