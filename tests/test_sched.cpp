#include "sched/closed_loop.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dist/basic.hpp"
#include "stats/percentile.hpp"

namespace forktail::sched {
namespace {

ClosedLoopConfig base_config() {
  ClosedLoopConfig cfg;
  cfg.num_nodes = 32;
  cfg.service = std::make_shared<dist::Exponential>(5.0);  // ms
  cfg.tasks_per_request = 8;
  // Offered load: lambda * k / N * E[S] per server.
  cfg.lambda = 0.8 * 32.0 / (8.0 * 5.0);  // 80% load
  cfg.window_seconds = 500.0;             // ms units throughout
  cfg.report_interval = 50.0;
  cfg.num_requests = 50000;
  cfg.seed = 5;
  return cfg;
}

TEST(ClosedLoop, GenerousSloAdmitsEverything) {
  ClosedLoopConfig cfg = base_config();
  cfg.slo = {99.0, 100000.0};  // effectively unbounded
  const auto r = run_closed_loop(cfg);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_DOUBLE_EQ(r.admit_rate, 1.0);
  EXPECT_LT(r.violation_rate, 0.001);
}

TEST(ClosedLoop, AchievableSloAdmitsMostAndRarelyViolates) {
  // Find the p99 the system delivers unmanaged, then impose an SLO with
  // 50% headroom -- a realistically provisioned target.  Nearly everything
  // is admitted and violations stay well under the 1% tail mass.  (An SLO
  // with ZERO headroom -- exactly the unmanaged p99 -- would by
  // construction sit where half the instantaneous predictions cross it, so
  // heavy rejection there is correct controller behaviour, not a bug.)
  ClosedLoopConfig probe = base_config();
  probe.num_requests = 150000;  // the 1% bound needs a tight p99 calibration
  probe.slo = {99.0, 1e9};
  probe.admission_enabled = false;
  const auto baseline = run_closed_loop(probe);
  const double p99 = stats::percentile(baseline.admitted_responses, 99.0);

  ClosedLoopConfig cfg = base_config();
  cfg.num_requests = 150000;
  cfg.slo = {99.0, 1.5 * p99};
  const auto r = run_closed_loop(cfg);
  EXPECT_GT(r.admit_rate, 0.9);
  EXPECT_LT(r.violation_rate, 0.01);
}

TEST(ClosedLoop, OverloadShedsLoadAndProtectsAdmittedRequests) {
  // Offered load at 125% of capacity with an SLO calibrated at a healthy
  // 70% operating point.  Uncontrolled, the queues diverge and essentially
  // every request violates; with admission control the controller sheds
  // the excess and keeps the admitted requests' tail within an order of
  // magnitude of the SLO instead of unbounded.
  auto overload_config = [](bool admission, double slo_latency) {
    ClosedLoopConfig cfg = base_config();
    cfg.lambda = 1.25 * 32.0 / (8.0 * 5.0);  // 125% of capacity
    cfg.slo = {99.0, slo_latency};
    cfg.admission_enabled = admission;
    return cfg;
  };
  // Calibrate the SLO at a comfortable 70% load.
  ClosedLoopConfig ref = base_config();
  ref.lambda = 0.7 * 32.0 / (8.0 * 5.0);
  ref.slo = {99.0, 1e9};
  ref.admission_enabled = false;
  const double slo = stats::percentile(
      run_closed_loop(ref).admitted_responses, 99.0);

  const auto chaos = run_closed_loop(overload_config(false, slo));
  const auto controlled = run_closed_loop(overload_config(true, slo));

  EXPECT_GT(chaos.violation_rate, 0.9);  // divergent without control
  EXPECT_LT(controlled.admit_rate, 0.9);  // real shedding happened
  EXPECT_LT(controlled.violation_rate, 0.45);
  const double p99_chaos = stats::percentile(chaos.admitted_responses, 99.0);
  const double p99_ctl =
      stats::percentile(controlled.admitted_responses, 99.0);
  EXPECT_LT(p99_ctl, 0.1 * p99_chaos);
}

TEST(ClosedLoop, PredictionsAreSelfConsistent) {
  ClosedLoopConfig cfg = base_config();
  cfg.slo = {99.0, 400.0};
  const auto r = run_closed_loop(cfg);
  ASSERT_GT(r.admitted, 0u);
  // Every admission was justified by a prediction <= SLO.
  EXPECT_LE(r.mean_predicted_latency, cfg.slo.latency);
}

TEST(ClosedLoop, AccountingAddsUp) {
  ClosedLoopConfig cfg = base_config();
  cfg.slo = {99.0, 200.0};
  const auto r = run_closed_loop(cfg);
  EXPECT_EQ(r.offered, r.admitted + r.rejected);
  EXPECT_EQ(r.admitted_responses.size(), r.admitted);
  std::uint64_t violations = 0;
  for (double x : r.admitted_responses) {
    if (x > cfg.slo.latency) ++violations;
  }
  EXPECT_EQ(violations, r.violations);
}

TEST(ClosedLoop, DeterministicUnderSeed) {
  ClosedLoopConfig cfg = base_config();
  cfg.slo = {99.0, 300.0};
  const auto a = run_closed_loop(cfg);
  const auto b = run_closed_loop(cfg);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.violations, b.violations);
}

TEST(ClosedLoop, ClusterScaleThousandNodes) {
  // 1000 nodes in memory-bounded mode (no response vector, 16 stats
  // shards): the configuration family the 10M-request bench_cluster row
  // runs, scaled down to test-suite budget.  The histogram and the sharded
  // per-node roll-up must carry the statistics the vector would have.
  ClosedLoopConfig cfg;
  cfg.num_nodes = 1000;
  cfg.service = std::make_shared<dist::Exponential>(1.0);
  cfg.tasks_per_request = 16;
  cfg.lambda = 0.6 * 1000.0 / 16.0;
  cfg.slo = {99.0, 25.0};
  cfg.num_requests = 40000;
  cfg.seed = 2;
  cfg.record_responses = false;
  cfg.stats_shards = 16;
  const auto r = run_closed_loop(cfg);
  EXPECT_TRUE(r.admitted_responses.empty());
  ASSERT_GT(r.admitted, 0u);
  // The histogram saw exactly the measured admitted requests.
  EXPECT_EQ(r.response_histogram.total(), r.admitted);
  const double p99 = r.response_histogram.percentile(99.0);
  EXPECT_GT(p99, 0.0);
  EXPECT_TRUE(std::isfinite(p99));
  // Per-node roll-up: every node served work, and the pooled sample count
  // is the total number of measured tasks.
  ASSERT_EQ(r.node_tasks.per_node.size(), 1000u);
  std::uint64_t tasks = 0;
  for (const auto& w : r.node_tasks.per_node) {
    EXPECT_GT(w.count(), 0u);
    tasks += w.count();
  }
  EXPECT_EQ(r.node_tasks.pooled.count(), tasks);
  EXPECT_EQ(r.node_tasks.samples, tasks);
  EXPECT_EQ(tasks, r.admitted * cfg.tasks_per_request);
  EXPECT_GT(r.node_tasks.pooled.mean(), 0.0);
}

TEST(ClosedLoop, Validation) {
  ClosedLoopConfig cfg = base_config();
  cfg.slo = {99.0, 100.0};
  cfg.num_nodes = 0;
  EXPECT_THROW(run_closed_loop(cfg), std::invalid_argument);
  cfg = base_config();
  cfg.slo = {99.0, 100.0};
  cfg.tasks_per_request = 64;  // > nodes
  EXPECT_THROW(run_closed_loop(cfg), std::invalid_argument);
  cfg = base_config();
  cfg.slo = {99.0, 0.0};  // unset SLO
  EXPECT_THROW(run_closed_loop(cfg), std::invalid_argument);
  cfg = base_config();
  cfg.slo = {99.0, 100.0};
  cfg.service = nullptr;
  EXPECT_THROW(run_closed_loop(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace forktail::sched
