#include <gtest/gtest.h>

#include <cmath>

#include "baselines/direct.hpp"
#include "baselines/expfit.hpp"
#include "core/predictor.hpp"
#include "util/rng.hpp"

namespace forktail::baselines {
namespace {

TEST(ExpFit, MatchesGeWhenCvIsOne) {
  // When the measured CV is exactly 1 the GE fit degenerates to the
  // exponential, so both baselines coincide.
  const core::TaskStats stats{10.0, 100.0};
  const double k = 100.0;
  EXPECT_NEAR(exponential_fit_quantile(stats, k, 99.0),
              core::homogeneous_quantile(stats, k, 99.0), 1e-6);
}

TEST(ExpFit, IgnoresVariance) {
  const core::TaskStats low_var{10.0, 25.0};
  const core::TaskStats high_var{10.0, 400.0};
  EXPECT_DOUBLE_EQ(exponential_fit_quantile(low_var, 10.0, 99.0),
                   exponential_fit_quantile(high_var, 10.0, 99.0));
  // ... while the GE fit responds to it (the paper's improvement over [30]).
  EXPECT_LT(core::homogeneous_quantile(low_var, 10.0, 99.0),
            core::homogeneous_quantile(high_var, 10.0, 99.0));
}

TEST(ExpFit, CdfQuantileConsistency) {
  const core::TaskStats stats{4.0, 16.0};
  const double x = exponential_fit_quantile(stats, 32.0, 95.0);
  EXPECT_NEAR(exponential_fit_cdf(stats, 32.0, x), 0.95, 1e-9);
}

TEST(ExpFit, Validation) {
  EXPECT_THROW(exponential_fit_quantile({0.0, 1.0}, 10.0, 99.0),
               std::invalid_argument);
  EXPECT_THROW(exponential_fit_quantile({1.0, 1.0}, 10.0, 100.0),
               std::invalid_argument);
}

TEST(Direct, RequiredSamplesMatchesPaperExample) {
  // Section 2: 99.9th percentile with 100 expected exceedances => 100k
  // samples; at 50 req/s that is 2000 s (~33 minutes).
  EXPECT_EQ(required_samples(99.9, 100.0), 100000u);
  EXPECT_NEAR(measurement_time_seconds(99.9, 50.0, 100.0), 2000.0, 1e-9);
}

TEST(Direct, SampleCountGrowsWithPercentile) {
  EXPECT_LT(required_samples(99.0), required_samples(99.9));
  EXPECT_LT(required_samples(99.9), required_samples(99.99));
}

TEST(Direct, Validation) {
  EXPECT_THROW(required_samples(0.0), std::invalid_argument);
  EXPECT_THROW(required_samples(100.0), std::invalid_argument);
  EXPECT_THROW(measurement_time_seconds(99.0, 0.0), std::invalid_argument);
}

TEST(DirectCi, CoversTrueQuantile) {
  util::Rng rng(70);
  std::vector<double> v(50000);
  for (auto& x : v) x = rng.exponential(1.0);
  const auto ci = direct_percentile_ci(v, 99.0);
  ASSERT_TRUE(ci.valid);
  const double truth = -std::log(0.01);
  EXPECT_LT(ci.lo, truth);
  EXPECT_GT(ci.hi, truth);
  EXPECT_LT(ci.lo, ci.point);
  EXPECT_GT(ci.hi, ci.point);
}

TEST(DirectCi, InvalidWhenSampleTooSmall) {
  util::Rng rng(71);
  std::vector<double> v(50);  // far too few for a p99.9 interval
  for (auto& x : v) x = rng.exponential(1.0);
  const auto ci = direct_percentile_ci(v, 99.9);
  EXPECT_FALSE(ci.valid);
}

TEST(DirectCi, WidthShrinksWithSamples) {
  util::Rng rng(72);
  auto width = [&](std::size_t n) {
    std::vector<double> v(n);
    for (auto& x : v) x = rng.exponential(1.0);
    const auto ci = direct_percentile_ci(v, 99.0);
    return ci.hi - ci.lo;
  };
  EXPECT_LT(width(100000), width(2000));
}

}  // namespace
}  // namespace forktail::baselines
