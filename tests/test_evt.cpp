#include "core/evt.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dist/basic.hpp"
#include "dist/heavy.hpp"

namespace forktail::core {
namespace {

const TaskStats kStats{10.0, 100.0};

TEST(EvtMaxQuantile, LightTailIsExactlyTheGeMaxQuantile) {
  // Gumbel branch: the GE max quantile already is the light-tail
  // extreme-value model, so the EVT predictor must be a no-op.
  const dist::Exponential service(4.22);
  const auto pred = evt_max_quantile(kStats, 100.0, 99.0, 0.05, service);
  EXPECT_FALSE(pred.frechet);
  EXPECT_DOUBLE_EQ(pred.value, homogeneous_quantile(kStats, 100.0, 99.0));
  EXPECT_DOUBLE_EQ(pred.tail_index, 0.0);
}

TEST(EvtMaxQuantile, SubexponentialStaysOnTheGumbelBranch) {
  const auto service = dist::LogNormal::from_mean_cv(4.22, 1.5);
  const auto pred = evt_max_quantile(kStats, 100.0, 99.0, 0.05, service);
  EXPECT_FALSE(pred.frechet);
  EXPECT_DOUBLE_EQ(pred.value, homogeneous_quantile(kStats, 100.0, 99.0));
}

TEST(EvtMaxQuantile, FrechetBranchFiresOnRegularVariation) {
  const auto service = dist::Pareto::from_mean_tail(4.22, 2.2);
  const double node_lambda = 0.8 / service.mean();  // rho = 0.8
  const auto pred =
      evt_max_quantile(kStats, 100.0, 99.0, node_lambda, service);
  EXPECT_TRUE(pred.frechet);
  EXPECT_DOUBLE_EQ(pred.tail_index, 2.2);
  // Deep in the tail the power-law asymptote dominates the GE body by
  // orders of magnitude -- this is exactly the breakdown the benchmark
  // demonstrates.
  EXPECT_GT(pred.value, homogeneous_quantile(kStats, 100.0, 99.0));
}

TEST(EvtMaxQuantile, SplicedValueSolvesThePakesAsymptote) {
  // With a negligible GE body the reported quantile must satisfy the
  // first-order sojourn tail equation
  //   wait_coeff x^{1-alpha} + c x^{-alpha} = 1 - q^{1/k}.
  const auto service = dist::Pareto::from_mean_tail(4.22, 2.6);
  const double rho = 0.5;
  const double node_lambda = rho / service.mean();
  const TaskStats tiny{0.1, 0.01};
  const double k = 64.0;
  const double p = 99.0;
  const auto pred = evt_max_quantile(tiny, k, p, node_lambda, service);
  ASSERT_TRUE(pred.frechet);

  const dist::Capabilities caps = service.capabilities();
  const double wait_coeff = node_lambda * caps.tail_scale /
                            ((1.0 - rho) * (caps.tail_index - 1.0));
  const double level = -std::expm1(std::log(0.99) / k);
  const double tail_at_value =
      wait_coeff * std::pow(pred.value, 1.0 - caps.tail_index) +
      caps.tail_scale * std::pow(pred.value, -caps.tail_index);
  EXPECT_NEAR(tail_at_value, level, 1e-9 * level);
}

TEST(EvtMaxQuantile, MonotoneInPercentileAndFanout) {
  const auto service = dist::Pareto::from_mean_tail(4.22, 2.2);
  const double node_lambda = 0.8 / service.mean();
  double prev = 0.0;
  for (double p : {90.0, 99.0, 99.9, 99.99}) {
    const double x = evt_max_quantile(kStats, 100.0, p, node_lambda, service).value;
    EXPECT_GT(x, prev) << "p=" << p;
    prev = x;
  }
  prev = 0.0;
  for (double k : {1.0, 10.0, 100.0, 1000.0}) {
    const double x = evt_max_quantile(kStats, k, 99.0, node_lambda, service).value;
    EXPECT_GT(x, prev) << "k=" << k;
    prev = x;
  }
}

TEST(EvtMaxQuantile, OverloadedQueueFallsBackToGumbel) {
  // rho >= 1: the Pakes asymptote has no stable-queue prefactor, so the
  // predictor degrades to the GE fit of the measured stats rather than
  // extrapolating a divergent formula.
  const auto service = dist::Pareto::from_mean_tail(4.22, 2.2);
  const double node_lambda = 1.1 / service.mean();  // rho = 1.1
  const auto pred =
      evt_max_quantile(kStats, 100.0, 99.0, node_lambda, service);
  EXPECT_FALSE(pred.frechet);
  EXPECT_DOUBLE_EQ(pred.value, homogeneous_quantile(kStats, 100.0, 99.0));
}

TEST(EvtMaxQuantile, RejectsBadArguments) {
  const auto service = dist::Pareto::from_mean_tail(4.22, 2.2);
  EXPECT_THROW(evt_max_quantile(kStats, 100.0, 0.0, 0.1, service),
               std::invalid_argument);
  EXPECT_THROW(evt_max_quantile(kStats, 100.0, 100.0, 0.1, service),
               std::invalid_argument);
  EXPECT_THROW(evt_max_quantile(kStats, 0.5, 99.0, 0.1, service),
               std::invalid_argument);
}

}  // namespace
}  // namespace forktail::core
