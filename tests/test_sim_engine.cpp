#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace forktail::sim {
namespace {

TEST(Engine, ProcessesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(3.0, [&] { order.push_back(3); });
  e.schedule(1.0, [&] { order.push_back(1); });
  e.schedule(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_EQ(e.events_processed(), 3u);
}

TEST(Engine, FifoAtEqualTimes) {
  Engine e;
  std::vector<int> order;
  e.schedule(1.0, [&] { order.push_back(0); });
  e.schedule(1.0, [&] { order.push_back(1); });
  e.schedule(1.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Engine, HandlersCanScheduleMore) {
  Engine e;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) e.schedule_in(1.0, chain);
  };
  e.schedule(0.0, chain);
  e.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(e.now(), 4.0);
}

TEST(Engine, RejectsPastScheduling) {
  Engine e;
  e.schedule(5.0, [&] {
    EXPECT_THROW(e.schedule(1.0, [] {}), std::invalid_argument);
  });
  e.run();
}

TEST(Engine, StopTerminatesEarly) {
  Engine e;
  int fired = 0;
  e.schedule(1.0, [&] {
    ++fired;
    e.stop();
  });
  e.schedule(2.0, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(e.empty());
}

TEST(Engine, RunUntilLeavesLaterEventsQueued) {
  Engine e;
  int fired = 0;
  e.schedule(1.0, [&] { ++fired; });
  e.schedule(10.0, [&] { ++fired; });
  e.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  double seen = -1.0;
  e.schedule(2.0, [&] { e.schedule_in(3.0, [&] { seen = e.now(); }); });
  e.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

}  // namespace
}  // namespace forktail::sim
