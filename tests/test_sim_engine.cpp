#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/heap_engine.hpp"
#include "util/rng.hpp"

namespace forktail::sim {
namespace {

TEST(Engine, ProcessesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(3.0, [&] { order.push_back(3); });
  e.schedule(1.0, [&] { order.push_back(1); });
  e.schedule(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_EQ(e.events_processed(), 3u);
}

TEST(Engine, FifoAtEqualTimes) {
  Engine e;
  std::vector<int> order;
  e.schedule(1.0, [&] { order.push_back(0); });
  e.schedule(1.0, [&] { order.push_back(1); });
  e.schedule(1.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Engine, HandlersCanScheduleMore) {
  Engine e;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) e.schedule_in(1.0, chain);
  };
  e.schedule(0.0, chain);
  e.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(e.now(), 4.0);
}

TEST(Engine, RejectsPastScheduling) {
  Engine e;
  e.schedule(5.0, [&] {
    EXPECT_THROW(e.schedule(1.0, [] {}), std::invalid_argument);
  });
  e.run();
}

TEST(Engine, StopTerminatesEarly) {
  Engine e;
  int fired = 0;
  e.schedule(1.0, [&] {
    ++fired;
    e.stop();
  });
  e.schedule(2.0, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(e.empty());
}

TEST(Engine, RunUntilLeavesLaterEventsQueued) {
  Engine e;
  int fired = 0;
  e.schedule(1.0, [&] { ++fired; });
  e.schedule(10.0, [&] { ++fired; });
  e.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  double seen = -1.0;
  e.schedule(2.0, [&] { e.schedule_in(3.0, [&] { seen = e.now(); }); });
  e.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(Engine, CancelledEventNeverFires) {
  Engine e;
  int fired = 0;
  const Engine::EventId id = e.schedule_cancellable(2.0, [&] { ++fired; });
  e.schedule(1.0, [&] { EXPECT_TRUE(e.cancel(id)); });
  e.schedule(3.0, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.events_cancelled(), 1u);
}

TEST(Engine, CancellationIsObservationallyFree) {
  // A cancelled tombstone must not advance simulated time or the processed
  // count: the run looks exactly like one where the event never existed.
  Engine e;
  const Engine::EventId id = e.schedule_cancellable(10.0, [] { FAIL(); });
  e.schedule(1.0, [&] { e.cancel(id); });
  e.run();
  EXPECT_DOUBLE_EQ(e.now(), 1.0);
  EXPECT_EQ(e.events_processed(), 1u);
}

TEST(Engine, CancelAfterFireReturnsFalse) {
  Engine e;
  int fired = 0;
  const Engine::EventId id = e.schedule_cancellable(1.0, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(e.cancel(id));
  EXPECT_EQ(e.events_cancelled(), 0u);
}

TEST(Engine, DoubleCancelReturnsFalse) {
  Engine e;
  const Engine::EventId id = e.schedule_cancellable(5.0, [] { FAIL(); });
  e.schedule(1.0, [&] {
    EXPECT_TRUE(e.cancel(id));
    EXPECT_FALSE(e.cancel(id));
  });
  e.run();
  EXPECT_EQ(e.events_cancelled(), 1u);
}

TEST(Engine, CancelUnknownIdReturnsFalse) {
  Engine e;
  EXPECT_FALSE(e.cancel(12345));
  // Ordinary schedule() events are not cancellable either.
  e.schedule(1.0, [] {});
  EXPECT_FALSE(e.cancel(0));
  e.run();
  EXPECT_EQ(e.events_processed(), 1u);
}

TEST(Engine, HedgeRacePattern) {
  // The cancel-on-first-complete pattern the fault layer uses: primary and
  // hedge race; whichever fires first cancels the other.
  Engine e;
  int primary = 0;
  int hedge = 0;
  Engine::EventId primary_id = 0;
  Engine::EventId hedge_id = 0;
  primary_id = e.schedule_cancellable(5.0, [&] {
    ++primary;
    e.cancel(hedge_id);
  });
  hedge_id = e.schedule_cancellable(3.0, [&] {
    ++hedge;
    e.cancel(primary_id);
  });
  e.run();
  EXPECT_EQ(hedge, 1);
  EXPECT_EQ(primary, 0);
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_EQ(e.events_cancelled(), 1u);
}

TEST(Engine, RunUntilSkipsCancelledTombstones) {
  Engine e;
  const Engine::EventId id = e.schedule_cancellable(2.0, [] { FAIL(); });
  e.cancel(id);
  e.schedule(4.0, [] {});
  e.run_until(3.0);
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_EQ(e.events_processed(), 0u);
  e.run();
  EXPECT_EQ(e.events_processed(), 1u);
}

// ---------------------------------------------------------------------------
// Typed (POD) events
// ---------------------------------------------------------------------------

/// Records every typed event it receives as (kind, payload.raw.a, time).
struct TypedRecorder {
  std::vector<std::tuple<EventKind, std::uint64_t, double>> fired;

  static void dispatch(void* ctx, Engine& engine, const Event& ev) {
    auto* self = static_cast<TypedRecorder*>(ctx);
    self->fired.emplace_back(ev.kind, ev.payload.raw.a, engine.now());
  }
};

EventPayload raw_payload(std::uint64_t a, std::uint64_t b = 0) {
  EventPayload p;
  p.raw = {a, b};
  return p;
}

TEST(Engine, TypedEventsDispatchThroughBoundSink) {
  Engine e;
  TypedRecorder rec;
  e.bind(&rec, &TypedRecorder::dispatch);
  e.schedule_event(2.0, EventKind::kTaskComplete, raw_payload(7));
  e.schedule_event(1.0, EventKind::kArrival, raw_payload(3));
  e.run();
  ASSERT_EQ(rec.fired.size(), 2u);
  EXPECT_EQ(std::get<0>(rec.fired[0]), EventKind::kArrival);
  EXPECT_EQ(std::get<1>(rec.fired[0]), 3u);
  EXPECT_DOUBLE_EQ(std::get<2>(rec.fired[0]), 1.0);
  EXPECT_EQ(std::get<0>(rec.fired[1]), EventKind::kTaskComplete);
  EXPECT_EQ(std::get<1>(rec.fired[1]), 7u);
}

TEST(Engine, EqualTimeFifoAcrossTypedAndHandlerEvents) {
  // KAT: events at the exact same timestamp fire strictly in scheduling
  // order, regardless of which API scheduled them -- seq is assigned per
  // schedule call across both families.
  Engine e;
  std::vector<std::uint64_t> order;
  e.bind(
      &order, +[](void* ctx, Engine&, const Event& ev) {
        static_cast<std::vector<std::uint64_t>*>(ctx)->push_back(
            ev.payload.raw.a);
      });
  e.schedule_event(1.0, EventKind::kTimer, raw_payload(0));
  e.schedule(1.0, [&] { order.push_back(1); });
  e.schedule_event(1.0, EventKind::kArrival, raw_payload(2));
  e.schedule(1.0, [&] { order.push_back(3); });
  e.schedule_cancellable_event(1.0, EventKind::kReport, raw_payload(4));
  e.run();
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(Engine, EqualTimeFifoSurvivesRescheduleIntoSameInstant) {
  // An event that schedules new work at the *current* time must see that
  // work fire after every already-queued same-time event (larger seq).
  Engine e;
  std::vector<int> order;
  e.schedule(1.0, [&] {
    order.push_back(0);
    e.schedule(1.0, [&] { order.push_back(2); });
  });
  e.schedule(1.0, [&] { order.push_back(1); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Engine, TypedCancellableEventsCancel) {
  Engine e;
  TypedRecorder rec;
  e.bind(&rec, &TypedRecorder::dispatch);
  const Engine::EventId id =
      e.schedule_cancellable_event(5.0, EventKind::kTimer, raw_payload(9));
  e.schedule_event(1.0, EventKind::kArrival, raw_payload(1));
  e.schedule(2.0, [&] { EXPECT_TRUE(e.cancel(id)); });
  e.run();
  ASSERT_EQ(rec.fired.size(), 1u);
  EXPECT_EQ(std::get<0>(rec.fired[0]), EventKind::kArrival);
  EXPECT_EQ(e.events_cancelled(), 1u);
}

TEST(Engine, EventLayoutStaysPod) {
  static_assert(std::is_trivially_copyable_v<Event>);
  static_assert(sizeof(EventPayload) == 16);
  static_assert(sizeof(Event) <= 40);
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Cancel / reschedule interleavings and tombstone compaction
// ---------------------------------------------------------------------------

TEST(Engine, CancelThenRescheduleSameInstant) {
  // Cancelling a pending event and immediately scheduling a replacement at
  // the same timestamp must fire exactly the replacement, in seq order
  // relative to other same-time events.
  Engine e;
  std::vector<int> order;
  const Engine::EventId id = e.schedule_cancellable(5.0, [&] { FAIL(); });
  e.schedule(5.0, [&] { order.push_back(0); });
  e.schedule(1.0, [&] {
    EXPECT_TRUE(e.cancel(id));
    e.schedule(5.0, [&] { order.push_back(1); });
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(e.events_cancelled(), 1u);
}

TEST(Engine, RescheduleIntoDrainedRegionKeepsOrder) {
  // Fire at t=10 (deep into the window, 100 earlier events already
  // drained), then schedule three near-now events: they land in the
  // already-scanned region of the calendar (sort-inserted into the live
  // batch) and must still fire in FIFO order before t=11.
  Engine e;
  std::vector<int> order;
  e.schedule(10.0, [&] {
    const double t = e.now() + 1e-9;
    e.schedule(t, [&] { order.push_back(0); });
    e.schedule(t, [&] { order.push_back(1); });
    e.schedule(t, [&] { order.push_back(2); });
  });
  for (int i = 0; i < 100; ++i) {
    e.schedule(0.1 * i, [] {});
  }
  e.schedule(11.0, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Engine, CompactionReclaimsTombstonesAndCountsSweeps) {
  // Cancel until dead events dominate the queue: cancel() compacts, the
  // compactions() counter ticks, and queue_depth falls below the naive
  // live + tombstone count because the sweep reclaimed the dead entries.
  Engine e;
  std::vector<Engine::EventId> ids;
  constexpr int kEvents = 1000;
  constexpr int kCancelled = 600;
  for (int i = 0; i < kEvents; ++i) {
    ids.push_back(e.schedule_cancellable(1.0 + i, [] {}));
  }
  e.schedule(0.5, [] {});  // one live event so the run() below fires work
  EXPECT_EQ(e.queue_depth(), static_cast<std::size_t>(kEvents) + 1);
  for (int i = 0; i < kCancelled; ++i) EXPECT_TRUE(e.cancel(ids[i]));
  EXPECT_GE(e.compactions(), 1u);
  // At least one sweep reclaimed tombstones: depth is strictly below the
  // uncompacted live + dead total.
  EXPECT_LT(e.queue_depth(), static_cast<std::size_t>(kEvents) + 1);
  e.run();
  EXPECT_EQ(e.events_processed(),
            static_cast<std::uint64_t>(kEvents - kCancelled) + 1);
  EXPECT_EQ(e.events_cancelled(), static_cast<std::uint64_t>(kCancelled));
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.queue_depth(), 0u);
}

TEST(Engine, CancelAfterCompactionStillWorks) {
  // A compaction sweep must not invalidate the ids of surviving events.
  Engine e;
  std::vector<Engine::EventId> ids;
  for (int i = 0; i < 600; ++i) {
    ids.push_back(e.schedule_cancellable(10.0 + i, [] { FAIL(); }));
  }
  for (int i = 0; i < 400; ++i) EXPECT_TRUE(e.cancel(ids[i]));
  EXPECT_GE(e.compactions(), 1u);
  for (int i = 400; i < 600; ++i) EXPECT_TRUE(e.cancel(ids[i]));
  e.run();
  EXPECT_EQ(e.events_processed(), 0u);
  EXPECT_EQ(e.events_cancelled(), 600u);
}

TEST(Engine, QueueDepthTracksScheduleAndFire) {
  Engine e;
  EXPECT_EQ(e.queue_depth(), 0u);
  e.schedule(1.0, [] {});
  e.schedule(2.0, [] {});
  EXPECT_EQ(e.queue_depth(), 2u);
  e.run_until(1.5);
  EXPECT_EQ(e.queue_depth(), 1u);
  e.run();
  EXPECT_EQ(e.queue_depth(), 0u);
  EXPECT_EQ(e.max_queue_depth(), 2u);
}

// ---------------------------------------------------------------------------
// Cross-validation against the frozen binary-heap reference engine
// ---------------------------------------------------------------------------

TEST(Engine, MatchesHeapEngineOnRandomScheduleCancelSequence) {
  // Drive both engines through an identical randomized schedule/cancel
  // script (timer chains that reschedule themselves and cancel peers) and
  // require the firing orders -- observed as (now, tag) traces -- to match
  // exactly.  This is the determinism contract the fork-join drivers and
  // goldens rely on.
  const auto drive = [](auto& engine) {
    std::vector<std::pair<double, int>> trace;
    util::Rng rng(1234);
    std::vector<typename std::decay_t<decltype(engine)>::EventId> pending;
    int spawned = 0;
    std::function<void(int)> spawn = [&](int tag) {
      trace.emplace_back(engine.now(), tag);
      if (spawned >= 400) return;
      const double dt1 = rng.exponential(1.0);
      const double dt2 = rng.exponential(2.0);
      const int tag1 = ++spawned;
      const int tag2 = ++spawned;
      engine.schedule_in(dt1, [&spawn, tag1] { spawn(tag1); });
      pending.push_back(engine.schedule_cancellable(
          engine.now() + dt2, [&spawn, tag2] { spawn(tag2); }));
      if (pending.size() >= 3) {
        engine.cancel(pending[pending.size() - 3]);
      }
    };
    engine.schedule(0.0, [&spawn] { spawn(0); });
    engine.run();
    return trace;
  };
  Engine calendar;
  HeapEngine heap;
  const auto trace_calendar = drive(calendar);
  const auto trace_heap = drive(heap);
  ASSERT_EQ(trace_calendar.size(), trace_heap.size());
  for (std::size_t i = 0; i < trace_calendar.size(); ++i) {
    // Bitwise-equal times, identical firing order.
    EXPECT_EQ(trace_calendar[i].first, trace_heap[i].first) << "event " << i;
    EXPECT_EQ(trace_calendar[i].second, trace_heap[i].second) << "event " << i;
  }
  EXPECT_EQ(calendar.events_processed(), heap.events_processed());
  EXPECT_EQ(calendar.events_cancelled(), heap.events_cancelled());
}

}  // namespace
}  // namespace forktail::sim
