#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace forktail::sim {
namespace {

TEST(Engine, ProcessesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(3.0, [&] { order.push_back(3); });
  e.schedule(1.0, [&] { order.push_back(1); });
  e.schedule(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_EQ(e.events_processed(), 3u);
}

TEST(Engine, FifoAtEqualTimes) {
  Engine e;
  std::vector<int> order;
  e.schedule(1.0, [&] { order.push_back(0); });
  e.schedule(1.0, [&] { order.push_back(1); });
  e.schedule(1.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Engine, HandlersCanScheduleMore) {
  Engine e;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) e.schedule_in(1.0, chain);
  };
  e.schedule(0.0, chain);
  e.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(e.now(), 4.0);
}

TEST(Engine, RejectsPastScheduling) {
  Engine e;
  e.schedule(5.0, [&] {
    EXPECT_THROW(e.schedule(1.0, [] {}), std::invalid_argument);
  });
  e.run();
}

TEST(Engine, StopTerminatesEarly) {
  Engine e;
  int fired = 0;
  e.schedule(1.0, [&] {
    ++fired;
    e.stop();
  });
  e.schedule(2.0, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(e.empty());
}

TEST(Engine, RunUntilLeavesLaterEventsQueued) {
  Engine e;
  int fired = 0;
  e.schedule(1.0, [&] { ++fired; });
  e.schedule(10.0, [&] { ++fired; });
  e.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  double seen = -1.0;
  e.schedule(2.0, [&] { e.schedule_in(3.0, [&] { seen = e.now(); }); });
  e.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(Engine, CancelledEventNeverFires) {
  Engine e;
  int fired = 0;
  const Engine::EventId id = e.schedule_cancellable(2.0, [&] { ++fired; });
  e.schedule(1.0, [&] { EXPECT_TRUE(e.cancel(id)); });
  e.schedule(3.0, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.events_cancelled(), 1u);
}

TEST(Engine, CancellationIsObservationallyFree) {
  // A cancelled tombstone must not advance simulated time or the processed
  // count: the run looks exactly like one where the event never existed.
  Engine e;
  const Engine::EventId id = e.schedule_cancellable(10.0, [] { FAIL(); });
  e.schedule(1.0, [&] { e.cancel(id); });
  e.run();
  EXPECT_DOUBLE_EQ(e.now(), 1.0);
  EXPECT_EQ(e.events_processed(), 1u);
}

TEST(Engine, CancelAfterFireReturnsFalse) {
  Engine e;
  int fired = 0;
  const Engine::EventId id = e.schedule_cancellable(1.0, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(e.cancel(id));
  EXPECT_EQ(e.events_cancelled(), 0u);
}

TEST(Engine, DoubleCancelReturnsFalse) {
  Engine e;
  const Engine::EventId id = e.schedule_cancellable(5.0, [] { FAIL(); });
  e.schedule(1.0, [&] {
    EXPECT_TRUE(e.cancel(id));
    EXPECT_FALSE(e.cancel(id));
  });
  e.run();
  EXPECT_EQ(e.events_cancelled(), 1u);
}

TEST(Engine, CancelUnknownIdReturnsFalse) {
  Engine e;
  EXPECT_FALSE(e.cancel(12345));
  // Ordinary schedule() events are not cancellable either.
  e.schedule(1.0, [] {});
  EXPECT_FALSE(e.cancel(0));
  e.run();
  EXPECT_EQ(e.events_processed(), 1u);
}

TEST(Engine, HedgeRacePattern) {
  // The cancel-on-first-complete pattern the fault layer uses: primary and
  // hedge race; whichever fires first cancels the other.
  Engine e;
  int primary = 0;
  int hedge = 0;
  Engine::EventId primary_id = 0;
  Engine::EventId hedge_id = 0;
  primary_id = e.schedule_cancellable(5.0, [&] {
    ++primary;
    e.cancel(hedge_id);
  });
  hedge_id = e.schedule_cancellable(3.0, [&] {
    ++hedge;
    e.cancel(primary_id);
  });
  e.run();
  EXPECT_EQ(hedge, 1);
  EXPECT_EQ(primary, 0);
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_EQ(e.events_cancelled(), 1u);
}

TEST(Engine, RunUntilSkipsCancelledTombstones) {
  Engine e;
  const Engine::EventId id = e.schedule_cancellable(2.0, [] { FAIL(); });
  e.cancel(id);
  e.schedule(4.0, [] {});
  e.run_until(3.0);
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_EQ(e.events_processed(), 0u);
  e.run();
  EXPECT_EQ(e.events_processed(), 1u);
}

}  // namespace
}  // namespace forktail::sim
