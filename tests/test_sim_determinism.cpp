// Determinism suite for the calendar-queue engine rewrite.
//
// Three layers of protection, strongest first:
//   1. Pinned golden KATs: hex-exact doubles captured from the pre-change
//      binary-heap engine on five configurations (fork-join all-nodes /
//      fixed-k / redundant uniform-k, closed loop at moderate load and in
//      overload).  The rewrite reproduces them bit for bit.
//   2. Live cross-validation: run_fj_simulation (calendar engine, typed
//      events) against run_fj_simulation_baseline (the frozen pre-change
//      driver on sim::HeapEngine), every output compared with == on the
//      doubles.
//   3. Sharding invariance: closed-loop outputs and ClusterStats summaries
//      are bit-identical for every stats_shards value, and the
//      record_responses=false memory-bounded mode changes no other output.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dist/basic.hpp"
#include "dist/heavy.hpp"
#include "sched/closed_loop.hpp"
#include "sim/network.hpp"
#include "stats/percentile.hpp"

namespace forktail {
namespace {

void expect_fj_bitwise_equal(const sim::FjResult& a, const sim::FjResult& b) {
  ASSERT_EQ(a.request_responses.size(), b.request_responses.size());
  for (std::size_t i = 0; i < a.request_responses.size(); ++i) {
    ASSERT_EQ(a.request_responses[i], b.request_responses[i]) << "resp " << i;
  }
  EXPECT_EQ(a.pooled_task_stats.count(), b.pooled_task_stats.count());
  EXPECT_EQ(a.pooled_task_stats.mean(), b.pooled_task_stats.mean());
  EXPECT_EQ(a.pooled_task_stats.variance(), b.pooled_task_stats.variance());
  ASSERT_EQ(a.node_task_stats.size(), b.node_task_stats.size());
  for (std::size_t n = 0; n < a.node_task_stats.size(); ++n) {
    EXPECT_EQ(a.node_task_stats[n].count(), b.node_task_stats[n].count());
    EXPECT_EQ(a.node_task_stats[n].mean(), b.node_task_stats[n].mean());
    EXPECT_EQ(a.node_task_stats[n].variance(),
              b.node_task_stats[n].variance());
  }
  EXPECT_EQ(a.sim_end_time, b.sim_end_time);
  EXPECT_EQ(a.total_tasks, b.total_tasks);
  EXPECT_EQ(a.redundant_issues, b.redundant_issues);
  EXPECT_EQ(a.measured_requests, b.measured_requests);
}

// ---------------------------------------------------------------------------
// Layer 1+2: fork-join simulator vs the frozen pre-change driver
// ---------------------------------------------------------------------------

TEST(SimDeterminism, AllNodesMatchesBaselineAndGolden) {
  sim::FjConfig c;
  c.num_nodes = 8;
  c.service = std::make_shared<dist::Exponential>(1.0);
  c.num_requests = 20000;
  c.warmup_fraction = 0.2;
  c.seed = 42;
  c.lambda = sim::lambda_for_nominal_load(c, 0.7);
  const sim::FjResult r = sim::run_fj_simulation(c);
  const sim::FjResult base = sim::run_fj_simulation_baseline(c);
  expect_fj_bitwise_equal(r, base);

  // Pinned pre-change goldens (hex-exact).
  EXPECT_EQ(r.request_responses.front(), 0x1.eed468cd3f4p+2);   // 7.7317144...
  EXPECT_EQ(r.request_responses.back(), 0x1.efd7772036p+2);     // 7.7475259...
  EXPECT_EQ(stats::percentile(r.request_responses, 99.0),
            0x1.6b817c7937319p+4);                              // 22.719112...
  EXPECT_EQ(r.pooled_task_stats.mean(), 0x1.a714377371959p+1);  // 3.3053044...
  EXPECT_EQ(r.pooled_task_stats.variance(),
            0x1.5cb261915bf91p+3);                              // 10.896775...
  EXPECT_EQ(r.node_task_stats[3].mean(), 0x1.9a2c7c792eb12p+1); // 3.2044826...
  EXPECT_EQ(r.sim_end_time, 0x1.1684a1ea9fd51p+15);             // 35650.316...
  EXPECT_EQ(r.total_tasks, 200000u);
}

TEST(SimDeterminism, FixedKMatchesBaselineAndGolden) {
  sim::FjConfig c;
  c.num_nodes = 24;
  c.service = std::make_shared<dist::HyperExp2>(
      dist::HyperExp2::from_mean_scv(1.0, 4.0));
  c.k_mode = sim::TaskCountMode::kFixed;
  c.k_fixed = 6;
  c.num_requests = 15000;
  c.warmup_fraction = 0.2;
  c.seed = 7;
  c.lambda = sim::lambda_for_nominal_load(c, 0.8);
  const sim::FjResult r = sim::run_fj_simulation(c);
  const sim::FjResult base = sim::run_fj_simulation_baseline(c);
  expect_fj_bitwise_equal(r, base);

  EXPECT_EQ(r.request_responses.front(), 0x1.0accc888f7fp+2);   // 4.1687489...
  EXPECT_EQ(r.request_responses.back(), 0x1.ba4bcef3388p+4);    // 27.643507...
  EXPECT_EQ(stats::percentile(r.request_responses, 99.0),
            0x1.63b20143eb8f5p+6);                              // 88.923832...
  EXPECT_EQ(r.pooled_task_stats.mean(), 0x1.5c82648b10027p+3);  // 10.890917...
  EXPECT_EQ(r.node_task_stats[11].mean(),
            0x1.73db0925b099bp+4);                              // 23.240975...
  EXPECT_EQ(r.total_tasks, 112500u);
}

TEST(SimDeterminism, RedundantUniformKMatchesBaselineAndGolden) {
  sim::FjConfig c;
  c.num_nodes = 6;
  c.replicas = 2;
  c.policy = sim::DispatchPolicy::kRedundant;
  c.redundant_delay = 2.0;
  c.service = std::make_shared<dist::Exponential>(1.0);
  c.k_mode = sim::TaskCountMode::kUniform;
  c.k_lo = 2;
  c.k_hi = 5;
  c.num_requests = 10000;
  c.warmup_fraction = 0.2;
  c.seed = 11;
  c.lambda = sim::lambda_for_nominal_load(c, 0.6);
  const sim::FjResult r = sim::run_fj_simulation(c);
  const sim::FjResult base = sim::run_fj_simulation_baseline(c);
  expect_fj_bitwise_equal(r, base);

  EXPECT_EQ(r.request_responses.front(), 0x1.7990813ee18p-1);   // 0.7374306...
  EXPECT_EQ(r.request_responses.back(), 0x1.ffb3dab78cp+0);     // 1.9988381...
  EXPECT_EQ(stats::percentile(r.request_responses, 99.0),
            0x1.35c91192102cp+3);                               // 9.6807945...
  EXPECT_EQ(r.pooled_task_stats.mean(), 0x1.e1ef61dbcfec4p+0);  // 1.8825589...
  EXPECT_EQ(r.total_tasks, 43569u);
  EXPECT_EQ(r.redundant_issues, 5833u);
}

TEST(SimDeterminism, RoundRobinReplicasMatchBaseline) {
  // No pinned golden for this shape -- live cross-validation only.
  sim::FjConfig c;
  c.num_nodes = 12;
  c.replicas = 3;
  c.policy = sim::DispatchPolicy::kRoundRobin;
  c.service = std::make_shared<dist::Weibull>(
      dist::Weibull::from_mean_cv(1.0, 1.5));
  c.k_mode = sim::TaskCountMode::kFixed;
  c.k_fixed = 8;
  c.num_requests = 5000;
  c.seed = 3;
  c.lambda = sim::lambda_for_nominal_load(c, 0.75);
  expect_fj_bitwise_equal(sim::run_fj_simulation(c),
                          sim::run_fj_simulation_baseline(c));
}

TEST(SimDeterminism, MemoryBoundedModeChangesNoOtherOutput) {
  // record_responses=false must only empty the response vector; every other
  // output (pooled/per-node stats, sim end, histogram) is bit-identical.
  sim::FjConfig c;
  c.num_nodes = 16;
  c.service = std::make_shared<dist::Exponential>(1.0);
  c.k_mode = sim::TaskCountMode::kFixed;
  c.k_fixed = 4;
  c.num_requests = 8000;
  c.seed = 17;
  c.lambda = sim::lambda_for_nominal_load(c, 0.7);
  const sim::FjResult with = sim::run_fj_simulation(c);
  c.record_responses = false;
  const sim::FjResult without = sim::run_fj_simulation(c);
  EXPECT_FALSE(with.request_responses.empty());
  EXPECT_TRUE(without.request_responses.empty());
  EXPECT_EQ(with.pooled_task_stats.mean(), without.pooled_task_stats.mean());
  EXPECT_EQ(with.pooled_task_stats.count(), without.pooled_task_stats.count());
  EXPECT_EQ(with.sim_end_time, without.sim_end_time);
  EXPECT_EQ(with.total_tasks, without.total_tasks);
  EXPECT_EQ(with.measured_requests, without.measured_requests);
  for (std::size_t i = 0; i < sim::LatencyHistogram::kBuckets; ++i) {
    EXPECT_EQ(with.response_histogram.counts()[i],
              without.response_histogram.counts()[i]);
  }
  // The histogram agrees with the recorded responses.
  EXPECT_EQ(with.response_histogram.total(), with.request_responses.size());
}

TEST(SimDeterminism, StatsShardsInvariantInForkJoin) {
  sim::FjConfig c;
  c.num_nodes = 96;
  c.service = std::make_shared<dist::Exponential>(1.0);
  c.k_mode = sim::TaskCountMode::kFixed;
  c.k_fixed = 12;
  c.num_requests = 4000;
  c.seed = 23;
  c.lambda = sim::lambda_for_nominal_load(c, 0.65);
  c.stats_shards = 1;
  const sim::FjResult one = sim::run_fj_simulation(c);
  c.stats_shards = 32;
  const sim::FjResult many = sim::run_fj_simulation(c);
  expect_fj_bitwise_equal(one, many);
}

// ---------------------------------------------------------------------------
// Closed loop: goldens + shard invariance + bounded-memory mode
// ---------------------------------------------------------------------------

sched::ClosedLoopConfig golden_closed_loop_config() {
  sched::ClosedLoopConfig cfg;
  cfg.num_nodes = 32;
  cfg.service = std::make_shared<dist::Exponential>(5.0);
  cfg.tasks_per_request = 8;
  cfg.lambda = 0.8 * 32.0 / (8.0 * 5.0);
  cfg.window_seconds = 500.0;
  cfg.report_interval = 50.0;
  cfg.num_requests = 50000;
  cfg.seed = 5;
  cfg.slo = {99.0, 300.0};
  return cfg;
}

TEST(SimDeterminism, ClosedLoopGolden) {
  const sched::ClosedLoopResult r =
      sched::run_closed_loop(golden_closed_loop_config());
  EXPECT_EQ(r.offered, 40000u);
  EXPECT_EQ(r.admitted, 40000u);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.violations, 0u);
  EXPECT_EQ(r.admit_rate, 0x1p+0);
  EXPECT_EQ(r.mean_predicted_latency, 0x1.28fcdd2529ab8p+7);  // 148.49387...
  EXPECT_EQ(r.admitted_responses.front(), 0x1.6705e8e9a49p+5);  // 44.877885...
  EXPECT_EQ(r.admitted_responses.back(), 0x1.7d92873ea8p+6);    // 95.393094...
  auto copy = r.admitted_responses;
  EXPECT_EQ(stats::percentile(copy, 50.0), 0x1.cef7bc9f7aep+5); // 57.870965...
  EXPECT_EQ(stats::percentile(copy, 99.0),
            0x1.3406b3813c2cap+7);                              // 154.01308...
}

TEST(SimDeterminism, ClosedLoopOverloadGolden) {
  sched::ClosedLoopConfig cfg;
  cfg.num_nodes = 16;
  cfg.service = std::make_shared<dist::Exponential>(2.0);
  cfg.tasks_per_request = 4;
  cfg.lambda = 1.25 * 16.0 / (4.0 * 2.0);  // overload: must shed
  cfg.window_seconds = 200.0;
  cfg.report_interval = 20.0;
  cfg.num_requests = 30000;
  cfg.seed = 9;
  cfg.slo = {99.0, 60.0};
  const sched::ClosedLoopResult r = sched::run_closed_loop(cfg);
  EXPECT_EQ(r.offered, 24000u);
  EXPECT_EQ(r.admitted, 10967u);
  EXPECT_EQ(r.rejected, 13033u);
  EXPECT_EQ(r.violations, 2317u);
  EXPECT_EQ(r.admit_rate, 0x1.d3ece2a53490cp-2);        // 0.45695833...
  EXPECT_EQ(r.violation_rate, 0x1.b0ae6ac50f3e3p-3);    // 0.21127017...
  EXPECT_EQ(r.admitted_responses.front(), 0x1.63e132341809p+7);  // 177.93983...
  auto copy = r.admitted_responses;
  EXPECT_EQ(stats::percentile(copy, 99.0),
            0x1.e0ee636bf5b9ep+6);                      // 120.23280...
}

TEST(SimDeterminism, ClosedLoopShardCountInvariant) {
  auto cfg = golden_closed_loop_config();
  cfg.num_requests = 12000;
  cfg.stats_shards = 1;
  const sched::ClosedLoopResult one = sched::run_closed_loop(cfg);
  for (const std::size_t shards : {0UL, 4UL, 16UL, 64UL}) {
    cfg.stats_shards = shards;
    const sched::ClosedLoopResult r = sched::run_closed_loop(cfg);
    EXPECT_EQ(r.admitted, one.admitted);
    EXPECT_EQ(r.rejected, one.rejected);
    EXPECT_EQ(r.violations, one.violations);
    EXPECT_EQ(r.violation_rate, one.violation_rate);
    EXPECT_EQ(r.mean_predicted_latency, one.mean_predicted_latency);
    ASSERT_EQ(r.admitted_responses.size(), one.admitted_responses.size());
    for (std::size_t i = 0; i < r.admitted_responses.size(); ++i) {
      ASSERT_EQ(r.admitted_responses[i], one.admitted_responses[i]);
    }
    // The per-node roll-up itself is shard-invariant, bit for bit.
    EXPECT_EQ(r.node_tasks.samples, one.node_tasks.samples);
    EXPECT_EQ(r.node_tasks.pooled.mean(), one.node_tasks.pooled.mean());
    EXPECT_EQ(r.node_tasks.pooled.variance(),
              one.node_tasks.pooled.variance());
    ASSERT_EQ(r.node_tasks.per_node.size(), one.node_tasks.per_node.size());
    for (std::size_t n = 0; n < r.node_tasks.per_node.size(); ++n) {
      EXPECT_EQ(r.node_tasks.per_node[n].mean(),
                one.node_tasks.per_node[n].mean());
    }
  }
}

TEST(SimDeterminism, ClosedLoopMemoryBoundedModeChangesNoOtherOutput) {
  auto cfg = golden_closed_loop_config();
  cfg.num_requests = 10000;
  const sched::ClosedLoopResult with = sched::run_closed_loop(cfg);
  cfg.record_responses = false;
  const sched::ClosedLoopResult without = sched::run_closed_loop(cfg);
  EXPECT_FALSE(with.admitted_responses.empty());
  EXPECT_TRUE(without.admitted_responses.empty());
  EXPECT_EQ(with.admitted, without.admitted);
  EXPECT_EQ(with.violations, without.violations);
  EXPECT_EQ(with.violation_rate, without.violation_rate);
  EXPECT_EQ(with.mean_predicted_latency, without.mean_predicted_latency);
  for (std::size_t i = 0; i < sim::LatencyHistogram::kBuckets; ++i) {
    EXPECT_EQ(with.response_histogram.counts()[i],
              without.response_histogram.counts()[i]);
  }
  EXPECT_EQ(with.response_histogram.total(), with.admitted_responses.size());
}

}  // namespace
}  // namespace forktail
