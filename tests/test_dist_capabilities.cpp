// Property tests for the capability model: every family's declared
// Capabilities must agree with what its moments, transforms, and support
// actually deliver.  The finite-moment flags are checked two ways -- against
// the analytic moment() implementation and against a direct numerical
// integration of E[S^k] = k Int x^{k-1} P(S > x) dx -- so a family cannot
// declare one thing and compute another.
#include "dist/distribution.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "dist/basic.hpp"
#include "dist/factory.hpp"
#include "dist/gamma.hpp"
#include "dist/heavy.hpp"
#include "dist/transforms.hpp"

namespace forktail::dist {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

DistPtr roster_member(const std::string& name) {
  // Heavy families get an explicit tail index so the sweep covers a case
  // with some (but not all) moments finite.
  return takes_tail_index(name) ? make_named(name, 4.22, 2.2)
                                : make_named(name);
}

/// k Int_a^b x^{k-1} P(S > x) dx by composite Gauss-Legendre panels.
double tail_moment_segment(const Distribution& d, int k, double a, double b) {
  return integrate_gl32(
      [&](double x) {
        return static_cast<double>(k) * std::pow(x, k - 1) *
               (1.0 - d.cdf(x));
      },
      a, b, 16);
}

TEST(Capabilities, FiniteMomentFlagsMatchAnalyticMoments) {
  for (const std::string& name : named_distributions()) {
    const DistPtr d = roster_member(name);
    const Capabilities caps = d->capabilities();
    for (int k = 1; k <= 3; ++k) {
      EXPECT_EQ(caps.moment_finite(k), std::isfinite(d->moment(k)))
          << name << " k=" << k;
    }
  }
}

TEST(Capabilities, FiniteMomentFlagsMatchNumericalIntegration) {
  // Integrate E[S^k] decade by decade.  A finite flag must reproduce the
  // analytic moment (up to the truncation tail past the 10^6 cutoff --
  // beyond that 1 - cdf(x) hits the double-precision floor and the
  // integrand is cancellation noise); an infinite flag must show
  // non-summable decade increments (a regularly varying integrand
  // k x^{k-1} S(x) with k >= alpha contributes at least as much per decade
  // as the one before).
  for (const std::string& name : named_distributions()) {
    const DistPtr d = roster_member(name);
    const Capabilities caps = d->capabilities();
    for (int k = 1; k <= 3; ++k) {
      std::vector<double> increments;
      double total = 0.0;
      double lo = 0.0;
      for (double hi = 1.0; hi <= 1.0e6; hi *= 10.0) {
        const double seg = tail_moment_segment(*d, k, lo, hi);
        if (hi >= 1.0e3) increments.push_back(seg);
        total += seg;
        lo = hi;
      }
      if (caps.moment_finite(k)) {
        EXPECT_NEAR(total, d->moment(k), 0.10 * d->moment(k))
            << name << " k=" << k;
      } else {
        for (std::size_t i = 1; i < increments.size(); ++i) {
          EXPECT_GE(increments[i], 0.99 * increments[i - 1])
              << name << " k=" << k << " decade " << i;
        }
      }
    }
  }
}

TEST(Capabilities, MemorylessIsExactlyTheExponential) {
  for (const std::string& name : named_distributions()) {
    EXPECT_EQ(roster_member(name)->capabilities().memoryless,
              name == "Exponential")
        << name;
  }
}

TEST(Capabilities, MgfAvailabilityMatchesFlag) {
  for (const std::string& name : named_distributions()) {
    const DistPtr d = roster_member(name);
    const Capabilities caps = d->capabilities();
    EXPECT_EQ(mgf_available(*d), caps.has_mgf) << name;
    if (caps.has_mgf) {
      // Jensen: E[e^{theta S}] >= e^{theta E[S]} > 1 + theta E[S].
      const double theta = 0.01 / d->mean();
      EXPECT_GE(mgf(*d, theta), std::exp(theta * d->mean()) * (1.0 - 1e-9))
          << name;
      EXPECT_NEAR(mgf(*d, 0.0), 1.0, 1e-12) << name;
    } else {
      EXPECT_THROW(mgf(*d, 0.1), std::invalid_argument) << name;
      EXPECT_THROW(d->mgf(0.1), std::logic_error) << name;
    }
  }
}

TEST(Capabilities, ExponentialMgfClosedForm) {
  const DistPtr d = make_named("Exponential", 2.0);  // rate 1/2
  EXPECT_NEAR(mgf(*d, 0.25), 2.0, 1e-12);            // 1/(1 - theta mean)
  EXPECT_TRUE(std::isinf(mgf(*d, 0.5)));             // at the abscissa
  EXPECT_TRUE(std::isinf(mgf(*d, 0.7)));             // beyond it
}

TEST(Capabilities, ErlangMgfClosedForm) {
  const DistPtr d = make_named("Erlang-2", 2.0);  // two phases, rate 1 each
  EXPECT_NEAR(mgf(*d, 0.5), 4.0, 1e-12);         // (1/(1 - 0.5))^2
  EXPECT_TRUE(std::isinf(mgf(*d, 1.0)));
}

TEST(Capabilities, SupportBoundsMatchTheFamily) {
  const auto pareto = Pareto::from_mean_tail(4.22, 2.2);
  const Capabilities pc = pareto.capabilities();
  EXPECT_DOUBLE_EQ(pc.support_lo, pareto.scale());
  EXPECT_FALSE(pc.bounded_support());

  const DistPtr trunc = make_named("TruncPareto");
  const Capabilities tc = trunc->capabilities();
  EXPECT_TRUE(tc.bounded_support());
  EXPECT_GT(tc.support_hi, tc.support_lo);
  EXPECT_NEAR(trunc->cdf(tc.support_hi), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(trunc->cdf(tc.support_lo), 0.0);

  EXPECT_FALSE(make_named("Exponential")->capabilities().bounded_support());
}

TEST(Capabilities, ParetoProfileTracksAlpha) {
  // finite_moments = ceil(alpha) - 1; tail_scale = scale^alpha.
  const struct {
    double alpha;
    int finite;
  } cases[] = {{1.5, 1}, {2.0, 1}, {2.2, 2}, {3.0, 2}, {3.5, 3}};
  for (const auto& c : cases) {
    const Pareto d(c.alpha, 2.0);
    const Capabilities caps = d.capabilities();
    EXPECT_EQ(caps.tail, TailClass::kRegularlyVarying);
    EXPECT_DOUBLE_EQ(caps.tail_index, c.alpha);
    EXPECT_NEAR(caps.tail_scale, std::pow(2.0, c.alpha), 1e-12);
    EXPECT_EQ(caps.finite_moments, c.finite) << "alpha=" << c.alpha;
    EXPECT_FALSE(caps.has_mgf);
    EXPECT_FALSE(caps.has_lst);
  }
}

TEST(Capabilities, MixtureTailConstantIsWeightedParetoConstant) {
  const auto d = ParetoLogNormalMixture::from_mean_tail(4.22, 2.2, 0.9, 0.8);
  const Capabilities caps = d.capabilities();
  EXPECT_EQ(caps.tail, TailClass::kRegularlyVarying);
  EXPECT_DOUBLE_EQ(caps.tail_index, 2.2);
  EXPECT_NEAR(caps.tail_scale,
              0.1 * std::pow(d.tail().scale(), 2.2), 1e-12);
  EXPECT_EQ(caps.finite_moments, 2);
}

TEST(Capabilities, TailIndexIsInfiniteOffTheRegularlyVaryingFamilies) {
  for (const std::string& name : named_distributions()) {
    const DistPtr d = roster_member(name);
    const Capabilities caps = d->capabilities();
    if (caps.tail != TailClass::kRegularlyVarying) {
      EXPECT_TRUE(std::isinf(caps.tail_index)) << name;
      EXPECT_FALSE(takes_tail_index(name)) << name;
    } else {
      EXPECT_TRUE(takes_tail_index(name)) << name;
      EXPECT_GT(caps.tail_index, 1.0) << name;
      EXPECT_GT(caps.tail_scale, 0.0) << name;
    }
  }
}

TEST(Capabilities, FactoryRejectsTailIndexOnLightFamilies) {
  EXPECT_THROW(make_named("Exponential", 4.22, 2.2), std::invalid_argument);
  EXPECT_THROW(make_named("Weibull", 4.22, 2.2), std::invalid_argument);
  EXPECT_NO_THROW(make_named("Pareto", 4.22, 2.2));
  EXPECT_NO_THROW(make_named("HeavyMixture", 4.22, 2.2));
}

// A deliberately inconsistent test double: moment(2) < moment(1)^2, the
// shape produced by catastrophic cancellation on near-deterministic
// empirical tables.  The old cv() clamped this to 0 (masquerading as a
// Deterministic); the fix surfaces it as NaN.
class NegativeVarianceDouble final : public Distribution {
 public:
  double sample(util::Rng&) const override { return 1.0; }
  double moment(int k) const override { return k == 1 ? 1.0 : 0.9999; }
  double cdf(double x) const override { return x >= 1.0 ? 1.0 : 0.0; }
  std::string name() const override { return "NegativeVarianceDouble"; }
};

TEST(Capabilities, CvSurfacesDegenerateVarianceAsNan) {
  const NegativeVarianceDouble bad;
  EXPECT_LT(bad.scv(), 0.0);
  EXPECT_TRUE(std::isnan(bad.cv()));
  // A true point mass is still exactly zero, not NaN.
  const Deterministic point(4.22);
  EXPECT_DOUBLE_EQ(point.scv(), 0.0);
  EXPECT_DOUBLE_EQ(point.cv(), 0.0);
}

TEST(Capabilities, FromMeanCvRejectsDegenerateInputsUniformly) {
  const double inf = kInf;
  for (double cv : {0.0, -1.0, inf}) {
    EXPECT_THROW(Weibull::from_mean_cv(4.22, cv), std::invalid_argument);
    EXPECT_THROW(LogNormal::from_mean_cv(4.22, cv), std::invalid_argument);
    EXPECT_THROW(Gamma::from_mean_cv(4.22, cv), std::invalid_argument);
    EXPECT_THROW(TruncatedPareto::from_mean_cv_upper(4.22, cv, 276.6),
                 std::invalid_argument);
  }
  for (double mean : {0.0, -4.22, inf}) {
    EXPECT_THROW(Weibull::from_mean_cv(mean, 1.2), std::invalid_argument);
    EXPECT_THROW(LogNormal::from_mean_cv(mean, 1.2), std::invalid_argument);
    EXPECT_THROW(Gamma::from_mean_cv(mean, 1.2), std::invalid_argument);
    EXPECT_THROW(TruncatedPareto::from_mean_cv_upper(mean, 1.2, 276.6),
                 std::invalid_argument);
  }
}

TEST(Capabilities, DefaultClaimIsConservative) {
  const Capabilities caps;
  EXPECT_EQ(caps.tail, TailClass::kSubexponential);
  EXPECT_TRUE(std::isinf(caps.tail_index));
  EXPECT_TRUE(caps.moment_finite(3));
  EXPECT_FALSE(caps.has_mgf);
  EXPECT_FALSE(caps.has_lst);
  EXPECT_FALSE(caps.memoryless);
  EXPECT_FALSE(caps.bounded_support());
}

TEST(Capabilities, TailClassNames) {
  EXPECT_STREQ(tail_class_name(TailClass::kLight), "light");
  EXPECT_STREQ(tail_class_name(TailClass::kSubexponential),
               "subexponential");
  EXPECT_STREQ(tail_class_name(TailClass::kRegularlyVarying),
               "regularly-varying");
}

}  // namespace
}  // namespace forktail::dist
