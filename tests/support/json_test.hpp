// Shared JSON helpers for tests.
//
// The schema-pinning tests used to carry their own ~200-line
// recursive-descent reader; that reader grew into util::Json
// (src/util/json.hpp) when the scenario layer needed JSON too.  Tests go
// through this header so they all parse documents and tracked artifacts
// the same way the production code does.
#pragma once

#include <string>

#include "util/json.hpp"

namespace forktail::test_support {

/// Parse a JSON document from a file on disk.  Throws std::runtime_error
/// (with the offending byte offset) on malformed input or a missing file.
inline util::Json parse_json_file(const std::string& path) {
  return util::Json::parse(util::read_text_file(path));
}

}  // namespace forktail::test_support
