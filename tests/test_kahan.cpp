#include "util/kahan.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace forktail::util {
namespace {

TEST(KahanSum, SumsExactValues) {
  KahanSum s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.value(), 5050.0);
}

TEST(KahanSum, RecoversSmallTermsNextToLargeOnes) {
  // Naive summation of 1 + 1e-16 * 1e16 loses every small term.
  KahanSum s;
  s.add(1.0);
  for (int i = 0; i < 10000000; ++i) s.add(1e-16);
  EXPECT_NEAR(s.value(), 1.0 + 1e-9, 1e-12);
}

TEST(KahanSum, NeumaierHandlesLargeThenSmall) {
  KahanSum s;
  s.add(1e100);
  s.add(1.0);
  s.add(-1e100);
  EXPECT_DOUBLE_EQ(s.value(), 1.0);
}

TEST(KahanSum, ResetClearsState) {
  KahanSum s;
  s.add(123.0);
  s.reset();
  EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(KahanSum, OperatorPlusEquals) {
  KahanSum s;
  s += 2.5;
  s += 2.5;
  EXPECT_DOUBLE_EQ(s.value(), 5.0);
}

TEST(KahanSum, InitialValueConstructor) {
  KahanSum s(10.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.value(), 15.0);
}

}  // namespace
}  // namespace forktail::util
