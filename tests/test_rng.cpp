#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

namespace forktail::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, Reproducible) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, SplitStreamsAreIndependentOfDrawOrder) {
  Rng parent(99);
  Rng c1 = parent.split(3);
  // Drawing from the parent must not perturb already-split children.
  parent.uniform();
  Rng c2 = parent.split(3);
  for (int i = 0; i < 100; ++i) ASSERT_DOUBLE_EQ(c1.uniform(), c2.uniform());
}

TEST(Rng, SplitStreamsDiffer) {
  Rng parent(99);
  Rng a = parent.split(0);
  Rng b = parent.split(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, SiblingStreamsHaveDistinctPrefixes) {
  Rng parent(0xdeadbeefULL);
  // Every pair of siblings over a block of indices must diverge immediately.
  constexpr int kStreams = 16;
  constexpr int kPrefix = 32;
  std::vector<std::array<std::uint64_t, kPrefix>> prefixes(kStreams);
  for (int s = 0; s < kStreams; ++s) {
    Rng child = parent.split(static_cast<std::uint64_t>(s));
    for (auto& word : prefixes[static_cast<std::size_t>(s)]) word = child.next_u64();
  }
  for (int a = 0; a < kStreams; ++a) {
    for (int b = a + 1; b < kStreams; ++b) {
      int equal = 0;
      for (int i = 0; i < kPrefix; ++i) {
        if (prefixes[static_cast<std::size_t>(a)][static_cast<std::size_t>(i)] ==
            prefixes[static_cast<std::size_t>(b)][static_cast<std::size_t>(i)]) {
          ++equal;
        }
      }
      EXPECT_EQ(equal, 0) << "streams " << a << " and " << b << " overlap";
    }
  }
}

TEST(Rng, ParentAndChildStreamsHaveDistinctPrefixes) {
  for (std::uint64_t seed : {1ULL, 42ULL, 0x9e3779b97f4a7c15ULL}) {
    Rng parent(seed);
    Rng child = parent.split(0);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
      if (parent.next_u64() == child.next_u64()) ++equal;
    }
    EXPECT_EQ(equal, 0) << "parent/child overlap for seed " << seed;
  }
}

TEST(Rng, SplitResistsCrossSeedCollisions) {
  // Under the old `seed ^ const*(index+1)` derivation these (seed, index)
  // pairs produced the SAME child seed; the two-step hash must not.
  constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;
  const std::uint64_t seed1 = 123;
  const std::uint64_t i1 = 4;
  const std::uint64_t i2 = 9;
  const std::uint64_t seed2 = seed1 ^ (kGamma * (i1 + 1)) ^ (kGamma * (i2 + 1));
  Rng a = Rng(seed1).split(i1);
  Rng b = Rng(seed2).split(i2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(2);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.003);
}

TEST(Rng, ExponentialMoments) {
  Rng rng(3);
  const double m = 4.22;
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(m);
    ASSERT_GT(x, 0.0);
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, m, 0.05);
  EXPECT_NEAR(sum_sq / n, 2.0 * m * m, 0.5);
}

TEST(Rng, NormalMoments) {
  Rng rng(4);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.03);
  EXPECT_NEAR(sum_sq / n - mean * mean, 9.0, 0.15);
}

TEST(Rng, UniformIntCoversRangeUniformly) {
  Rng rng(5);
  std::array<int, 10> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto v = rng.uniform_int(std::uint64_t{10});
    ASSERT_LT(v, 10u);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (int c : counts) EXPECT_NEAR(c, n / 10, 600);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(std::int64_t{5}, std::int64_t{8});
    ASSERT_GE(v, 5);
    ASSERT_LE(v, 8);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(7);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Xoshiro, JumpProducesDisjointStream) {
  Xoshiro256pp a(11);
  Xoshiro256pp b(11);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace forktail::util
