#include "stats/batch_means.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/percentile.hpp"
#include "util/rng.hpp"

namespace forktail::stats {
namespace {

TEST(StudentT, MatchesKnownCriticalValues) {
  // Two-sided 95% critical values.
  EXPECT_NEAR(student_t_critical(5, 0.95), 2.571, 0.02);
  EXPECT_NEAR(student_t_critical(9, 0.95), 2.262, 0.01);
  EXPECT_NEAR(student_t_critical(30, 0.95), 2.042, 0.005);
  EXPECT_NEAR(student_t_critical(1000, 0.95), 1.962, 0.003);
  // 99%.
  EXPECT_NEAR(student_t_critical(9, 0.99), 3.250, 0.03);
}

TEST(StudentT, Validation) {
  EXPECT_THROW(student_t_critical(0, 0.95), std::invalid_argument);
  EXPECT_THROW(student_t_critical(5, 1.0), std::invalid_argument);
}

TEST(BatchMeans, MeanCiCoversIidTruth) {
  util::Rng rng(1);
  std::vector<double> v(50000);
  for (auto& x : v) x = rng.exponential(3.0);
  const auto ci = batch_means_mean_ci(v, 10, 0.95);
  EXPECT_LT(ci.lo, 3.0);
  EXPECT_GT(ci.hi, 3.0);
  EXPECT_NEAR(ci.point, 3.0, 0.1);
  EXPECT_EQ(ci.batches, 10u);
}

TEST(BatchMeans, PercentileCiCoversIidTruth) {
  util::Rng rng(2);
  std::vector<double> v(100000);
  for (auto& x : v) x = rng.exponential(1.0);
  const auto ci = batch_means_percentile_ci(v, 99.0, 10, 0.95);
  const double truth = -std::log(0.01);
  EXPECT_LT(ci.lo, truth);
  EXPECT_GT(ci.hi, truth);
}

TEST(BatchMeans, WiderForCorrelatedSequences) {
  // AR(1)-style correlated sequence vs iid with the same marginal
  // variance: the batch-means CI must widen under correlation.
  util::Rng rng(3);
  const std::size_t n = 40000;
  std::vector<double> iid(n);
  std::vector<double> corr(n);
  double state = 0.0;
  const double rho = 0.98;
  const double innovation = std::sqrt(1.0 - rho * rho);
  for (std::size_t i = 0; i < n; ++i) {
    iid[i] = rng.normal();
    state = rho * state + innovation * rng.normal();
    corr[i] = state;
  }
  const auto ci_iid = batch_means_mean_ci(iid, 10, 0.95);
  const auto ci_corr = batch_means_mean_ci(corr, 10, 0.95);
  EXPECT_GT(ci_corr.hi - ci_corr.lo, 3.0 * (ci_iid.hi - ci_iid.lo));
}

TEST(BatchMeans, CustomStatistic) {
  util::Rng rng(4);
  std::vector<double> v(20000);
  for (auto& x : v) x = rng.uniform();
  const auto ci = batch_means_ci(
      v, [](std::span<const double> s) { return percentile(s, 50.0); }, 8,
      0.95);
  EXPECT_NEAR(ci.point, 0.5, 0.02);
  EXPECT_LT(ci.lo, 0.5);
  EXPECT_GT(ci.hi, 0.5);
}

TEST(BatchMeans, Validation) {
  std::vector<double> v(10, 1.0);
  EXPECT_THROW(batch_means_mean_ci(v, 1), std::invalid_argument);
  EXPECT_THROW(batch_means_mean_ci(v, 8), std::invalid_argument);
}

}  // namespace
}  // namespace forktail::stats
