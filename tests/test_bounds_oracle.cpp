// Oracle suite for the certified (n, k) linear-transformation brackets
// (baselines/linear_bounds.hpp): the bounds are checked against the cases
// where the truth is KNOWN in closed form, against exact stationary draws
// from the perfect sampler, and against randomized scenarios (failures
// print the offending spec as JSON for replay).
#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "baselines/linear_bounds.hpp"
#include "dist/factory.hpp"
#include "scenario/registry.hpp"
#include "scenario/run.hpp"
#include "scenario/spec.hpp"
#include "stats/percentile.hpp"
#include "util/rng.hpp"

namespace forktail {
namespace {

/// A clean homogeneous (n, n) fork-join over single-server M/G/1 nodes.
baselines::BaselineInput clean_input(const dist::DistPtr& service, int n,
                                     double load) {
  baselines::BaselineInput in;
  in.service = service;
  in.load = load;
  in.lambda = load / service->mean();
  in.cluster_nodes = static_cast<std::size_t>(n);
  in.fanout = n;
  in.join = n;
  in.mean_fanout = static_cast<double>(n);
  in.single_server_fifo = true;
  in.homogeneous_topology = true;
  in.nk_clean = true;
  return in;
}

// Certificate tiers follow the capability model, not a family list:
// memoryless -> exact sojourn, LST -> Pollaczek-Khinchine inversion, MGF
// only -> Chernoff.  A service declaring none of the three has no
// certificate, so the baseline must refuse it outright.
TEST(BoundsOracle, ApplicabilityFollowsTheCapabilityModel) {
  const baselines::LinearBoundsBaseline bounds;
  const struct {
    dist::DistPtr service;
    bool certified;
  } cases[] = {
      {dist::make_named("Exponential"), true},     // memoryless
      {dist::make_named("Erlang-2"), true},        // LST
      {dist::make_named("TruncPareto"), true},     // MGF (bounded support)
      {dist::make_named("Weibull"), false},        // subexponential, no MGF
      {dist::make_named("Pareto", 4.22, 2.6), false},
      {dist::make_named("HeavyMixture", 4.22, 2.6), false},
  };
  for (const auto& c : cases) {
    EXPECT_EQ(bounds.applicable(clean_input(c.service, 4, 0.5)), c.certified)
        << c.service->name();
  }
}

// n = k = 1 is a plain M/M/1 queue: the sojourn is Exp(mu - lambda), so
// both edges of the bracket must collapse onto the closed form (the
// certified interval is EXACT here, not merely containing).
TEST(BoundsOracle, MM1BracketIsExact) {
  const dist::DistPtr service = dist::make_named("Exponential");
  const double mean_s = service->mean();
  for (const double load : {0.3, 0.5, 0.8, 0.95}) {
    const baselines::BaselineInput in = clean_input(service, 1, load);
    const baselines::LinearBoundsBaseline bounds;
    ASSERT_TRUE(bounds.applicable(in));
    for (const double p : {50.0, 90.0, 99.0, 99.9}) {
      const double exact =
          -std::log(1.0 - p / 100.0) * mean_s / (1.0 - load);
      const baselines::Bracket b = bounds.bracket(in, p);
      EXPECT_TRUE(b.certified);
      EXPECT_NEAR(b.lower, exact, 1e-6 * exact) << "load " << load;
      EXPECT_NEAR(b.upper, exact, 1e-6 * exact) << "load " << load;
    }
    const baselines::Bracket mean = bounds.mean_bracket(in);
    const double exact_mean = mean_s / (1.0 - load);
    EXPECT_NEAR(mean.lower, exact_mean, 1e-6 * exact_mean);
    EXPECT_NEAR(mean.upper, exact_mean, 1e-6 * exact_mean);
  }
}

// n = 2 fork-join M/M/1 has the Flatto-Hahn / Nelson-Tantawi closed-form
// mean E[T_2] = (12 - rho) / 8 * 1 / (mu - lambda): the one nontrivial
// fork-join system anyone has solved exactly.  The mean bracket must
// contain it across the load range.
TEST(BoundsOracle, FlattoHahnMeanIsBracketed) {
  const dist::DistPtr service = dist::make_named("Exponential");
  const double mean_s = service->mean();
  const baselines::LinearBoundsBaseline bounds;
  for (const double load : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const baselines::BaselineInput in = clean_input(service, 2, load);
    const double exact = (12.0 - load) / 8.0 * mean_s / (1.0 - load);
    const baselines::Bracket mean = bounds.mean_bracket(in);
    ASSERT_TRUE(mean.certified) << "load " << load;
    EXPECT_LE(mean.lower, exact * (1.0 + 1e-9)) << "load " << load;
    EXPECT_GE(mean.upper, exact * (1.0 - 1e-9)) << "load " << load;
    // The bracket should also be informative, not vacuous: both edges
    // within a factor ~2 of the truth at moderate load.
    if (load <= 0.7) {
      EXPECT_GT(mean.lower, 0.4 * exact) << "load " << load;
      EXPECT_LT(mean.upper, 2.5 * exact) << "load " << load;
    }
  }
}

// Purging only removes work once the join fires; at k = n there is nothing
// left to purge and the two variants are the same system.  The certified
// intervals must coincide bit-for-bit.
TEST(BoundsOracle, PurgingCoincidesAtJoinAll) {
  const dist::DistPtr service = dist::make_named("HyperExp2");
  const baselines::BaselineInput in = clean_input(service, 8, 0.7);
  const baselines::LinearBoundsBaseline plain({.purging = false});
  const baselines::LinearBoundsBaseline purging({.purging = true});
  for (const double p : {90.0, 99.0}) {
    const baselines::Bracket a = plain.bracket(in, p);
    const baselines::Bracket b = purging.bracket(in, p);
    EXPECT_EQ(a.lower, b.lower);
    EXPECT_EQ(a.upper, b.upper);
    EXPECT_EQ(a.certified, b.certified);
  }
}

// Exact stationary draws (perfect sampler) must land inside the certified
// bracket up to order-statistic CI noise.  Small n keeps this in the fast
// tier; test_bounds_oracle_slow.cpp pushes n to 32.
TEST(BoundsOracle, PerfectSamplerQuantileInsideBracket) {
  scenario::ScenarioSpec spec;
  spec.topology = scenario::Topology::kHomogeneous;
  spec.nodes = 4;
  spec.service.dist = "Exponential";
  spec.load = 0.7;
  spec.requests = 4000;
  spec.sampler = scenario::Sampler::kPerfect;
  spec.seed = 11;
  const scenario::Outcome outcome =
      scenario::SimulatorRegistry::global().run(spec);
  const baselines::Bracket b = scenario::certified_bracket(outcome, 99.0);
  ASSERT_TRUE(b.certified);
  const double p99 = stats::percentile(outcome.responses, 99.0);
  // 4000 draws put the 99% CI of the p99 within ~8% -- test with slack.
  EXPECT_GE(p99, b.lower * 0.90);
  EXPECT_LE(p99, b.upper * 1.10);
}

// Randomized containment: any clean homogeneous/subset spec with a
// light-tailed service must produce a stationary p99 consistent with its
// certified bracket.  The specs are drawn from a fixed seed (deterministic
// run) and a failing draw prints its JSON so the exact system can be
// replayed with `forktail run`.
TEST(BoundsOracle, RandomSpecContainmentProperty) {
  util::Rng rng(20260808);
  const char* dists[] = {"Exponential", "Erlang-2", "HyperExp2", "Empirical",
                         "TruncPareto"};
  for (int trial = 0; trial < 6; ++trial) {
    scenario::ScenarioSpec spec;
    const bool subset = rng.uniform() < 0.5;
    const int n = 2 + static_cast<int>(rng.uniform_int(31));  // 2..32
    spec.nodes = static_cast<std::size_t>(n);
    spec.service.dist = dists[rng.uniform_int(5)];
    spec.load = 0.3 + 0.5 * rng.uniform();  // (0.3, 0.8)
    if (subset && n >= 3) {
      spec.topology = scenario::Topology::kSubset;
      spec.k.mode = scenario::KSpec::Mode::kFixed;
      spec.k.fixed = 2 + static_cast<int>(rng.uniform_int(
                             static_cast<std::uint64_t>(n - 2)));
    } else {
      spec.topology = scenario::Topology::kHomogeneous;
    }
    spec.requests = 1500;
    spec.sampler = scenario::Sampler::kPerfect;
    spec.seed = 100 + static_cast<std::uint64_t>(trial);
    spec.name = "property-trial-" + std::to_string(trial);

    const scenario::Outcome outcome =
        scenario::SimulatorRegistry::global().run(spec);
    const baselines::Bracket b = scenario::certified_bracket(outcome, 99.0);
    ASSERT_TRUE(b.certified) << scenario::to_json(spec).dump();
    EXPECT_LE(b.lower, b.upper) << scenario::to_json(spec).dump();
    const double p99 = stats::percentile(outcome.responses, 99.0);
    // 1500 draws leave ~15 tail points; allow generous CI slack.  A wrong
    // bound fails by far more than this (it is the TRUE quantile that is
    // certified, and these seeds are fixed).
    EXPECT_GE(p99, b.lower * 0.75) << scenario::to_json(spec).dump();
    EXPECT_LE(p99, b.upper * 1.25) << scenario::to_json(spec).dump();
  }
}

// The out-of-bracket flag must actually fire: a scenario whose sampling is
// deliberately misconfigured (a subset system at 90% load given almost no
// warm-up, so queues never fill) yields a prediction provably below the
// certified lower bound -- the report must say so.
TEST(BoundsOracle, MisconfiguredWarmupTripsOutOfBracketFlag) {
  scenario::ScenarioSpec spec;
  spec.name = "misconfigured-warmup";
  spec.topology = scenario::Topology::kSubset;
  spec.nodes = 200;
  spec.service.dist = "Exponential";
  spec.load = 0.9;
  spec.k.mode = scenario::KSpec::Mode::kFixed;
  spec.k.fixed = 4;
  spec.requests = 2000;
  spec.warmup_fraction = 0.01;  // ~10 tasks/node: nowhere near stationary
  spec.seed = 1;
  const scenario::ScenarioReport report =
      scenario::run_scenario(spec, {"forktail"}, {99.0});
  ASSERT_EQ(report.brackets.size(), 1u);
  ASSERT_TRUE(report.brackets[0].certified);
  ASSERT_EQ(report.predictions.size(), 1u);
  EXPECT_LT(report.predictions[0].predicted_ms[0], report.brackets[0].lower)
      << "expected the under-warmed sample to bias the prediction below "
         "the certified single-sojourn lower bound";
  EXPECT_FALSE(report.predictions[0].in_bracket[0]);
}

}  // namespace
}  // namespace forktail
