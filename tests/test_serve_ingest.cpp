// Ingest-path tests: the bounded ring's FIFO/drop-oldest contract (single
// threaded and under a producer/consumer race), and the IngestShard pipeline
// from submitted wire batches to pooled predictor windows, including
// batch-level stale-timestamp rejection and overload shedding.
#include "serve/ingest.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace forktail::serve {
namespace {

TEST(BoundedQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(BoundedQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(BoundedQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(BoundedQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(BoundedQueue<int>(1000).capacity(), 1024u);
}

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));  // full
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.try_pop(out));  // empty
}

TEST(BoundedQueue, DropOldestShedsFromTheFront) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q.push_drop_oldest(i), 0u);
  // Ring full: pushing 4 more sheds exactly the 4 oldest.
  std::size_t shed = 0;
  for (int i = 4; i < 8; ++i) shed += q.push_drop_oldest(i);
  EXPECT_EQ(shed, 4u);
  int out = -1;
  for (int i = 4; i < 8; ++i) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);  // freshest data won
  }
}

TEST(BoundedQueue, StressProducerConsumerNothingLostOrDuplicated) {
  // One producer shedding under overload, one consumer: every value is
  // either consumed or counted shed, exactly once.
  BoundedQueue<std::uint64_t> q(64);
  constexpr std::uint64_t kTotal = 200000;
  std::atomic<std::uint64_t> consumed_sum{0};
  std::atomic<std::uint64_t> consumed_count{0};
  std::atomic<bool> done{false};

  std::thread consumer([&] {
    std::uint64_t value = 0;
    while (!done.load(std::memory_order_acquire) || true) {
      if (q.try_pop(value)) {
        consumed_sum.fetch_add(value, std::memory_order_relaxed);
        consumed_count.fetch_add(1, std::memory_order_relaxed);
      } else if (done.load(std::memory_order_acquire)) {
        if (!q.try_pop(value)) break;
        consumed_sum.fetch_add(value, std::memory_order_relaxed);
        consumed_count.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  std::uint64_t shed = 0;
  for (std::uint64_t i = 1; i <= kTotal; ++i) {
    shed += q.push_drop_oldest(i);
  }
  done.store(true, std::memory_order_release);
  consumer.join();

  // Shed values are unknowable individually (the consumer races the
  // producer for them) but the count must balance exactly.
  EXPECT_EQ(consumed_count.load() + shed, kTotal);
  EXPECT_GT(consumed_count.load(), 0u);
}

// ------------------------------------------------------------ IngestShard

ShardConfig small_shard() {
  ShardConfig config;
  config.local_nodes = 2;
  config.window_seconds = 10.0;
  config.min_samples = 3;
  config.skew_tolerance = 0.5;
  config.ring_capacity = 8;
  return config;
}

WireBatch batch_for(std::uint32_t node, double t_s,
                    std::initializer_list<double> samples) {
  WireBatch batch;
  batch.node = node;
  batch.timestamp_ns = static_cast<std::uint64_t>(t_s * 1e9);
  batch.count = static_cast<std::uint16_t>(samples.size());
  std::size_t i = 0;
  for (double v : samples) batch.samples[i++] = v;
  return batch;
}

TEST(IngestShard, SubmitDrainFillsWindows) {
  IngestShard shard(small_shard());
  shard.submit(0, batch_for(0, 1.0, {1.0, 2.0, 3.0}));
  shard.submit(1, batch_for(1, 1.0, {4.0, 5.0, 6.0}));
  EXPECT_EQ(shard.drain(1.0), 2u);
  EXPECT_EQ(shard.samples_ingested(), 6u);

  const auto snap = shard.snapshot(1.0);
  EXPECT_EQ(snap.pooled.filled_nodes, 2u);
  EXPECT_DOUBLE_EQ(snap.pooled.count, 6.0);
  EXPECT_NEAR(snap.pooled.mean, 3.5, 1e-12);
  EXPECT_EQ(snap.seen_nodes, 2u);
  EXPECT_EQ(snap.live_nodes, 2u);
  EXPECT_EQ(snap.batches_shed, 0u);
}

TEST(IngestShard, OverflowShedsOldestAndCounts) {
  IngestShard shard(small_shard());  // ring capacity 8
  for (int i = 0; i < 20; ++i) {
    shard.submit(0, batch_for(0, 1.0 + 0.01 * i, {1.0}));
  }
  EXPECT_EQ(shard.batches_shed(), 12u);
  EXPECT_EQ(shard.drain(2.0), 8u);
  EXPECT_EQ(shard.samples_ingested(), 8u);
  const auto snap = shard.snapshot(2.0);
  EXPECT_EQ(snap.batches_shed, 12u);
  EXPECT_GE(snap.last_shed_s, 0.0);  // stamped by the drain that observed it
}

TEST(IngestShard, BackwardsBatchTimestampRejectedAsStale) {
  IngestShard shard(small_shard());
  shard.submit(0, batch_for(0, 10.0, {1.0, 2.0, 3.0}));
  EXPECT_EQ(shard.drain(10.0), 1u);
  // A batch stamped more than skew_tolerance before the high-water mark is
  // rejected whole.
  shard.submit(0, batch_for(0, 8.0, {9.0, 9.0}));
  EXPECT_EQ(shard.drain(10.1), 1u);
  EXPECT_EQ(shard.stale_rejected(), 1u);  // one datagram, whatever its count
  EXPECT_EQ(shard.samples_ingested(), 3u);
  const auto snap = shard.snapshot(10.1);
  EXPECT_NEAR(snap.pooled.mean, 2.0, 1e-12);  // rejected samples never landed
}

TEST(IngestShard, SlightlyBackwardsBatchClampedNotDropped) {
  IngestShard shard(small_shard());  // skew_tolerance 0.5
  shard.submit(0, batch_for(0, 10.0, {1.0, 2.0}));
  shard.submit(0, batch_for(0, 9.8, {3.0}));  // within tolerance
  EXPECT_EQ(shard.drain(10.0), 2u);
  EXPECT_EQ(shard.samples_ingested(), 3u);
  EXPECT_EQ(shard.stale_rejected(), 0u);
}

TEST(IngestShard, SweepMarksDeadAgentStaleAndDegradesPooledStats) {
  IngestShard shard(small_shard());
  // Both nodes fill, then node 1 goes silent.
  shard.submit(0, batch_for(0, 1.0, {1.0, 1.0, 1.0}));
  shard.submit(1, batch_for(1, 1.0, {5.0, 5.0, 5.0}));
  shard.drain(1.0);
  ASSERT_EQ(shard.snapshot(1.0).pooled.filled_nodes, 2u);

  // Node 0 keeps reporting on its own clock; receiver time passes the
  // liveness timeout for node 1 and then keeps going until node 1's
  // estimated agent clock has rolled a full window past its last samples.
  const double timeout_s = 2.0;
  for (int i = 1; i <= 60; ++i) {
    const double t = 1.0 + 0.2 * i;
    shard.submit(0, batch_for(0, t, {1.0, 1.0, 1.0}));
    shard.drain(t);
    shard.sweep(t, timeout_s);
  }
  const auto snap = shard.snapshot(13.0);
  EXPECT_EQ(snap.stale_nodes, 1u);
  EXPECT_EQ(snap.live_nodes, 1u);
  // The dead node's window was advanced in its own time base far enough
  // that its frozen congested samples aged out of the pooled stats.
  EXPECT_EQ(snap.pooled.filled_nodes, 1u);
  EXPECT_NEAR(snap.pooled.mean, 1.0, 1e-12);
}

TEST(IngestShard, RevivedAgentComesBackLive) {
  IngestShard shard(small_shard());
  shard.submit(0, batch_for(0, 1.0, {1.0, 1.0, 1.0}));
  shard.drain(1.0);
  shard.sweep(10.0, 2.0);
  EXPECT_EQ(shard.snapshot(10.0).stale_nodes, 1u);

  shard.submit(0, batch_for(0, 11.0, {2.0, 2.0, 2.0}));
  shard.drain(11.0);
  const auto snap = shard.snapshot(11.0);
  EXPECT_EQ(snap.stale_nodes, 0u);
  EXPECT_EQ(snap.live_nodes, 1u);
}

TEST(IngestShard, StalenessTracksLiveNodesOnly) {
  IngestShard shard(small_shard());
  shard.submit(0, batch_for(0, 1.0, {1.0, 1.0, 1.0}));
  shard.submit(1, batch_for(1, 1.0, {1.0, 1.0, 1.0}));
  shard.drain(1.0);
  // Node 1 dies; node 0 last reported at receiver t=5.
  shard.submit(0, batch_for(0, 5.0, {1.0}));
  shard.drain(5.0);
  shard.sweep(5.0, 3.0);  // node 1 idle 4 s > 3 s -> stale
  const auto snap = shard.snapshot(6.0);
  EXPECT_EQ(snap.stale_nodes, 1u);
  // Worst LIVE age is node 0's 1 s, not node 1's 5 s.
  EXPECT_NEAR(snap.staleness_ms, 1000.0, 1e-6);
}

}  // namespace
}  // namespace forktail::serve
