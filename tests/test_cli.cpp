#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace forktail::util {
namespace {

CliFlags make_flags() {
  CliFlags flags;
  flags.declare("scale", "default", "bench scale");
  flags.declare("seed", "1", "rng seed");
  flags.declare("verbose", "false", "chatter");
  flags.declare("load", "0.9", "utilization");
  return flags;
}

TEST(CliFlags, DefaultsApply) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, argv));
  EXPECT_EQ(flags.get_string("scale"), "default");
  EXPECT_EQ(flags.get_int("seed"), 1);
  EXPECT_FALSE(flags.get_bool("verbose"));
  EXPECT_DOUBLE_EQ(flags.get_double("load"), 0.9);
}

TEST(CliFlags, ParsesSpaceSeparated) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--seed", "42", "--verbose", "true"};
  ASSERT_TRUE(flags.parse(5, argv));
  EXPECT_EQ(flags.get_int("seed"), 42);
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(CliFlags, ParsesEqualsForm) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--load=0.75", "--scale=full"};
  ASSERT_TRUE(flags.parse(3, argv));
  EXPECT_DOUBLE_EQ(flags.get_double("load"), 0.75);
  EXPECT_EQ(flags.get_string("scale"), "full");
}

TEST(CliFlags, UnknownFlagThrows) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW(flags.parse(3, argv), std::invalid_argument);
}

TEST(CliFlags, MissingValueThrows) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--seed"};
  EXPECT_THROW(flags.parse(2, argv), std::invalid_argument);
}

TEST(CliFlags, HelpReturnsFalse) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(CliFlags, BadBooleanThrows) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--verbose", "maybe"};
  ASSERT_TRUE(flags.parse(3, argv));
  EXPECT_THROW(flags.get_bool("verbose"), std::invalid_argument);
}

TEST(BenchScale, ParseAndFactors) {
  EXPECT_EQ(parse_scale("smoke"), BenchScale::kSmoke);
  EXPECT_EQ(parse_scale("default"), BenchScale::kDefault);
  EXPECT_EQ(parse_scale("full"), BenchScale::kFull);
  EXPECT_THROW(parse_scale("huge"), std::invalid_argument);
  EXPECT_LT(scale_factor(BenchScale::kSmoke), scale_factor(BenchScale::kDefault));
  EXPECT_LT(scale_factor(BenchScale::kDefault), scale_factor(BenchScale::kFull));
}

}  // namespace
}  // namespace forktail::util
