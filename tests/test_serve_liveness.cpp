// LivenessTable contract: stale transitions fire exactly once per episode,
// revival works, staleness excludes dead agents, and the estimated agent
// clock keeps rolling while an agent is silent.
#include "serve/liveness.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace forktail::serve {
namespace {

TEST(Liveness, RejectsZeroNodes) {
  EXPECT_THROW(LivenessTable(0), std::invalid_argument);
}

TEST(Liveness, CountsStartAtZero) {
  LivenessTable table(4);
  EXPECT_EQ(table.nodes(), 4u);
  EXPECT_EQ(table.seen_count(), 0u);
  EXPECT_EQ(table.stale_count(), 0u);
  EXPECT_EQ(table.live_count(), 0u);
  EXPECT_DOUBLE_EQ(table.staleness_ms(100.0), 0.0);
}

TEST(Liveness, ObserveMakesSeenAndLive) {
  LivenessTable table(3);
  table.observe(1, 1'000'000'000ULL, 5.0);
  EXPECT_TRUE(table.seen(1));
  EXPECT_FALSE(table.seen(0));
  EXPECT_EQ(table.seen_count(), 1u);
  EXPECT_EQ(table.live_count(), 1u);
}

TEST(Liveness, SweepFiresOncePerStalenessEpisode) {
  LivenessTable table(2);
  table.observe(0, 0, 1.0);
  table.observe(1, 0, 1.0);

  auto first = table.sweep(5.0, 3.0);  // both idle 4 s > 3 s
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(table.stale_count(), 2u);

  // Second sweep: already stale, no repeat notification.
  EXPECT_TRUE(table.sweep(6.0, 3.0).empty());

  // Revival resets the episode; the next timeout fires again.
  table.observe(0, 2'000'000'000ULL, 7.0);
  EXPECT_EQ(table.stale_count(), 1u);
  auto again = table.sweep(20.0, 3.0);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0], 0u);
}

TEST(Liveness, SweepIgnoresUnseenNodes) {
  LivenessTable table(4);
  table.observe(2, 0, 1.0);
  const auto stale = table.sweep(100.0, 3.0);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], 2u);  // never-seen nodes cannot go stale
}

TEST(Liveness, ReorderedArrivalCannotMoveHorizonBackwards) {
  LivenessTable table(1);
  table.observe(0, 5'000'000'000ULL, 10.0);
  table.observe(0, 3'000'000'000ULL, 9.0);  // late, reordered datagram
  EXPECT_EQ(table.last_agent_ns(0), 5'000'000'000ULL);
  EXPECT_NEAR(table.staleness_ms(10.5), 500.0, 1e-9);  // vs 10.0, not 9.0
}

TEST(Liveness, StalenessExcludesStaleNodes) {
  LivenessTable table(2);
  table.observe(0, 0, 10.0);
  table.observe(1, 0, 1.0);
  table.sweep(10.0, 5.0);  // node 1 idle 9 s -> stale
  EXPECT_EQ(table.stale_count(), 1u);
  // Without the exclusion this would be 9500 ms pinned by the dead agent.
  EXPECT_NEAR(table.staleness_ms(10.5), 500.0, 1e-9);
}

TEST(Liveness, EstimatedAgentClockRollsForwardWhileSilent) {
  LivenessTable table(1);
  table.observe(0, 2'000'000'000ULL, 10.0);  // agent clock 2 s at receiver 10 s
  // 6 s of receiver silence later, the estimate is agent 2 s + 6 s idle.
  EXPECT_NEAR(table.estimated_agent_now_s(0, 16.0), 8.0, 1e-9);
  // Never goes backwards even with a confused receiver clock argument.
  EXPECT_NEAR(table.estimated_agent_now_s(0, 9.0), 2.0, 1e-9);
}

}  // namespace
}  // namespace forktail::serve
