// Property-based tests for the Generalized Exponential distribution
// (core/genexp.hpp): randomized (alpha, beta) grids drive the fit
// round-trip, the closed-form Eq. 2/3 moments against direct numerical
// integration, and quantile/CDF inversion identities.  Every trial uses a
// fixed master seed, so failures replay deterministically.
#include "core/genexp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/welford.hpp"
#include "util/rng.hpp"

namespace forktail::core {
namespace {

// Random GE parameters covering the practical plane: alpha in ~[0.08, 12]
// (CV from heavy-tailed to near-deterministic), beta over 6 decades.
GenExp random_genexp(util::Rng& rng) {
  const double alpha = std::exp(rng.uniform(-2.5, 2.5));
  const double beta = std::exp(rng.uniform(-3.0, 3.0));
  return GenExp(alpha, beta);
}

// Composite-Simpson integral of `f` over [a, b].
template <typename F>
double simpson(F f, double a, double b, int intervals) {
  const int n = intervals % 2 == 0 ? intervals : intervals + 1;
  const double h = (b - a) / n;
  double acc = f(a) + f(b);
  for (int i = 1; i < n; ++i) {
    acc += f(a + h * i) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  return acc * h / 3.0;
}

TEST(GenExpProperties, FitRoundTripRecoversParameters) {
  util::Rng rng(20260806);
  for (int trial = 0; trial < 25; ++trial) {
    const GenExp g = random_genexp(rng);
    const GenExp fitted = GenExp::fit_moments(g.mean(), g.variance());
    EXPECT_NEAR(fitted.alpha(), g.alpha(), 1e-6 * g.alpha())
        << "trial " << trial << " " << g.to_string();
    EXPECT_NEAR(fitted.beta(), g.beta(), 1e-6 * g.beta())
        << "trial " << trial << " " << g.to_string();
  }
}

TEST(GenExpProperties, ClosedFormMomentsMatchNumericalIntegration) {
  // Eq. 2/3 give mean and variance via digamma/trigamma differences; check
  // them against tail-formula integration, which needs only the CDF:
  //   E[X]   = int_0^inf (1 - F(x)) dx
  //   E[X^2] = int_0^inf 2 x (1 - F(x)) dx
  util::Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const GenExp g = random_genexp(rng);
    const double x_max = g.quantile(1.0 - 1e-13);
    const auto tail = [&](double x) { return 1.0 - g.cdf(x); };
    const double mean_num = simpson(tail, 0.0, x_max, 20000);
    const double m2_num =
        simpson([&](double x) { return 2.0 * x * tail(x); }, 0.0, x_max, 20000);
    const double var_num = m2_num - mean_num * mean_num;
    EXPECT_NEAR(g.mean(), mean_num, 5e-3 * mean_num)
        << "trial " << trial << " " << g.to_string();
    EXPECT_NEAR(g.variance(), var_num, 2e-2 * var_num)
        << "trial " << trial << " " << g.to_string();
  }
}

TEST(GenExpProperties, QuantileCdfRoundTrip) {
  util::Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    const GenExp g = random_genexp(rng);
    const double q = rng.uniform(0.001, 0.999);
    EXPECT_NEAR(g.cdf(g.quantile(q)), q, 1e-10) << g.to_string();
  }
  // Deep tail: the expm1/log1p regime split must hold relative precision
  // where plain 1-exp arithmetic would have lost it.
  const GenExp g(2.0, 3.0);
  for (double q : {1.0 - 1e-6, 1.0 - 1e-9, 1.0 - 1e-12}) {
    const double x = g.quantile(q);
    EXPECT_NEAR(1.0 - g.cdf(x), 1.0 - q, 1e-3 * (1.0 - q)) << "q=" << q;
  }
}

TEST(GenExpProperties, MaxOrderStatisticIdentities) {
  // F_max(x; k) = F(x)^k, so max_quantile(q, k) == quantile(q^(1/k)).
  util::Rng rng(555);
  for (int trial = 0; trial < 15; ++trial) {
    const GenExp g = random_genexp(rng);
    const double q = rng.uniform(0.05, 0.999);
    const double k = 1.0 + rng.uniform(0.0, 400.0);
    const double via_max = g.max_quantile(q, k);
    const double via_level = g.quantile(std::pow(q, 1.0 / k));
    EXPECT_NEAR(via_max, via_level, 1e-9 * via_max) << g.to_string();
    EXPECT_NEAR(g.max_cdf(via_max, k), q, 1e-9) << g.to_string();
  }
}

TEST(GenExpProperties, MaxQuantileMonotoneInFanout) {
  // More forked tasks can only push the tail out (max of more draws).
  util::Rng rng(31337);
  for (int trial = 0; trial < 10; ++trial) {
    const GenExp g = random_genexp(rng);
    double prev = 0.0;
    for (double k : {1.0, 2.0, 8.0, 64.0, 512.0}) {
      const double x = g.max_quantile(0.99, k);
      EXPECT_GT(x, prev) << g.to_string() << " k=" << k;
      prev = x;
    }
  }
}

TEST(GenExpProperties, SampledMomentsAgreeWithClosedForm) {
  // Monte Carlo cross-check of sample(): Welford moments of 200k draws
  // must sit within a few standard errors of Eq. 2/3.
  util::Rng rng(99);
  for (int trial = 0; trial < 3; ++trial) {
    const GenExp g = random_genexp(rng);
    stats::Welford w;
    constexpr int kN = 200000;
    for (int i = 0; i < kN; ++i) w.add(g.sample(rng));
    const double se_mean = std::sqrt(g.variance() / kN);
    EXPECT_NEAR(w.mean(), g.mean(), 6.0 * se_mean) << g.to_string();
    EXPECT_NEAR(w.variance(), g.variance(), 0.1 * g.variance())
        << g.to_string();
  }
}

TEST(GenExpProperties, PdfIntegratesToCdf) {
  util::Rng rng(42424242);
  for (int trial = 0; trial < 5; ++trial) {
    const GenExp g = random_genexp(rng);
    // Integrate the density between two interior quantiles and compare to
    // the CDF difference.  Integrate in log-x: for alpha < 1 the pdf is
    // near-singular at small x (~x^(alpha-1)) and a linear Simpson grid
    // cannot resolve it, while x*pdf(x) ~ x^alpha is smooth in t = ln x.
    const double a = g.quantile(0.2);
    const double b = g.quantile(0.9);
    const double mass = simpson(
        [&](double t) {
          const double x = std::exp(t);
          return x * g.pdf(x);
        },
        std::log(a), std::log(b), 8000);
    EXPECT_NEAR(mass, g.cdf(b) - g.cdf(a), 1e-5) << g.to_string();
  }
}

}  // namespace
}  // namespace forktail::core
