#include "stats/windowed.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace forktail::stats {
namespace {

TEST(WindowedMoments, EvictsOldSamples) {
  WindowedMoments w(10.0);
  w.add(0.0, 100.0);
  w.add(5.0, 200.0);
  EXPECT_EQ(w.count(), 2u);
  w.add(11.0, 300.0);  // evicts the t=0 sample (cutoff = 1.0)
  EXPECT_EQ(w.count(), 2u);
  EXPECT_DOUBLE_EQ(w.mean(), 250.0);
}

TEST(WindowedMoments, AdvanceEvictsWithoutAdding) {
  WindowedMoments w(5.0);
  w.add(0.0, 1.0);
  w.add(1.0, 2.0);
  w.advance(10.0);
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
}

TEST(WindowedMoments, MatchesBatchStatistics) {
  WindowedMoments w(1e9);  // effectively unbounded
  util::Rng rng(3);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(2.0);
    w.add(static_cast<double>(i), x);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(w.mean(), mean, 1e-9);
  EXPECT_NEAR(w.variance(), sum_sq / n - mean * mean, 1e-6);
}

TEST(WindowedMoments, RejectsTimeTravel) {
  WindowedMoments w(10.0);
  w.add(5.0, 1.0);
  EXPECT_THROW(w.add(4.0, 1.0), std::invalid_argument);
}

TEST(WindowedMoments, RejectsNonPositiveWindow) {
  EXPECT_THROW(WindowedMoments(0.0), std::invalid_argument);
}

TEST(WindowedMoments, VarianceNonNegativeUnderChurn) {
  WindowedMoments w(2.0);
  util::Rng rng(4);
  for (int i = 0; i < 100000; ++i) {
    w.add(static_cast<double>(i) * 0.01, 10.0 + rng.uniform());
    ASSERT_GE(w.variance(), 0.0);
  }
}

TEST(WindowedMoments, LargeOffsetVarianceSurvivesCancellation) {
  // mean ~ 1e9, stddev ~ 1: the naive E[X^2] - E[X]^2 form loses all 16
  // significant digits and clamps to zero; the shifted-data form is exact.
  WindowedMoments w(1e12);
  const double offset = 1e9;
  const int n = 4096;
  for (int i = 0; i < n; ++i) {
    w.add(static_cast<double>(i), offset + ((i % 2 == 0) ? -1.0 : 1.0));
  }
  EXPECT_NEAR(w.mean(), offset, 1e-3);
  EXPECT_NEAR(w.variance(), 1.0, 1e-9);
}

TEST(WindowedMoments, LargeOffsetVarianceAfterEvictionChurn) {
  WindowedMoments w(100.0);
  const double offset = 1e9;
  util::Rng rng(11);
  for (int i = 0; i < 50000; ++i) {
    w.add(static_cast<double>(i), offset + rng.normal(0.0, 1.0));
  }
  // Window holds the trailing 100 samples of N(offset, 1).
  EXPECT_NEAR(w.mean(), offset, 1.0);
  EXPECT_GT(w.variance(), 0.3);
  EXPECT_LT(w.variance(), 3.0);
}

TEST(WindowedMoments, AdvanceHeavyChurnStaysAccurate) {
  // An advance()-heavy idle phase must hit the resync threshold too: every
  // eviction counts as an incremental op even when no sample is added.
  WindowedMoments w(10.0);
  const double offset = 1e9;
  util::Rng rng(12);
  double t = 0.0;
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 2000; ++i) {
      t += 0.001;
      w.add(t, offset + rng.normal(0.0, 1.0));
    }
    // Idle: drain the whole window one advance at a time.
    for (int i = 0; i < 2200; ++i) {
      t += 0.01;
      w.advance(t);
      ASSERT_GE(w.variance(), 0.0);
    }
    EXPECT_EQ(w.count(), 0u);
  }
  for (int i = 0; i < 500; ++i) {
    t += 0.001;
    w.add(t, offset + rng.normal(0.0, 1.0));
  }
  EXPECT_NEAR(w.mean(), offset, 1.0);
  EXPECT_GT(w.variance(), 0.3);
  EXPECT_LT(w.variance(), 3.0);
}

TEST(RollingMoments, LargeOffsetVarianceSurvivesCancellation) {
  RollingMoments r(1024);
  const double offset = 1e9;
  for (int i = 0; i < 4096; ++i) {
    r.add(offset + ((i % 2 == 0) ? -1.0 : 1.0));
  }
  EXPECT_NEAR(r.mean(), offset, 1e-3);
  EXPECT_NEAR(r.variance(), 1.0, 1e-9);
}

TEST(RollingMoments, KeepsExactlyCapacity) {
  RollingMoments r(3);
  for (double x : {1.0, 2.0, 3.0, 4.0}) r.add(x);
  EXPECT_EQ(r.count(), 3u);
  EXPECT_DOUBLE_EQ(r.mean(), 3.0);  // window is {2,3,4}
  EXPECT_TRUE(r.full());
}

TEST(RollingMoments, PartiallyFilled) {
  RollingMoments r(10);
  r.add(4.0);
  r.add(6.0);
  EXPECT_FALSE(r.full());
  EXPECT_DOUBLE_EQ(r.mean(), 5.0);
  EXPECT_DOUBLE_EQ(r.variance(), 1.0);
}

TEST(RollingMoments, RejectsZeroCapacity) {
  EXPECT_THROW(RollingMoments(0), std::invalid_argument);
}

TEST(RollingMoments, LongChurnStaysAccurate) {
  RollingMoments r(100);
  util::Rng rng(5);
  for (int i = 0; i < 200000; ++i) r.add(rng.uniform());
  // Uniform window: mean 0.5, var 1/12, estimated from 100 points.
  EXPECT_NEAR(r.mean(), 0.5, 0.15);
  EXPECT_NEAR(r.variance(), 1.0 / 12.0, 0.05);
  ASSERT_GE(r.variance(), 0.0);
}

}  // namespace
}  // namespace forktail::stats
