#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "dist/basic.hpp"
#include "queueing/mm1.hpp"
#include "stats/percentile.hpp"

namespace forktail::sim {
namespace {

FjConfig base_config() {
  FjConfig c;
  c.num_nodes = 4;
  c.service = std::make_shared<dist::Exponential>(1.0);
  c.num_requests = 20000;
  c.warmup_fraction = 0.2;
  c.seed = 42;
  return c;
}

TEST(FjSimulation, ProducesRequestedSampleCount) {
  FjConfig c = base_config();
  c.lambda = lambda_for_nominal_load(c, 0.5);
  const auto r = run_fj_simulation(c);
  EXPECT_EQ(r.request_responses.size(), c.num_requests);
  EXPECT_GT(r.pooled_task_stats.count(), 0u);
  EXPECT_EQ(r.node_task_stats.size(), c.num_nodes);
}

TEST(FjSimulation, SingleNodeMatchesMm1) {
  FjConfig c = base_config();
  c.num_nodes = 1;
  c.num_requests = 150000;
  c.warmup_fraction = 0.3;
  c.lambda = 0.8;
  const auto r = run_fj_simulation(c);
  queueing::Mm1 q(0.8, 1.0);
  EXPECT_NEAR(r.pooled_task_stats.mean(), q.mean_response(),
              0.05 * q.mean_response());
  const double p99 = stats::percentile(r.request_responses, 99.0);
  EXPECT_NEAR(p99, q.response_percentile(99.0), 0.1 * q.response_percentile(99.0));
}

TEST(FjSimulation, ResponseIsMaxOfTaskTimes) {
  // Request response >= every node's task response in distribution: the
  // request p50 must exceed a single node's p50.
  FjConfig c = base_config();
  c.num_nodes = 16;
  c.lambda = lambda_for_nominal_load(c, 0.6);
  const auto r = run_fj_simulation(c);
  const double req_p50 = stats::percentile(r.request_responses, 50.0);
  EXPECT_GT(req_p50, r.pooled_task_stats.mean());
}

TEST(FjSimulation, FixedKTouchesExactlyKNodes) {
  FjConfig c = base_config();
  c.k_mode = TaskCountMode::kFixed;
  c.k_fixed = 2;
  c.num_requests = 5000;
  c.lambda = lambda_for_nominal_load(c, 0.4);
  const auto r = run_fj_simulation(c);
  const auto warmup_tasks = r.total_tasks;
  // total tasks = 2 per request including warm-up requests.
  EXPECT_EQ(warmup_tasks % 2, 0u);
  std::uint64_t node_tasks = 0;
  for (const auto& w : r.node_task_stats) node_tasks += w.count();
  EXPECT_EQ(node_tasks, r.pooled_task_stats.count());
}

TEST(FjSimulation, UniformKWithinBounds) {
  FjConfig c = base_config();
  c.k_mode = TaskCountMode::kUniform;
  c.k_lo = 1;
  c.k_hi = 3;
  c.num_requests = 4000;
  c.lambda = lambda_for_nominal_load(c, 0.4);
  const auto r = run_fj_simulation(c);
  // Mean tasks/request must be ~2.
  const double tasks_per_request =
      static_cast<double>(r.total_tasks) /
      (static_cast<double>(c.num_requests) / (1.0 - c.warmup_fraction));
  EXPECT_NEAR(tasks_per_request, 2.0, 0.1);
}

TEST(FjSimulation, LoadCalibrationMatchesUtilization) {
  FjConfig c = base_config();
  c.num_nodes = 2;
  c.lambda = lambda_for_nominal_load(c, 0.7);
  EXPECT_NEAR(nominal_load(c), 0.7, 1e-12);
  c.k_mode = TaskCountMode::kFixed;
  c.k_fixed = 1;
  c.lambda = lambda_for_nominal_load(c, 0.7);
  EXPECT_NEAR(nominal_load(c), 0.7, 1e-12);
}

TEST(FjSimulation, ReplicatedRoundRobinRuns) {
  FjConfig c = base_config();
  c.replicas = 3;
  c.policy = DispatchPolicy::kRoundRobin;
  c.num_requests = 8000;
  c.lambda = lambda_for_nominal_load(c, 0.6);
  const auto r = run_fj_simulation(c);
  EXPECT_EQ(r.request_responses.size(), c.num_requests);
  EXPECT_EQ(r.redundant_issues, 0u);
}

TEST(FjSimulation, RedundantPolicyIssuesReplicas) {
  FjConfig c = base_config();
  c.replicas = 3;
  c.policy = DispatchPolicy::kRedundant;
  c.redundant_delay = 1.0;  // ~p63 of Exp(1): plenty of replicas
  c.num_requests = 8000;
  c.lambda = lambda_for_nominal_load(c, 0.5);
  const auto r = run_fj_simulation(c);
  EXPECT_GT(r.redundant_issues, 0u);
}

TEST(FjSimulation, RedundantCutsTailVsPlainRoundRobin) {
  FjConfig rr = base_config();
  rr.replicas = 3;
  rr.policy = DispatchPolicy::kRoundRobin;
  rr.num_nodes = 8;
  rr.num_requests = 30000;
  rr.service = std::make_shared<dist::HyperExp2>(
      dist::HyperExp2::from_mean_scv(1.0, 4.0));
  rr.lambda = lambda_for_nominal_load(rr, 0.35);
  FjConfig red = rr;
  red.policy = DispatchPolicy::kRedundant;
  // Threshold near the service p96: only genuine stragglers (the slow
  // hyperexponential branch) are hedged, ~4% extra load.
  red.redundant_delay = 5.0;
  const auto r_rr = run_fj_simulation(rr);
  const auto r_red = run_fj_simulation(red);
  EXPECT_LT(stats::percentile(r_red.request_responses, 99.0),
            stats::percentile(r_rr.request_responses, 99.0));
}

TEST(FjSimulation, DeterministicGivenSeed) {
  FjConfig c = base_config();
  c.num_requests = 2000;
  c.lambda = lambda_for_nominal_load(c, 0.5);
  const auto a = run_fj_simulation(c);
  const auto b = run_fj_simulation(c);
  ASSERT_EQ(a.request_responses.size(), b.request_responses.size());
  for (std::size_t i = 0; i < a.request_responses.size(); ++i) {
    ASSERT_DOUBLE_EQ(a.request_responses[i], b.request_responses[i]);
  }
}

TEST(FjSimulation, SeedChangesResults) {
  FjConfig c = base_config();
  c.num_requests = 2000;
  c.lambda = lambda_for_nominal_load(c, 0.5);
  const auto a = run_fj_simulation(c);
  c.seed = 43;
  const auto b = run_fj_simulation(c);
  EXPECT_NE(a.request_responses[0], b.request_responses[0]);
}

TEST(FjSimulation, ConfigValidation) {
  FjConfig c = base_config();
  c.lambda = lambda_for_nominal_load(c, 0.5);
  c.num_nodes = 0;
  EXPECT_THROW(run_fj_simulation(c), std::invalid_argument);
  c = base_config();
  c.lambda = 0.0;
  EXPECT_THROW(run_fj_simulation(c), std::invalid_argument);
  c = base_config();
  c.lambda = 1.0;
  c.k_mode = TaskCountMode::kFixed;
  c.k_fixed = 10;  // > num_nodes
  EXPECT_THROW(run_fj_simulation(c), std::invalid_argument);
  EXPECT_THROW(lambda_for_nominal_load(base_config(), 1.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace forktail::sim
